"""Tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer


def quick_config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="cps", cache_capacity=64, seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestSaveLoad:
    def test_roundtrip_restores_tables(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        entity_before = trainer.server.store.table("entity").copy()

        # Train further (state diverges), then restore.
        for worker in trainer.workers:
            worker.step()
        assert not np.array_equal(
            entity_before, trainer.server.store.table("entity")
        )
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            entity_before, trainer.server.store.table("entity")
        )

    def test_restores_adagrad_state(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        acc_before = trainer.server.optimizer._accumulators["entity"].copy()
        for worker in trainer.workers:
            worker.step()
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            acc_before, trainer.server.optimizer._accumulators["entity"]
        )

    def test_resume_training_continues(self, small_split, tmp_path):
        """A restored trainer must keep training without blowing up."""
        trainer = HETKGTrainer(quick_config())
        result1 = trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        fresh = HETKGTrainer(quick_config())
        fresh.setup(small_split.train)
        load_checkpoint(fresh, path)
        loss = fresh.workers[0].step()
        assert np.isfinite(loss)

    def test_save_before_setup_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="no state"):
            save_checkpoint(HETKGTrainer(quick_config()), tmp_path / "x.npz")

    def test_load_before_setup_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        with pytest.raises(RuntimeError, match="set up"):
            load_checkpoint(HETKGTrainer(quick_config()), path)

    def test_mismatched_model_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        other = HETKGTrainer(quick_config(model="distmult"))
        other.setup(small_split.train)
        with pytest.raises(ValueError, match="model"):
            load_checkpoint(other, path)

    def test_mismatched_dim_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        other = HETKGTrainer(quick_config(dim=16))
        other.setup(small_split.train)
        with pytest.raises(ValueError, match="dim"):
            load_checkpoint(other, path)


class TestAtomicity:
    def test_save_leaves_no_temp_files(self, small_split, tmp_path):
        """A successful save stages via a temp file but cleans it up."""
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        save_checkpoint(trainer, tmp_path / "ckpt.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_overwrite_is_atomic_replacement(self, small_split, tmp_path):
        """Saving over an existing checkpoint swaps it wholesale.

        Regression for the pre-atomic writer: a direct ``np.savez(path)``
        truncates the destination first, so a crash mid-write destroyed the
        previous checkpoint.  With staged writes the old archive stays
        loadable until the rename, and the new one is complete afterwards.
        """
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        for worker in trainer.workers:
            worker.step()
        save_checkpoint(trainer, path)  # overwrite in place
        # The surviving archive is the *new* state and fully loadable.
        entity_now = trainer.server.store.table("entity").copy()
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            entity_now, trainer.server.store.table("entity")
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_failed_save_preserves_previous_checkpoint(
        self, small_split, tmp_path, monkeypatch
    ):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(trainer, path)
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]


class TestAccumulatorValidation:
    def test_accumulator_shape_mismatch_rejected_before_mutation(
        self, small_split, tmp_path
    ):
        """A corrupt accumulator raises a clear error and mutates nothing."""
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        # Corrupt the archive: truncate the entity accumulator rows.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["adagrad_entity"] = arrays["adagrad_entity"][:-3]
        bad = tmp_path / "bad.npz"
        with open(bad, "wb") as f:
            np.savez(f, **arrays)

        entity_before = trainer.server.store.table("entity").copy()
        acc_before = trainer.server.optimizer._accumulators["entity"].copy()
        with pytest.raises(ValueError, match="adagrad_entity.*shape"):
            load_checkpoint(trainer, bad)
        # Nothing was half-restored.
        np.testing.assert_array_equal(
            entity_before, trainer.server.store.table("entity")
        )
        np.testing.assert_array_equal(
            acc_before, trainer.server.optimizer._accumulators["entity"]
        )

    def test_foreign_optimizer_warns_but_loads_tables(
        self, small_split, tmp_path
    ):
        """Accumulators for a non-AdaGrad trainer warn instead of vanishing."""
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        entity_saved = trainer.server.store.table("entity").copy()

        other = HETKGTrainer(quick_config(optimizer="sgd"))
        other.setup(small_split.train)
        with pytest.warns(RuntimeWarning, match="accumulator"):
            load_checkpoint(other, path)
        np.testing.assert_array_equal(
            entity_saved, other.server.store.table("entity")
        )
