"""Tests for checkpoint save/restore."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer


def quick_config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="cps", cache_capacity=64, seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestSaveLoad:
    def test_roundtrip_restores_tables(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        entity_before = trainer.server.store.table("entity").copy()

        # Train further (state diverges), then restore.
        for worker in trainer.workers:
            worker.step()
        assert not np.array_equal(
            entity_before, trainer.server.store.table("entity")
        )
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            entity_before, trainer.server.store.table("entity")
        )

    def test_restores_adagrad_state(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        acc_before = trainer.server.optimizer._accumulators["entity"].copy()
        for worker in trainer.workers:
            worker.step()
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            acc_before, trainer.server.optimizer._accumulators["entity"]
        )

    def test_resume_training_continues(self, small_split, tmp_path):
        """A restored trainer must keep training without blowing up."""
        trainer = HETKGTrainer(quick_config())
        result1 = trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        fresh = HETKGTrainer(quick_config())
        fresh.setup(small_split.train)
        load_checkpoint(fresh, path)
        loss = fresh.workers[0].step()
        assert np.isfinite(loss)

    def test_save_before_setup_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="no state"):
            save_checkpoint(HETKGTrainer(quick_config()), tmp_path / "x.npz")

    def test_load_before_setup_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        with pytest.raises(RuntimeError, match="set up"):
            load_checkpoint(HETKGTrainer(quick_config()), path)

    def test_mismatched_model_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        other = HETKGTrainer(quick_config(model="distmult"))
        other.setup(small_split.train)
        with pytest.raises(ValueError, match="model"):
            load_checkpoint(other, path)

    def test_mismatched_dim_rejected(self, small_split, tmp_path):
        trainer = HETKGTrainer(quick_config())
        trainer.train(small_split.train)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        other = HETKGTrainer(quick_config(dim=16))
        other.setup(small_split.train)
        with pytest.raises(ValueError, match="dim"):
            load_checkpoint(other, path)
