"""Tests for repro.optim (sparse SGD / AdaGrad, duplicate coalescing)."""

import numpy as np
import pytest

from repro.optim import get_optimizer
from repro.optim.adagrad import SparseAdagrad
from repro.optim.base import coalesce
from repro.optim.sgd import SparseSGD


class TestCoalesce:
    def test_no_duplicates(self):
        ids, grads = coalesce(np.array([2, 0]), np.array([[1.0], [2.0]]))
        assert list(ids) == [0, 2]
        assert grads.tolist() == [[2.0], [1.0]]

    def test_duplicates_summed(self):
        ids, grads = coalesce(
            np.array([1, 1, 3]), np.array([[1.0], [2.0], [5.0]])
        )
        assert list(ids) == [1, 3]
        assert grads.tolist() == [[3.0], [5.0]]

    def test_empty(self):
        ids, grads = coalesce(np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert len(ids) == 0


class TestSparseSGD:
    def test_basic_step(self):
        table = np.ones((4, 2))
        SparseSGD(lr=0.5).update("t", table, np.array([1]), np.array([[2.0, 4.0]]))
        assert table[1].tolist() == [0.0, -1.0]
        assert table[0].tolist() == [1.0, 1.0]  # untouched

    def test_duplicate_ids_accumulate(self):
        """The classic fancy-indexing bug: duplicates must both count."""
        table = np.zeros((2, 1))
        SparseSGD(lr=1.0).update(
            "t", table, np.array([0, 0]), np.array([[1.0], [1.0]])
        )
        assert table[0, 0] == -2.0

    def test_stateless(self):
        assert SparseSGD(lr=0.1).state_size() == 0

    def test_empty_update_noop(self):
        table = np.ones((2, 2))
        SparseSGD(lr=1.0).update("t", table, np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert np.all(table == 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SparseSGD(lr=0.0)


class TestSparseAdagrad:
    def test_first_step_is_lr_sized(self):
        """With acc = g^2, the first step is lr * sign(g)."""
        table = np.zeros((1, 2))
        SparseAdagrad(lr=0.1).update(
            "t", table, np.array([0]), np.array([[4.0, -9.0]])
        )
        np.testing.assert_allclose(table[0], [-0.1, 0.1], rtol=1e-4)

    def test_steps_shrink_over_time(self):
        table = np.zeros((1, 1))
        opt = SparseAdagrad(lr=0.1)
        deltas = []
        for _ in range(4):
            before = table[0, 0]
            opt.update("t", table, np.array([0]), np.array([[1.0]]))
            deltas.append(abs(table[0, 0] - before))
        assert deltas == sorted(deltas, reverse=True)

    def test_state_per_table_name(self):
        opt = SparseAdagrad(lr=0.1)
        a, b = np.zeros((2, 2)), np.zeros((3, 2))
        opt.update("a", a, np.array([0]), np.array([[1.0, 1.0]]))
        opt.update("b", b, np.array([0]), np.array([[1.0, 1.0]]))
        assert opt.state_size() == a.size + b.size

    def test_hot_rows_take_smaller_steps(self):
        """The AdaGrad property the paper relies on: frequently-updated hot
        embeddings self-attenuate."""
        table = np.zeros((2, 1))
        opt = SparseAdagrad(lr=0.1)
        for _ in range(10):
            opt.update("t", table, np.array([0]), np.array([[1.0]]))
        opt.update("t", table, np.array([1]), np.array([[1.0]]))
        hot_step_before = table[0, 0]
        opt.update("t", table, np.array([0, 1]), np.array([[1.0], [1.0]]))
        hot_delta = abs(table[0, 0] - hot_step_before)
        cold_delta = abs(table[1, 0] - -0.1)
        assert hot_delta < cold_delta

    def test_duplicates_coalesced_before_accumulator(self):
        """Two unit gradients on one row must accumulate (1+1)^2 = 4, not
        1^2 twice."""
        table = np.zeros((1, 1))
        opt = SparseAdagrad(lr=1.0)
        opt.update("t", table, np.array([0, 0]), np.array([[1.0], [1.0]]))
        # step = lr * 2 / sqrt(4) = 1.0
        assert table[0, 0] == pytest.approx(-1.0, rel=1e-4)

    def test_reset(self):
        opt = SparseAdagrad(lr=0.1)
        table = np.zeros((1, 1))
        opt.update("t", table, np.array([0]), np.array([[1.0]]))
        opt.reset()
        assert opt.state_size() == 0

    def test_accumulator_reallocated_on_shape_change(self):
        opt = SparseAdagrad(lr=0.1)
        opt.update("t", np.zeros((2, 2)), np.array([0]), np.array([[1.0, 1.0]]))
        # Same name, different table shape: fresh state, no crash.
        opt.update("t", np.zeros((3, 2)), np.array([2]), np.array([[1.0, 1.0]]))
        assert opt.state_size() == 6

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            SparseAdagrad(lr=0.1, eps=0.0)


class TestGetOptimizer:
    def test_names(self):
        assert isinstance(get_optimizer("adagrad", 0.1), SparseAdagrad)
        assert isinstance(get_optimizer("sgd", 0.1), SparseSGD)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_optimizer("adam", 0.1)
