"""Tests for the worker-side HotEmbeddingCache (Algorithm 3)."""

import numpy as np
import pytest

from repro.cache.filtering import HotSet
from repro.cache.sync import HotEmbeddingCache
from repro.optim.sgd import SparseSGD
from repro.ps.kvstore import ShardedKVStore
from repro.ps.server import ParameterServer


@pytest.fixture
def server():
    entity = np.arange(20, dtype=np.float64).reshape(10, 2)
    relation = np.arange(8, dtype=np.float64).reshape(4, 2)
    owner = np.array([0] * 5 + [1] * 5)
    store = ShardedKVStore(entity, relation, owner, num_machines=2)
    return ParameterServer(store, SparseSGD(lr=1.0))


@pytest.fixture
def cache(server):
    c = HotEmbeddingCache(
        server,
        machine=0,
        entity_capacity=4,
        relation_capacity=4,
        entity_width=2,
        relation_width=2,
        sync_period=3,
        local_lr=1.0,
    )
    c.install(HotSet(entities=np.array([1, 7]), relations=np.array([0])))
    return c


class TestInstall:
    def test_pulls_current_values(self, cache, server):
        rows, comm = cache.fetch("entity", np.array([1, 7]))
        assert rows[0].tolist() == [2.0, 3.0]
        assert rows[1].tolist() == [14.0, 15.0]
        assert comm.total_bytes == 0  # both cached -> no PS traffic

    def test_install_comm_metered(self, server):
        cache = HotEmbeddingCache(server, 0, 4, 4, 2, 2, sync_period=2, local_lr=1.0)
        comm = cache.install(HotSet(np.array([1, 7]), np.array([0])))
        assert comm.total_bytes > 0
        assert comm.remote_bytes > 0  # entity 7 lives on machine 1

    def test_install_truncates_to_capacity(self, server):
        cache = HotEmbeddingCache(server, 0, 2, 2, 2, 2, sync_period=2, local_lr=1.0)
        cache.install(HotSet(np.arange(5), np.array([], dtype=np.int64)))
        assert len(cache.cached_ids("entity")) == 2

    def test_empty_hotset(self, server):
        cache = HotEmbeddingCache(server, 0, 4, 4, 2, 2, sync_period=2, local_lr=1.0)
        comm = cache.install(
            HotSet(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        )
        assert comm.total_bytes == 0


class TestFetch:
    def test_miss_pulled_from_server(self, cache):
        rows, comm = cache.fetch("entity", np.array([3]))
        assert rows[0].tolist() == [6.0, 7.0]
        assert comm.total_bytes > 0

    def test_mixed_hit_miss_order_preserved(self, cache):
        rows, _ = cache.fetch("entity", np.array([3, 1, 9]))
        assert rows[0].tolist() == [6.0, 7.0]
        assert rows[1].tolist() == [2.0, 3.0]
        assert rows[2].tolist() == [18.0, 19.0]

    def test_hit_stats_tracked(self, cache):
        cache.fetch("entity", np.array([1, 3, 7]))
        stats = cache.stats("entity")
        assert stats.hits == 2
        assert stats.misses == 1

    def test_combined_stats(self, cache):
        cache.fetch("entity", np.array([1]))
        cache.fetch("relation", np.array([0, 2]))
        combined = cache.combined_stats()
        assert combined.hits == 2
        assert combined.misses == 1


class TestLocalGradients:
    def test_cached_rows_updated_locally(self, cache):
        cache.apply_local_gradients("entity", np.array([1]), np.array([[1.0, 1.0]]))
        rows, _ = cache.fetch("entity", np.array([1]))
        # Local AdaGrad at lr=1: first step is lr * sign(grad) (up to eps).
        np.testing.assert_allclose(rows[0], [1.0, 2.0], rtol=1e-4)

    def test_uncached_ids_ignored(self, cache, server):
        before = server.store.table("entity")[3].copy()
        cache.apply_local_gradients("entity", np.array([3]), np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(server.store.table("entity")[3], before)

    def test_local_update_does_not_touch_server(self, cache, server):
        before = server.store.table("entity")[1].copy()
        cache.apply_local_gradients("entity", np.array([1]), np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(server.store.table("entity")[1], before)


class TestSync:
    def test_tick_period(self, cache):
        assert cache.tick() is None
        assert cache.tick() is None
        assert cache.tick() is not None  # third tick == sync_period

    def test_sync_refreshes_stale_values(self, cache, server):
        # Another worker pushes an update to a cached id on the server.
        server.push("entity", np.array([1]), np.array([[1.0, 1.0]]), machine=1)
        stale, _ = cache.fetch("entity", np.array([1]))
        assert stale[0].tolist() == [2.0, 3.0]  # still the old value
        cache.force_sync()
        fresh, _ = cache.fetch("entity", np.array([1]))
        assert fresh[0].tolist() == [1.0, 2.0]  # now sees the push

    def test_staleness_bounded_by_period(self, cache, server):
        """Within P iterations, a remote update must become visible."""
        server.push("entity", np.array([7]), np.array([[10.0, 10.0]]), machine=1)
        for _ in range(cache.sync_period):
            cache.tick()
        rows, _ = cache.fetch("entity", np.array([7]))
        assert rows[0].tolist() == [4.0, 5.0]

    def test_sync_resets_counter(self, cache):
        cache.tick()
        cache.force_sync()
        assert cache.tick() is None  # counter restarted

    def test_sync_comm_metered(self, cache):
        comm = cache.force_sync()
        assert comm.total_bytes > 0

    def test_install_resets_sync_counter(self, cache):
        cache.tick()
        cache.tick()
        cache.install(HotSet(np.array([2]), np.array([1])))
        assert cache.tick() is None

    def test_invalid_sync_period(self, server):
        with pytest.raises(ValueError):
            HotEmbeddingCache(server, 0, 4, 4, 2, 2, sync_period=0, local_lr=1.0)
