"""Tests for repro.faults: deterministic chaos, retry RPC, crash recovery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TrainingConfig
from repro.core.telemetry import FaultEvent, Telemetry
from repro.core.trainer import make_trainer
from repro.faults import (
    CheckpointManager,
    CrashEvent,
    DelayWindow,
    DropWindow,
    FaultInjector,
    FaultPlan,
    FaultyPSChannel,
    OutageWindow,
    RetryPolicy,
    ShardRecovery,
    StragglerWindow,
)


def _config(**overrides) -> TrainingConfig:
    defaults = dict(
        epochs=2,
        dim=8,
        batch_size=32,
        num_negatives=4,
        cache_capacity=128,
        sync_period=4,
        num_machines=2,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def _train(split, system="hetkg-d", telemetry=None, **train_kwargs):
    trainer = make_trainer(system, _config())
    result = trainer.train(split.train, telemetry=telemetry, **train_kwargs)
    return trainer, result


# ---------------------------------------------------------------------- plans


class TestFaultPlan:
    def test_zero_plan(self):
        assert FaultPlan.none().is_zero
        assert FaultPlan(drops=(DropWindow(0.0),)).is_zero
        assert not FaultPlan.uniform_drop(0.1).is_zero
        assert FaultPlan.uniform_drop(0.0).is_zero

    def test_crash_and_outage_make_plan_nonzero(self):
        assert not FaultPlan(crashes=(CrashEvent(0, 5),)).is_zero
        assert not FaultPlan(outages=(OutageWindow(0, 1, 5),)).is_zero
        assert not FaultPlan(stragglers=(StragglerWindow(0, 2.0),)).is_zero

    def test_window_validation(self):
        with pytest.raises(ValueError, match="empty"):
            DropWindow(0.1, start=5, stop=5)
        with pytest.raises(ValueError, match="probability"):
            DropWindow(1.5)
        with pytest.raises(ValueError, match="slowdown"):
            StragglerWindow(0, 0.5)
        with pytest.raises(ValueError, match="crash iteration"):
            CrashEvent(0, 0)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValueError, match="duplicate crash"):
            FaultPlan(crashes=(CrashEvent(1, 5), CrashEvent(1, 5)))

    def test_window_applies(self):
        w = DropWindow(0.5, start=10, stop=20, machines=(1,))
        assert w.applies(1, 10)
        assert w.applies(1, 19)
        assert not w.applies(1, 20)
        assert not w.applies(1, 9)
        assert not w.applies(0, 15)

    def test_retry_policy_backoff_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, max_backoff=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)

    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=7,drop=0.2@10:200,delay=0.1x0.05@1:50,slow=w2x3.0@20:40,"
            "crash=w1@25,ps-out=0@30:40,retries=6,restart-delay=2.5"
        )
        assert plan.seed == 7
        assert plan.drops == (DropWindow(0.2, 10, 200),)
        assert plan.delays == (DelayWindow(0.1, 0.05, 1, 50),)
        assert plan.stragglers == (StragglerWindow(2, 3.0, 20, 40),)
        assert plan.crashes == (CrashEvent(1, 25),)
        assert plan.outages == (OutageWindow(0, 30, 40),)
        assert plan.retry.max_attempts == 6
        assert plan.restart_delay == 2.5

    def test_parse_defaults_and_empty(self):
        assert FaultPlan.parse("") == FaultPlan.none()
        plan = FaultPlan.parse("drop=0.05")
        assert plan.drops[0].start == 1 and plan.drops[0].stop is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("drop")
        with pytest.raises(ValueError):
            FaultPlan.parse("explode=1.0")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash=w1")  # missing @iteration

    def test_parse_errors_name_the_clause(self):
        """Every parse failure must point at the offending clause."""
        for spec, clause in [
            ("drop=banana", "drop=banana"),
            ("seed=3,delay=0.1xfast", "delay=0.1xfast"),
            ("drop=0.1,slow=w2", "slow=w2"),
            ("drop=1.5", "drop=1.5"),  # out-of-range, not just unparsable
            ("drop=0.1@9:3", "drop=0.1@9:3"),  # empty window
            ("explode=1.0", "explode=1.0"),
        ]:
            with pytest.raises(ValueError, match="bad fault clause") as err:
                FaultPlan.parse(spec)
            assert clause in str(err.value)

    def test_parse_retries_with_timeout(self):
        plan = FaultPlan.parse("retries=4x0.004")
        assert plan.retry.max_attempts == 4
        assert plan.retry.timeout == pytest.approx(0.004)


# ------------------------------------------------------------- spec round-trip


def _windows(draw, st):
    start = draw(st.integers(min_value=1, max_value=50))
    stop = draw(st.one_of(st.none(), st.integers(min_value=start + 1, max_value=99)))
    return start, stop


@st.composite
def fault_plans(draw):
    """Grammar-expressible plans (the domain ``to_spec`` guarantees)."""
    probs = st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    drops = tuple(
        DropWindow(draw(probs), *_windows(draw, st))
        for _ in range(draw(st.integers(0, 2)))
    )
    delays = tuple(
        DelayWindow(
            draw(probs),
            draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            *_windows(draw, st),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    stragglers = tuple(
        StragglerWindow(
            draw(st.integers(0, 3)),
            draw(st.floats(min_value=1.0, max_value=10.0, allow_nan=False)),
            *_windows(draw, st),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    crash_keys = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 99)),
            max_size=2,
            unique=True,
        )
    )
    crashes = tuple(CrashEvent(m, i) for m, i in crash_keys)
    outages = tuple(
        OutageWindow(draw(st.integers(0, 3)), *_windows(draw, st))
        for _ in range(draw(st.integers(0, 2)))
    )
    retry = RetryPolicy(
        max_attempts=draw(st.integers(1, 9)),
        timeout=draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
    )
    return FaultPlan(
        seed=draw(st.integers(0, 1000)),
        drops=drops,
        delays=delays,
        stragglers=stragglers,
        crashes=crashes,
        outages=outages,
        retry=retry,
        restart_delay=draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        ),
    )


class TestFaultSpecRoundTrip:
    """``FaultPlan.to_spec`` is the exact inverse of ``parse``."""

    @given(plan=fault_plans())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, plan):
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_round_trip_canonical_example(self):
        spec = (
            "seed=7,retries=4x0.004,restart-delay=2.5,drop=0.3@9:40,"
            "delay=0.1x0.05@1:50,slow=w1x2.5@20:,crash=w0@25,ps-out=0@5:8"
        )
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_none_plan_renders_empty(self):
        assert FaultPlan.none().to_spec() == ""
        assert FaultPlan.parse("") == FaultPlan.none()

    def test_inexpressible_plans_raise(self):
        scoped = FaultPlan(drops=(DropWindow(0.1, machines=(1,)),))
        with pytest.raises(ValueError, match="no --faults spelling"):
            scoped.to_spec()
        exotic = FaultPlan(retry=RetryPolicy(backoff_base=0.123))
        with pytest.raises(ValueError, match="cannot express"):
            exotic.to_spec()
        slow_disk = FaultPlan(recovery_bandwidth=1e6)
        with pytest.raises(ValueError, match="no --faults spelling"):
            slow_disk.to_spec()


# ------------------------------------------------------------------- injector


class TestFaultInjector:
    def test_no_window_no_draw(self):
        injector = FaultInjector(FaultPlan.none())
        assert not injector.should_drop(0, 1)
        # A zero plan must never materialise a stream.
        assert injector._streams == {}

    def test_deterministic_streams(self):
        plan = FaultPlan.uniform_drop(0.5, seed=9)
        a, b = FaultInjector(plan), FaultInjector(plan)
        draws_a = [a.should_drop(0, 1) for _ in range(50)]
        draws_b = [b.should_drop(0, 1) for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_per_machine_streams_independent(self):
        plan = FaultPlan.uniform_drop(0.5, seed=9)
        a, b = FaultInjector(plan), FaultInjector(plan)
        # Machine 1's draws must not depend on how many machine 0 made.
        for _ in range(17):
            a.should_drop(0, 1)
        assert [a.should_drop(1, 1) for _ in range(20)] == [
            b.should_drop(1, 1) for _ in range(20)
        ]

    def test_crash_fires_once(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashEvent(1, 5),)))
        assert not injector.crash_due(1, 4)
        assert injector.crash_due(1, 5)
        assert not injector.crash_due(1, 5)
        assert injector.stats.crashes == 1

    def test_straggler_factor(self):
        injector = FaultInjector(
            FaultPlan(stragglers=(StragglerWindow(1, 3.0, 10, 20),))
        )
        assert injector.straggler_factor(1, 15) == 3.0
        assert injector.straggler_factor(1, 25) == 1.0
        assert injector.straggler_factor(0, 15) == 1.0

    def test_ps_unavailable(self):
        injector = FaultInjector(FaultPlan(outages=(OutageWindow(0, 5, 10),)))
        assert injector.ps_unavailable([0, 1], 5)
        assert not injector.ps_unavailable([1], 5)
        assert not injector.ps_unavailable([0], 10)


# ------------------------------------------------------------ channel (unit)


@pytest.fixture
def cluster(small_split):
    """A set-up 2-machine trainer exposing its server for channel tests."""
    trainer = make_trainer("hetkg-d", _config())
    trainer.setup(small_split.train)
    return trainer


class TestFaultyPSChannel:
    def _channel(self, cluster, plan, clock=None):
        from repro.utils.simclock import SimClock

        worker = cluster.workers[0]
        return FaultyPSChannel(
            cluster.server, worker.machine, FaultInjector(plan), clock or SimClock()
        )

    def test_transparent_when_no_faults(self, cluster):
        from repro.utils.simclock import SimClock

        clock = SimClock()
        channel = self._channel(cluster, FaultPlan.none(), clock)
        channel.iteration = 1
        ids = np.array([0, 1, 2])
        direct_rows, direct_comm = cluster.server.pull("entity", ids, 0)
        rows, comm = channel.pull("entity", ids)
        np.testing.assert_array_equal(rows, direct_rows)
        assert comm == direct_comm
        assert clock.elapsed == 0.0

    def test_certain_drop_forces_pull_through(self, cluster):
        from repro.utils.simclock import SimClock

        clock = SimClock()
        plan = FaultPlan(
            drops=(DropWindow(1.0),), retry=RetryPolicy(max_attempts=3)
        )
        channel = self._channel(cluster, plan, clock)
        channel.iteration = 1
        rows, comm = channel.pull("entity", np.array([0, 1]))
        assert rows is not None
        assert channel.injector.stats.retries == 3
        assert channel.injector.stats.forced_pulls == 1
        assert comm.retransmit_bytes > 0
        assert clock.category("communication") > 0.0

    def test_try_pull_gives_up(self, cluster):
        plan = FaultPlan(
            drops=(DropWindow(1.0),), retry=RetryPolicy(max_attempts=2)
        )
        channel = self._channel(cluster, plan)
        channel.iteration = 1
        rows, comm = channel.try_pull("entity", np.array([0, 1]))
        assert rows is None
        assert comm.retransmit_bytes > 0
        assert channel.injector.stats.stale_overruns == 1

    def test_push_dropped_on_budget_exhaustion(self, cluster):
        plan = FaultPlan(
            drops=(DropWindow(1.0),), retry=RetryPolicy(max_attempts=2)
        )
        channel = self._channel(cluster, plan)
        channel.iteration = 1
        ids = np.array([0, 1])
        before = cluster.server.store.read("entity", ids)
        channel.push("entity", ids, np.ones((2, 8)))
        np.testing.assert_array_equal(cluster.server.store.read("entity", ids), before)
        assert channel.injector.stats.lost_pushes == 1

    def test_outage_is_deterministic_per_attempt(self, cluster):
        plan = FaultPlan(
            outages=(OutageWindow(0, 1, 5),), retry=RetryPolicy(max_attempts=2)
        )
        channel = self._channel(cluster, plan)
        channel.iteration = 1
        ids = cluster.server.store.owned_ids("entity", 0)[:3]
        rows, _ = channel.try_pull("entity", ids)
        assert rows is None  # shard 0 down, budget exhausts deterministically
        channel.iteration = 5  # window closed
        rows, comm = channel.try_pull("entity", ids)
        assert rows is not None
        assert comm.retransmit_bytes == 0


# --------------------------------------------------------- training invariant


class TestNoOpInvariant:
    def test_zero_plan_reproduces_injector_free_run(self, small_split):
        _, plain = _train(small_split)
        _, zero = _train(small_split, faults=FaultPlan.none())
        assert zero.sim_time == plain.sim_time
        assert zero.compute_time == plain.compute_time
        assert zero.communication_time == plain.communication_time
        assert zero.comm_totals == plain.comm_totals
        assert [p.loss for p in zero.history.points] == [
            p.loss for p in plain.history.points
        ]

    def test_zero_plan_dglke(self, small_split):
        _, plain = _train(small_split, system="dglke")
        _, zero = _train(small_split, system="dglke", faults=FaultPlan.none())
        assert zero.sim_time == plain.sim_time
        assert zero.comm_totals == plain.comm_totals

    def test_fault_run_then_clean_run_uninstalls_channel(self, small_split):
        trainer = make_trainer("hetkg-d", _config())
        trainer.train(small_split.train, faults=FaultPlan.uniform_drop(0.2, seed=1))
        assert trainer.workers[0]._fault_channel is not None
        trainer.train(small_split.train)  # no faults: channel must come off
        for worker in trainer.workers:
            assert worker._fault_channel is None
            assert worker.server is trainer.server


class TestChaosDeterminism:
    PLAN = FaultPlan(
        seed=3,
        drops=(DropWindow(0.1),),
        crashes=(CrashEvent(1, 5),),
        outages=(OutageWindow(0, 8, 11),),
    )

    def test_bit_identical_across_runs(self, small_split):
        _, a = _train(small_split, faults=self.PLAN, checkpoint_every=4)
        _, b = _train(small_split, faults=self.PLAN, checkpoint_every=4)
        assert a.sim_time == b.sim_time
        assert a.compute_time == b.compute_time
        assert a.communication_time == b.communication_time
        assert a.comm_totals == b.comm_totals
        assert a.fault_stats == b.fault_stats
        assert [p.loss for p in a.history.points] == [
            p.loss for p in b.history.points
        ]

    def test_fault_overhead_is_visible_everywhere(self, small_split):
        telemetry = Telemetry()
        _, clean = _train(small_split)
        _, chaotic = _train(
            small_split, faults=self.PLAN, checkpoint_every=4, telemetry=telemetry
        )
        stats = chaotic.fault_stats
        assert stats["retries"] >= 1
        assert stats["recoveries"] == 1
        assert stats["crashes"] == 1
        # SimClock communication breakdown carries the retry waits.
        assert chaotic.communication_time > clean.communication_time
        assert chaotic.sim_time > clean.sim_time
        # CommRecord totals carry the wasted attempts.
        assert chaotic.comm_totals.retransmit_bytes > 0
        assert chaotic.comm_totals.remote_bytes > clean.comm_totals.remote_bytes
        # Telemetry carries the incident log.
        summary = telemetry.fault_summary()
        assert summary.get("retry", 0) >= 1
        assert summary.get("crash_restart", 0) == 1
        assert all(isinstance(e, FaultEvent) for e in telemetry.events)

    def test_losses_stay_finite_under_chaos(self, small_split):
        _, chaotic = _train(small_split, faults=self.PLAN, checkpoint_every=4)
        assert all(np.isfinite(p.loss) for p in chaotic.history.points)


# ------------------------------------------------------------- crash recovery


class TestCrashRecovery:
    def test_recovery_rewinds_only_the_dead_shard(self, small_split):
        trainer = make_trainer("hetkg-d", _config())
        trainer.setup(small_split.train)
        checkpoints = CheckpointManager(trainer)
        snap = checkpoints.snapshot(step=0)
        store = trainer.server.store
        # Mutate everything after the snapshot.
        store.table("entity")[:] += 1.0
        survivors_before = store.table("entity").copy()
        recovery = ShardRecovery(trainer.server, checkpoints)
        restored = recovery.restore(machine=1)
        assert restored > 0
        dead = store.owned_ids("entity", 1)
        alive = store.owned_ids("entity", 0)
        np.testing.assert_array_equal(
            store.table("entity")[dead], snap.tables["entity"][dead]
        )
        np.testing.assert_array_equal(
            store.table("entity")[alive], survivors_before[alive]
        )

    def test_restore_without_snapshot_is_harmless(self, small_split):
        trainer = make_trainer("hetkg-d", _config())
        trainer.setup(small_split.train)
        checkpoints = CheckpointManager(trainer)
        recovery = ShardRecovery(trainer.server, checkpoints)
        before = trainer.server.store.table("entity").copy()
        assert recovery.restore(machine=0) == 0
        np.testing.assert_array_equal(trainer.server.store.table("entity"), before)

    def test_crash_loses_and_rebuilds_cache(self, small_split):
        plan = FaultPlan(crashes=(CrashEvent(1, 3),))
        trainer, result = _train(small_split, faults=plan, checkpoint_every=2)
        crashed = next(w for w in trainer.workers if w.machine == 1)
        assert crashed.recoveries == 1
        # The hot table was rebuilt after invalidation (non-empty again).
        assert len(crashed.cache.cached_ids("entity")) > 0
        # Recovery time landed on the crashed worker's clock.
        assert crashed.clock.category("recovery") > 0.0
        assert result.fault_stats["recovery_time"] > 0.0

    def test_checkpoint_cadence(self, small_split):
        trainer = make_trainer("hetkg-d", _config())
        trainer.setup(small_split.train)
        checkpoints = CheckpointManager(trainer, every=3)
        fired = [step for step in range(1, 10) if checkpoints.maybe_snapshot(step)]
        assert fired == [3, 6, 9]
        assert checkpoints.saves == 3
        with pytest.raises(ValueError, match="interval"):
            CheckpointManager(trainer, every=0)


# -------------------------------------------------------- graceful degradation


class TestDegradedPS:
    def test_outage_triggers_stale_overruns(self, small_split):
        # Shards 0 and 1 both unavailable over a window longer than P, so
        # periodic syncs must degrade and the overrun must be recorded.
        plan = FaultPlan(
            outages=(OutageWindow(0, 5, 12), OutageWindow(1, 5, 12)),
            retry=RetryPolicy(max_attempts=2, timeout=0.01),
        )
        trainer, result = _train(small_split, faults=plan)
        assert result.fault_stats["stale_overruns"] >= 1
        overruns = [w.cache.staleness_overruns for w in trainer.workers]
        assert sum(overruns) >= 1
        worst = max(w.cache.max_staleness_overrun for w in trainer.workers)
        assert worst >= 1

    def test_outage_can_lose_pushes(self, small_split):
        plan = FaultPlan(
            outages=(OutageWindow(0, 3, 9), OutageWindow(1, 3, 9)),
            retry=RetryPolicy(max_attempts=2, timeout=0.01),
        )
        _, result = _train(small_split, faults=plan)
        assert result.fault_stats["lost_pushes"] >= 1
        assert all(np.isfinite(p.loss) for p in result.history.points)


# ------------------------------------------------------------------ telemetry


class TestFaultTelemetry:
    def test_event_log_and_export(self, tmp_path):
        telemetry = Telemetry()
        telemetry.add_event(FaultEvent(0, 3, "retry", 0.5, "entity attempt 1"))
        telemetry.add_event(FaultEvent(1, 7, "crash_restart", 2.0))
        assert telemetry.fault_summary() == {"retry": 1, "crash_restart": 1}
        assert len(telemetry.events_of("retry")) == 1
        out = tmp_path / "events.csv"
        telemetry.export_events_csv(out)
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "worker,iteration,kind,sim_time,detail"
        assert len(lines) == 3

    def test_fault_free_run_has_no_events(self, small_split):
        telemetry = Telemetry()
        _train(small_split, telemetry=telemetry)
        assert telemetry.events == []
        assert telemetry.fault_summary() == {}
