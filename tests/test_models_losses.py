"""Tests for repro.models.losses."""

import numpy as np
import pytest

from repro.models.losses import LogisticLoss, MarginRankingLoss, get_loss

EPS = 1e-6


def _numeric_grads(loss, pos, neg):
    """Finite-difference gradients of the loss value."""
    gp = np.zeros_like(pos)
    for i in range(pos.size):
        p = pos.copy()
        p[i] += EPS
        plus = loss.compute(p, neg).value
        p[i] -= 2 * EPS
        minus = loss.compute(p, neg).value
        gp[i] = (plus - minus) / (2 * EPS)
    gn = np.zeros_like(neg)
    for i in range(neg.shape[0]):
        for j in range(neg.shape[1]):
            n = neg.copy()
            n[i, j] += EPS
            plus = loss.compute(pos, n).value
            n[i, j] -= 2 * EPS
            minus = loss.compute(pos, n).value
            gn[i, j] = (plus - minus) / (2 * EPS)
    return gp, gn


class TestMarginRankingLoss:
    def test_zero_when_separated(self):
        loss = MarginRankingLoss(margin=1.0)
        result = loss.compute(np.array([5.0, 5.0]), np.array([[0.0], [1.0]]))
        assert result.value == 0.0
        assert np.all(result.grad_pos == 0)
        assert np.all(result.grad_neg == 0)

    def test_active_pair_value(self):
        loss = MarginRankingLoss(margin=1.0)
        result = loss.compute(np.array([0.0]), np.array([[0.5]]))
        assert result.value == pytest.approx(1.5)
        assert result.grad_pos[0] == -1.0
        assert result.grad_neg[0, 0] == 1.0

    def test_gradients_match_numerical(self, rng):
        loss = MarginRankingLoss(margin=0.7)
        pos = rng.normal(size=6)
        neg = rng.normal(size=(6, 3))
        result = loss.compute(pos, neg)
        gp, gn = _numeric_grads(loss, pos, neg)
        np.testing.assert_allclose(result.grad_pos, gp, atol=1e-5)
        np.testing.assert_allclose(result.grad_neg, gn, atol=1e-5)

    def test_multiple_negatives_accumulate_on_pos(self):
        loss = MarginRankingLoss(margin=1.0)
        result = loss.compute(np.array([0.0]), np.array([[0.0, 0.0, 0.0]]))
        assert result.grad_pos[0] == -3.0

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            MarginRankingLoss(margin=0.0)

    def test_shape_validation(self):
        loss = MarginRankingLoss()
        with pytest.raises(ValueError, match="1-D"):
            loss.compute(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            loss.compute(np.zeros(2), np.zeros((3, 1)))


class TestLogisticLoss:
    def test_confident_predictions_low_loss(self):
        loss = LogisticLoss()
        good = loss.compute(np.array([10.0]), np.array([[-10.0]]))
        bad = loss.compute(np.array([-10.0]), np.array([[10.0]]))
        assert good.value < 0.01
        assert bad.value > 10.0

    def test_gradients_match_numerical(self, rng):
        loss = LogisticLoss()
        pos = rng.normal(size=5)
        neg = rng.normal(size=(5, 2))
        result = loss.compute(pos, neg)
        gp, gn = _numeric_grads(loss, pos, neg)
        np.testing.assert_allclose(result.grad_pos, gp, atol=1e-5)
        np.testing.assert_allclose(result.grad_neg, gn, atol=1e-5)

    def test_grad_signs(self):
        """Positives push scores up (negative grad), negatives down."""
        loss = LogisticLoss()
        result = loss.compute(np.array([0.0]), np.array([[0.0]]))
        assert result.grad_pos[0] < 0
        assert result.grad_neg[0, 0] > 0

    def test_numerically_stable_extremes(self):
        loss = LogisticLoss()
        result = loss.compute(np.array([1000.0, -1000.0]), np.array([[1000.0], [-1000.0]]))
        assert np.isfinite(result.value)
        assert np.all(np.isfinite(result.grad_pos))


class TestGetLoss:
    def test_ranking(self):
        loss = get_loss("ranking", margin=2.0)
        assert isinstance(loss, MarginRankingLoss)
        assert loss.margin == 2.0

    def test_logistic(self):
        assert isinstance(get_loss("logistic"), LogisticLoss)

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown loss"):
            get_loss("hinge2")


class TestSelfAdversarialLoss:
    def test_hard_negatives_weighted_more(self):
        from repro.models.losses import SelfAdversarialLoss

        loss = SelfAdversarialLoss(margin=1.0, temperature=1.0)
        pos = np.array([0.0])
        neg = np.array([[3.0, -3.0]])  # first negative scores far higher
        result = loss.compute(pos, neg)
        # Gradient mass concentrates on the hard negative.
        assert result.grad_neg[0, 0] > 5 * result.grad_neg[0, 1]

    def test_uniform_weights_when_equal_scores(self):
        from repro.models.losses import SelfAdversarialLoss

        loss = SelfAdversarialLoss()
        result = loss.compute(np.array([0.0]), np.array([[1.0, 1.0, 1.0, 1.0]]))
        np.testing.assert_allclose(
            result.grad_neg[0], np.full(4, result.grad_neg[0, 0])
        )

    def test_grad_signs(self):
        from repro.models.losses import SelfAdversarialLoss

        result = SelfAdversarialLoss().compute(np.array([0.0]), np.array([[0.0]]))
        assert result.grad_pos[0] < 0
        assert result.grad_neg[0, 0] > 0

    def test_value_non_negative_and_finite_extremes(self):
        from repro.models.losses import SelfAdversarialLoss

        loss = SelfAdversarialLoss()
        result = loss.compute(
            np.array([1000.0, -1000.0]), np.array([[1000.0], [-1000.0]])
        )
        assert np.isfinite(result.value)
        assert result.value >= 0.0

    def test_grad_matches_detached_numerical(self, rng):
        """With the softmax weights held fixed (as the implementation
        detaches them), gradients must match finite differences."""
        from repro.models.losses import SelfAdversarialLoss, _log_sigmoid

        loss = SelfAdversarialLoss(margin=0.7, temperature=1.3)
        pos = rng.normal(size=4)
        neg = rng.normal(size=(4, 3))
        weights = loss._weights(neg)
        result = loss.compute(pos, neg)

        def detached_value(p, n):
            pos_term = -_log_sigmoid(loss.margin + p)
            neg_term = -(weights * _log_sigmoid(-(loss.margin + n))).sum(axis=1)
            return float((pos_term + neg_term).sum())

        eps = 1e-6
        for i in range(pos.size):
            p = pos.copy()
            p[i] += eps
            plus = detached_value(p, neg)
            p[i] -= 2 * eps
            minus = detached_value(p, neg)
            assert result.grad_pos[i] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-5
            )
        for i in range(neg.shape[0]):
            for j in range(neg.shape[1]):
                n = neg.copy()
                n[i, j] += eps
                plus = detached_value(pos, n)
                n[i, j] -= 2 * eps
                minus = detached_value(pos, n)
                assert result.grad_neg[i, j] == pytest.approx(
                    (plus - minus) / (2 * eps), abs=1e-5
                )

    def test_invalid_params(self):
        from repro.models.losses import SelfAdversarialLoss

        with pytest.raises(ValueError):
            SelfAdversarialLoss(margin=0.0)
        with pytest.raises(ValueError):
            SelfAdversarialLoss(temperature=0.0)

    def test_get_loss(self):
        from repro.models.losses import SelfAdversarialLoss, get_loss

        assert isinstance(get_loss("self-adversarial", 2.0), SelfAdversarialLoss)

    def test_trains_end_to_end(self, small_split):
        from repro.core.config import TrainingConfig
        from repro.core.trainer import HETKGTrainer

        config = TrainingConfig(
            model="rotate", dim=8, loss="self-adversarial", epochs=4,
            batch_size=16, num_negatives=4, num_machines=2, seed=0,
        )
        result = HETKGTrainer(config).train(small_split.train)
        losses = result.history.losses()
        assert losses[-1] < losses[0]
