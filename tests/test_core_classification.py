"""Tests for triple classification."""

import numpy as np
import pytest

from repro.core.classification import classify_triples, _best_threshold
from repro.kg.graph import KnowledgeGraph
from repro.models import TransE


class TestBestThreshold:
    def test_separable(self):
        pos = np.array([2.0, 3.0, 4.0])
        neg = np.array([-1.0, 0.0, 1.0])
        t = _best_threshold(pos, neg)
        assert 1.0 < t <= 2.0

    def test_perfect_accuracy_at_threshold(self):
        pos = np.array([5.0])
        neg = np.array([0.0])
        t = _best_threshold(pos, neg)
        assert (pos >= t).all() and (neg < t).all()


class TestClassifyTriples:
    @pytest.fixture
    def separable_world(self):
        """Embeddings where true triples score ~0 and corruptions score
        very negative: classification should be near perfect."""
        model = TransE(2, norm="l2")
        # A ring: entity i at position (i, 0); relation moves +1.
        n = 8
        entity = np.array([[float(i), 0.0] for i in range(n)])
        relation = np.array([[1.0, 0.0]])
        triples = [(i, 0, i + 1) for i in range(n - 1)]
        graph = KnowledgeGraph(triples, num_entities=n, num_relations=1)
        return model, entity, relation, graph

    def test_separable_high_accuracy(self, separable_world):
        model, entity, relation, graph = separable_world
        result = classify_triples(
            model, entity, relation, graph, graph, seed=0
        )
        assert result.accuracy > 0.7
        assert result.num_examples == 2 * graph.num_triples

    def test_random_embeddings_near_half(self, small_graph, rng):
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        from repro.kg.splits import split_triples

        split = split_triples(small_graph, seed=0)
        result = classify_triples(
            model, entity, relation, split.valid, split.test, seed=0
        )
        # Untrained: accuracy should hover around chance (0.5), though
        # threshold fitting grants a margin above it.
        assert 0.35 < result.accuracy < 0.8

    def test_trained_beats_untrained(self, small_split, small_graph):
        from repro.core.config import TrainingConfig
        from repro.core.trainer import HETKGTrainer

        config = TrainingConfig(
            model="transe", dim=16, epochs=8, batch_size=32,
            num_negatives=8, num_machines=2, seed=0,
        )
        trainer = HETKGTrainer(config)
        trainer.train(small_split.train)
        trained = classify_triples(
            trainer.model,
            trainer.server.store.table("entity"),
            trainer.server.store.table("relation"),
            small_split.valid,
            small_split.test,
            seed=0,
        )
        untrained_model = TransE(16)
        untrained = classify_triples(
            untrained_model,
            untrained_model.init_entities(small_graph.num_entities, 0),
            untrained_model.init_relations(small_graph.num_relations, 0),
            small_split.valid,
            small_split.test,
            seed=0,
        )
        assert trained.accuracy > untrained.accuracy

    def test_empty_sets(self):
        model = TransE(2)
        empty = KnowledgeGraph(np.empty((0, 3), dtype=np.int64), num_entities=4, num_relations=1)
        result = classify_triples(
            model, np.zeros((4, 2)), np.zeros((1, 2)), empty, empty, seed=0
        )
        assert result.accuracy == 0.0
        assert result.num_examples == 0
