"""Tests for the EXPERIMENTS.md report machinery."""


from repro.experiments.paper_reference import PAPER_REFERENCES
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import (
    REPORT_SETTINGS,
    generate_report,
    render_section,
)


class TestCoverage:
    def test_every_experiment_has_a_paper_reference(self):
        assert set(PAPER_REFERENCES) == set(EXPERIMENTS)

    def test_every_experiment_has_report_settings(self):
        assert set(REPORT_SETTINGS) == set(EXPERIMENTS)

    def test_references_are_non_empty(self):
        for ref in PAPER_REFERENCES.values():
            assert ref.paper_values.strip()
            assert ref.shape.strip()


class TestRendering:
    def test_render_section_structure(self):
        section = render_section("table2")
        assert section.startswith("## table2")
        assert "**Paper (" in section
        assert "**Shape to reproduce.**" in section
        assert "```" in section

    def test_generate_report_subset(self, tmp_path):
        out = tmp_path / "report.md"
        text = generate_report(
            only=["table2"], verbose=False, output=str(out)
        )
        assert "# EXPERIMENTS" in text
        assert out.read_text() == text.rstrip("\n") + "\n\n"

    def test_append_mode(self, tmp_path):
        out = tmp_path / "report.md"
        generate_report(only=["table2"], verbose=False, output=str(out))
        before = out.read_text()
        generate_report(
            only=["ablation-negatives"],
            verbose=False,
            output=str(out),
            append=True,
        )
        after = out.read_text()
        assert after.startswith(before)
        assert "## ablation-negatives" in after
        # The header must not be duplicated.
        assert after.count("# EXPERIMENTS") == 1
