"""Cross-feature scenario tests: combinations a real deployment would hit."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.classification import classify_triples
from repro.core.config import TrainingConfig
from repro.core.telemetry import Telemetry
from repro.core.trainer import HETKGTrainer, make_trainer


def config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=3, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        dps_window=4, sync_period=4, seed=5,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestCompressionPlusCache:
    def test_compressed_cached_training_learns(self, small_split):
        """Compression and caching compose: both byte levers active."""
        plain = HETKGTrainer(config()).train(small_split.train)
        compressed = HETKGTrainer(config(compression="int8")).train(
            small_split.train
        )
        assert (
            compressed.comm_totals.remote_bytes < plain.comm_totals.remote_bytes
        )
        assert compressed.history.losses()[-1] < compressed.history.losses()[0]

    def test_compression_does_not_change_hit_ratio(self, small_split):
        plain = HETKGTrainer(config()).train(small_split.train)
        compressed = HETKGTrainer(config(compression="fp16")).train(
            small_split.train
        )
        assert compressed.cache_hit_ratio == pytest.approx(
            plain.cache_hit_ratio, abs=0.05
        )


class TestCheckpointResumeWorkflow:
    def test_train_checkpoint_resume_evaluate(self, small_split, tmp_path):
        """The full operational loop: train, save, restart, warm-start,
        keep training, evaluate."""
        first = HETKGTrainer(config(epochs=2))
        first.train(small_split.train)
        ckpt = tmp_path / "run.npz"
        save_checkpoint(first, ckpt)

        resumed = HETKGTrainer(config(epochs=2, seed=6))
        resumed.setup(small_split.train)
        load_checkpoint(resumed, ckpt)
        result = resumed.train(
            small_split.train,
            eval_graph=small_split.test,
            eval_max_queries=20,
            eval_candidates=50,
        )
        assert np.isfinite(result.final_metrics["mrr"])

    def test_resumed_beats_fresh_at_equal_epochs(self, small_split, tmp_path):
        """Warm-starting from 4 epochs of training must give lower loss
        than a cold start over the same continuation."""
        warm = HETKGTrainer(config(epochs=4))
        warm.train(small_split.train)
        ckpt = tmp_path / "warm.npz"
        save_checkpoint(warm, ckpt)

        cont = HETKGTrainer(config(epochs=1, seed=9))
        cont.setup(small_split.train)
        load_checkpoint(cont, ckpt)
        warm_result = cont.train(small_split.train)

        cold_result = HETKGTrainer(config(epochs=1, seed=9)).train(
            small_split.train
        )
        assert warm_result.history.losses()[0] < cold_result.history.losses()[0]


class TestTelemetryAcrossSystems:
    def test_dglke_vs_hetkg_telemetry(self, small_split):
        """Telemetry quantifies the cache's per-step remote-byte saving."""
        t_plain, t_cached = Telemetry(), Telemetry()
        make_trainer("dglke", config()).train(small_split.train, telemetry=t_plain)
        make_trainer("hetkg-d", config(cache_capacity=256, sync_period=16)).train(
            small_split.train, telemetry=t_cached
        )
        plain_rate = t_plain.summary()["remote_bytes_per_step"]
        cached_rate = t_cached.summary()["remote_bytes_per_step"]
        assert cached_rate < plain_rate


class TestClassificationAfterDistributedTraining:
    def test_all_systems_classify_above_chance(self, small_split):
        for system in ("dglke", "hetkg-c"):
            trainer = make_trainer(system, config(epochs=6))
            trainer.train(small_split.train)
            result = classify_triples(
                trainer.model,
                trainer.server.store.table("entity"),
                trainer.server.store.table("relation"),
                small_split.valid,
                small_split.test,
                seed=0,
            )
            assert result.accuracy > 0.5


class TestStragglerInteraction:
    def test_cache_still_helps_with_straggler(self, small_split):
        """A slow machine must not erase the cache's benefit on the other
        machines' communication."""
        speeds = (1.0, 0.5)
        plain = make_trainer(
            "dglke", config(machine_speeds=speeds)
        ).train(small_split.train)
        # A cache slot must earn its refresh: keep the sync period long
        # enough that hits outweigh the periodic refresh traffic.
        cached = make_trainer(
            "hetkg-c",
            config(machine_speeds=speeds, cache_capacity=128, sync_period=16),
        ).train(small_split.train)
        assert cached.communication_time < plain.communication_time
