"""Tests for repro.core.convergence."""

import pytest

from repro.core.convergence import HistoryPoint, TrainingHistory


def _history():
    h = TrainingHistory()
    h.append(HistoryPoint(1, 10.0, 5.0, {"mrr": 0.1}))
    h.append(HistoryPoint(2, 20.0, 4.0, {}))
    h.append(HistoryPoint(3, 30.0, 3.0, {"mrr": 0.3}))
    return h


class TestTrainingHistory:
    def test_append_and_len(self):
        assert len(_history()) == 3

    def test_epochs_must_increase(self):
        h = _history()
        with pytest.raises(ValueError, match="increase"):
            h.append(HistoryPoint(2, 40.0, 1.0))

    def test_series_skips_missing(self):
        times, values = _history().series("mrr")
        assert times == [10.0, 30.0]
        assert values == [0.1, 0.3]

    def test_epoch_series(self):
        epochs, values = _history().epoch_series("mrr")
        assert epochs == [1, 3]
        assert values == [0.1, 0.3]

    def test_losses(self):
        assert _history().losses() == [5.0, 4.0, 3.0]

    def test_final_metric(self):
        assert _history().final_metric("mrr") == 0.3
        assert _history().final_metric("hits@1", default=-1.0) == -1.0

    def test_time_to_reach(self):
        h = _history()
        assert h.time_to_reach("mrr", 0.05) == 10.0
        assert h.time_to_reach("mrr", 0.2) == 30.0
        assert h.time_to_reach("mrr", 0.9) is None

    def test_empty_history(self):
        h = TrainingHistory()
        assert h.series("mrr") == ([], [])
        assert h.final_metric("mrr") == 0.0
        assert h.time_to_reach("mrr", 0.0) is None
