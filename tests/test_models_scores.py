"""Semantic properties of individual score functions."""

import numpy as np
import pytest

from repro.models import (
    ComplEx,
    DistMult,
    HolE,
    RESCAL,
    TransD,
    TransE,
    TransH,
    TransR,
)
from repro.models.base import MODEL_REGISTRY, check_batch_shapes, get_model
from repro.utils.rng import make_rng


class TestRegistry:
    def test_all_models_registered(self):
        assert set(MODEL_REGISTRY) == {
            "transe",
            "transh",
            "transr",
            "transd",
            "distmult",
            "rescal",
            "complex",
            "hole",
            "rotate",
            "simple",
            "quate",
        }

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("nope", 4)

    def test_get_model_kwargs(self):
        model = get_model("transe", 4, norm="l2")
        assert model.norm == "l2"

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            TransE(0)

    def test_repr(self):
        assert "dim=8" in repr(DistMult(8))


class TestGeometry:
    @pytest.mark.parametrize(
        "name,entity_mult,relation_mult",
        [
            ("transe", 1, 1),
            ("transh", 1, 2),
            ("transd", 2, 2),
            ("distmult", 1, 1),
            ("complex", 2, 2),
            ("hole", 1, 1),
            ("rotate", 2, 1),
            ("simple", 2, 2),
            ("quate", 4, 4),
        ],
    )
    def test_row_widths(self, name, entity_mult, relation_mult):
        model = get_model(name, 5)
        assert model.entity_dim == 5 * entity_mult
        assert model.relation_dim == 5 * relation_mult

    def test_transr_relation_width(self):
        assert TransR(4).relation_dim == 4 + 16

    def test_rescal_relation_width(self):
        assert RESCAL(4).relation_dim == 16

    def test_init_shapes(self):
        for name in MODEL_REGISTRY:
            model = get_model(name, 4)
            assert model.init_entities(7, 0).shape == (7, model.entity_dim)
            assert model.init_relations(3, 0).shape == (3, model.relation_dim)

    def test_init_deterministic(self):
        m = TransE(8)
        assert np.array_equal(m.init_entities(5, 3), m.init_entities(5, 3))


class TestTransE:
    def test_perfect_triple_scores_zero(self):
        m = TransE(4)
        h = np.array([[1.0, 0.0, 2.0, -1.0]])
        r = np.array([[0.5, 0.5, -1.0, 0.0]])
        t = h + r
        assert m.score(h, r, t)[0] == pytest.approx(0.0, abs=1e-5)

    def test_worse_triple_scores_lower(self):
        m = TransE(4)
        h = np.ones((1, 4))
        r = np.zeros((1, 4))
        near, far = h + 0.1, h + 5.0
        assert m.score(h, r, near)[0] > m.score(h, r, far)[0]

    def test_l2_norm_option(self):
        m = TransE(2, norm="l2")
        h, r = np.array([[3.0, 0.0]]), np.array([[0.0, 4.0]])
        t = np.zeros((1, 2))
        assert m.score(h, r, t)[0] == pytest.approx(-5.0, abs=1e-5)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            TransE(4, norm="l3")


class TestDistMult:
    def test_symmetric_in_head_tail(self, rng):
        m = DistMult(6)
        h = rng.normal(size=(3, 6))
        r = rng.normal(size=(3, 6))
        t = rng.normal(size=(3, 6))
        np.testing.assert_allclose(m.score(h, r, t), m.score(t, r, h))

    def test_known_value(self):
        m = DistMult(2)
        s = m.score(np.array([[1.0, 2.0]]), np.array([[3.0, 4.0]]), np.array([[5.0, 6.0]]))
        assert s[0] == pytest.approx(1 * 3 * 5 + 2 * 4 * 6)


class TestComplEx:
    def test_asymmetric(self, rng):
        m = ComplEx(4)
        h = rng.normal(size=(1, 8))
        r = rng.normal(size=(1, 8))
        t = rng.normal(size=(1, 8))
        assert m.score(h, r, t)[0] != pytest.approx(m.score(t, r, h)[0])

    def test_real_relation_reduces_to_distmult_like(self, rng):
        """With zero imaginary parts everywhere, ComplEx = DistMult."""
        m = ComplEx(4)
        d = DistMult(4)
        hr = rng.normal(size=(2, 4))
        rr = rng.normal(size=(2, 4))
        tr = rng.normal(size=(2, 4))
        zeros = np.zeros_like(hr)
        stacked = lambda re: np.concatenate([re, zeros], axis=1)
        np.testing.assert_allclose(
            m.score(stacked(hr), stacked(rr), stacked(tr)), d.score(hr, rr, tr)
        )


class TestRESCAL:
    def test_identity_matrix_is_dot_product(self, rng):
        m = RESCAL(3)
        h = rng.normal(size=(2, 3))
        t = rng.normal(size=(2, 3))
        r = np.tile(np.eye(3).ravel(), (2, 1))
        np.testing.assert_allclose(m.score(h, r, t), (h * t).sum(axis=1))


class TestTransH:
    def test_projection_removes_normal_component(self):
        """Moving the tail along the hyperplane normal must not change the
        score (the projection removes that component)."""
        m = TransH(3)
        rng = make_rng(0)
        h = rng.normal(size=(1, 3))
        t = rng.normal(size=(1, 3))
        w = np.array([[1.0, 0.0, 0.0]])
        d_r = rng.normal(size=(1, 3))
        r = np.concatenate([w, d_r], axis=1)
        base = m.score(h, r, t)[0]
        shifted = m.score(h, r, t + np.array([[5.0, 0.0, 0.0]]))[0]
        assert shifted == pytest.approx(base, abs=1e-6)


class TestTransR:
    def test_identity_projection_matches_transe_l2(self, rng):
        mr = TransR(3)
        me = TransE(3, norm="l2")
        h = rng.normal(size=(2, 3))
        t = rng.normal(size=(2, 3))
        r_vec = rng.normal(size=(2, 3))
        mats = np.tile(np.eye(3).ravel(), (2, 1))
        r = np.concatenate([r_vec, mats], axis=1)
        np.testing.assert_allclose(
            mr.score(h, r, t), me.score(h, r_vec, t), rtol=1e-6
        )


class TestTransD:
    def test_zero_projection_matches_transe_l2(self, rng):
        """With zero projection vectors, TransD degenerates to TransE."""
        md = TransD(3)
        me = TransE(3, norm="l2")
        hv = rng.normal(size=(2, 3))
        tv = rng.normal(size=(2, 3))
        rv = rng.normal(size=(2, 3))
        zeros = np.zeros((2, 3))
        h = np.concatenate([hv, zeros], axis=1)
        t = np.concatenate([tv, zeros], axis=1)
        r = np.concatenate([rv, zeros], axis=1)
        np.testing.assert_allclose(md.score(h, r, t), me.score(hv, rv, tv), rtol=1e-6)


class TestHolE:
    def test_correlation_identity(self, rng):
        """score = r . corr(h, t) computed naively must match the FFT."""
        from repro.models.hole import circular_correlation

        m = HolE(5)
        h = rng.normal(size=(1, 5))
        r = rng.normal(size=(1, 5))
        t = rng.normal(size=(1, 5))
        naive = np.zeros(5)
        for k in range(5):
            naive[k] = sum(h[0, i] * t[0, (k + i) % 5] for i in range(5))
        np.testing.assert_allclose(circular_correlation(h, t)[0], naive, atol=1e-10)
        assert m.score(h, r, t)[0] == pytest.approx(float((r[0] * naive).sum()))


class TestCheckBatchShapes:
    def test_accepts_valid(self, rng):
        m = TransE(4)
        check_batch_shapes(m, rng.normal(size=(2, 4)), rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))

    def test_rejects_wrong_entity_width(self, rng):
        m = TransE(4)
        with pytest.raises(ValueError, match="entity rows"):
            check_batch_shapes(m, rng.normal(size=(2, 3)), rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))

    def test_rejects_mismatched_batch(self, rng):
        m = TransE(4)
        with pytest.raises(ValueError, match="batch sizes"):
            check_batch_shapes(m, rng.normal(size=(2, 4)), rng.normal(size=(3, 4)), rng.normal(size=(2, 4)))

    def test_rejects_1d(self, rng):
        m = TransE(4)
        with pytest.raises(ValueError, match="2-D"):
            check_batch_shapes(m, rng.normal(size=4), rng.normal(size=(1, 4)), rng.normal(size=(1, 4)))


class TestQuatE:
    def test_identity_rotation_is_dot_product(self, rng):
        """With relation quaternion (1, 0, 0, 0), the Hamilton product is
        the identity and the score reduces to <h, t>."""
        from repro.models import QuatE

        m = QuatE(3)
        h = rng.normal(size=(2, 12))
        t = rng.normal(size=(2, 12))
        r = np.zeros((2, 12))
        r[:, :3] = 1.0  # a-component = 1, b = c = d = 0
        np.testing.assert_allclose(
            m.score(h, r, t), (h * t).sum(axis=1), rtol=1e-6
        )

    def test_rotation_preserves_norm(self, rng):
        """Unit-quaternion rotation is an isometry: |h (x) r_hat| = |h|,
        so score(h, r, h-rotated) peaks when t aligns with the rotation."""
        from repro.models import QuatE
        from repro.models.quate import _split, hamilton

        m = QuatE(4)
        h = rng.normal(size=(3, 16))
        r = rng.normal(size=(3, 16))
        r_hat, _ = m._normalize(r)
        rotated = hamilton(_split(h, 4), r_hat)
        norm_before = sum((p**2).sum(axis=1) for p in _split(h, 4))
        norm_after = sum((p**2).sum(axis=1) for p in rotated)
        np.testing.assert_allclose(norm_after, norm_before, rtol=1e-9)

    def test_relation_scale_invariant(self, rng):
        """Scaling the raw relation must not change the score (it is
        normalised to a unit quaternion)."""
        from repro.models import QuatE

        m = QuatE(3)
        h = rng.normal(size=(2, 12))
        t = rng.normal(size=(2, 12))
        r = rng.normal(size=(2, 12))
        np.testing.assert_allclose(
            m.score(h, r, t), m.score(h, 7.0 * r, t), rtol=1e-8
        )
