"""Tests for repro.kg.datasets."""

import numpy as np
import pytest

from repro.kg.datasets import (
    FB15K_SPEC,
    FREEBASE86M_SPEC,
    WN18_SPEC,
    DatasetSpec,
    generate_dataset,
    load_tsv,
    save_tsv,
)
from repro.kg.graph import HEAD, REL, TAIL


class TestSpecs:
    def test_fb15k_matches_paper_table2(self):
        assert FB15K_SPEC.num_entities == 14_951
        assert FB15K_SPEC.num_relations == 1_345
        assert FB15K_SPEC.num_triples == 592_213

    def test_wn18_matches_paper_table2(self):
        assert WN18_SPEC.num_entities == 40_943
        assert WN18_SPEC.num_relations == 18
        assert WN18_SPEC.num_triples == 151_442

    def test_freebase_mini_is_scaled_down(self):
        assert FREEBASE86M_SPEC.num_entities == 86_054  # 86M / 1000

    def test_scaled(self):
        spec = FB15K_SPEC.scaled(0.1)
        assert spec.num_entities == 1495
        assert spec.num_triples == 59221
        assert 2 <= spec.num_relations <= FB15K_SPEC.num_relations

    def test_scaled_relations_shrink_slower(self):
        spec = FB15K_SPEC.scaled(0.04)
        # sqrt scaling: 1345 * 0.2 = 269, not 1345 * 0.04 = 54.
        assert spec.num_relations > FB15K_SPEC.num_relations * 0.04 * 2

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FB15K_SPEC.scaled(0)
        with pytest.raises(ValueError):
            FB15K_SPEC.scaled(-0.5)

    def test_scaled_rejects_non_finite(self):
        with pytest.raises(ValueError):
            FB15K_SPEC.scaled(float("inf"))
        with pytest.raises(ValueError):
            FB15K_SPEC.scaled(float("nan"))

    def test_scaled_up(self):
        """scale > 1 grows entities/triples proportionally and keeps the
        relation vocabulary fixed (real KGs grow entities, not relations)."""
        spec = FB15K_SPEC.scaled(2.5)
        assert spec.num_entities == 37_377
        assert spec.num_triples == 1_480_532
        assert spec.num_relations == FB15K_SPEC.num_relations
        assert spec.name == "fb15k-x2.5"

    def test_default_communities(self):
        spec = DatasetSpec("x", 10_000, 10, 1000)
        assert spec.communities == 100


class TestGenerate:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_dataset("fb15k", scale=0.015, seed=3)

    def test_counts_match_spec(self, graph):
        spec = FB15K_SPEC.scaled(0.015)
        assert graph.num_entities == spec.num_entities
        assert graph.num_relations == spec.num_relations
        assert graph.num_triples == spec.num_triples

    def test_no_self_loops(self, graph):
        assert not np.any(graph.triples[:, HEAD] == graph.triples[:, TAIL])

    def test_no_duplicate_triples(self, graph):
        assert len(graph.triple_set()) == graph.num_triples

    def test_every_entity_appears(self, graph):
        assert np.all(graph.entity_degrees() > 0)

    def test_deterministic(self):
        a = generate_dataset("wn18", scale=0.02, seed=5)
        b = generate_dataset("wn18", scale=0.02, seed=5)
        assert np.array_equal(a.triples, b.triples)

    def test_upscaled_determinism_pinned(self):
        """Upscaled generation is pinned to an exact fingerprint so silent
        generator changes (which would invalidate the memory-tiering
        experiment's stored curves) are caught."""
        import hashlib

        g = generate_dataset(DatasetSpec("tiny", 64, 4, 200, seed=7), scale=4.0)
        assert (g.num_entities, g.num_relations, g.num_triples) == (256, 4, 800)
        digest = hashlib.sha256(
            np.ascontiguousarray(g.triples).tobytes()
        ).hexdigest()
        assert digest[:16] == "ee84e06f43c201a1"

    def test_seed_changes_graph(self):
        a = generate_dataset("wn18", scale=0.02, seed=5)
        b = generate_dataset("wn18", scale=0.02, seed=6)
        assert not np.array_equal(a.triples, b.triples)

    def test_degree_skew_present(self, graph):
        """The generator must produce the skew Fig. 2 relies on: the top
        decile of entities should account for well over 2x its uniform
        share of accesses."""
        degrees = np.sort(graph.entity_degrees())[::-1]
        top = degrees[: len(degrees) // 10].sum()
        assert top / degrees.sum() > 0.2

    def test_relation_skew_present(self, graph):
        counts = np.sort(graph.relation_counts())[::-1]
        top = counts[: max(1, len(counts) // 10)].sum()
        assert top / counts.sum() > 0.3

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate_dataset("nope")

    def test_accepts_custom_spec(self):
        spec = DatasetSpec("custom", 50, 4, 300, seed=1)
        g = generate_dataset(spec)
        assert g.num_entities == 50
        assert g.num_triples == 300

    def test_structure_is_learnable_signal(self):
        """Most (head-community, relation) pairs should concentrate their
        tails in one community — the learnable regularity."""
        spec = DatasetSpec("s", 120, 6, 2000, structure_noise=0.02, seed=2)
        g = generate_dataset(spec)
        # Recover community concentration directly from co-occurrences:
        # group tails by (h, r) is sparse, so group by relation instead and
        # check tails are far from uniform.
        from collections import Counter

        for r in range(3):
            tails = g.triples[g.triples[:, REL] == r][:, TAIL]
            if len(tails) < 50:
                continue
            counts = Counter(tails.tolist())
            top10 = sum(c for _, c in counts.most_common(10))
            assert top10 / len(tails) > 0.15


class TestTsvRoundtrip:
    def test_roundtrip_with_labels(self, tmp_path):
        from repro.kg.graph import KnowledgeGraph

        g = KnowledgeGraph.from_labeled_triples(
            [("a", "r1", "b"), ("b", "r2", "c"), ("c", "r1", "a")]
        )
        path = tmp_path / "triples.tsv"
        save_tsv(g, path)
        loaded = load_tsv(path)
        assert loaded.num_triples == 3
        assert loaded.entity_labels == g.entity_labels

    def test_roundtrip_without_labels(self, tmp_path, tiny_graph):
        path = tmp_path / "ids.tsv"
        save_tsv(tiny_graph, path)
        loaded = load_tsv(path)
        assert loaded.num_triples == tiny_graph.num_triples

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\n")
        with pytest.raises(ValueError, match="3 tab-separated"):
            load_tsv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("a\tr\tb\n\nb\tr\tc\n")
        assert load_tsv(path).num_triples == 2
