"""End-to-end tracing tests: spans must reconcile with the cost models.

The tracer observes the same simulated events as the per-worker
``SimClock`` instances, so per-category span totals on each worker's
track must equal the clock's category breakdown exactly (the acceptance
criterion for the observability layer).
"""

import json

import pytest

from repro import cli
from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer
from repro.obs.export import validate_chrome_trace, validate_chrome_trace_file
from repro.obs.tracer import NULL_SCOPE, Tracer, get_tracer
from repro.serving.frontend import ServingFrontend
from repro.serving.store import EmbeddingStore
from repro.serving.workload import WorkloadSpec, ZipfianWorkload


def config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        dps_window=4, sync_period=4, seed=1,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="module")
def traced_run(small_split):
    tracer = Tracer()
    trainer = HETKGTrainer(config())
    result = trainer.train(small_split.train, tracer=tracer)
    return tracer, trainer, result


class TestTrainerReconciliation:
    def test_span_totals_equal_clock_breakdown(self, traced_run):
        """Acceptance criterion: per-category span totals on each worker
        track equal that worker's SimClock category breakdown."""
        tracer, trainer, _ = traced_run
        for worker in trainer.workers:
            totals = tracer.sink.category_totals(f"worker{worker.machine}")
            for category in ("compute", "communication"):
                assert totals[category] == pytest.approx(
                    worker.clock.category(category), rel=1e-9
                ), (worker.machine, category)

    def test_span_totals_cover_full_clock(self, traced_run):
        tracer, trainer, _ = traced_run
        for worker in trainer.workers:
            totals = tracer.sink.category_totals(f"worker{worker.machine}")
            assert sum(totals.values()) == pytest.approx(worker.clock.elapsed)

    def test_all_phases_present(self, traced_run):
        tracer, _, _ = traced_run
        names = {s.name for s in tracer.sink.spans}
        assert {"sample", "fetch", "compute", "push", "sync", "install",
                "cache.install", "cache.fetch", "cache.sync",
                "ps.pull", "ps.push"} <= names

    def test_step_counters_match_iterations(self, traced_run):
        tracer, trainer, _ = traced_run
        steps = tracer.metrics.counter("worker.steps").value
        assert steps == sum(w.iterations for w in trainer.workers)
        assert tracer.metrics.counter("worker.syncs").value > 0

    def test_fetch_spans_carry_byte_attrs(self, traced_run):
        tracer, _, result = traced_run
        fetched = [s for s in tracer.sink.spans_named("fetch")]
        assert fetched
        assert all("bytes" in s.attrs for s in fetched)
        traced_bytes = sum(s.attrs["bytes"] for s in fetched)
        assert 0 < traced_bytes <= result.comm_totals.total_bytes

    def test_export_validates(self, traced_run):
        tracer, _, _ = traced_run
        summary = validate_chrome_trace(tracer.chrome_trace())
        assert summary["spans"] > 0
        assert summary["counters"] > 0
        assert summary["seconds[communication]"] > 0


class TestDisabledByDefault:
    def test_untraced_train_keeps_null_scopes(self, small_split):
        trainer = HETKGTrainer(config(epochs=1))
        trainer.train(small_split.train)
        assert get_tracer().enabled is False
        for worker in trainer.workers:
            assert worker.trace is NULL_SCOPE
            assert worker.cache.trace is NULL_SCOPE

    def test_results_identical_with_and_without_tracing(self, small_split):
        plain = HETKGTrainer(config()).train(small_split.train)
        traced = HETKGTrainer(config()).train(small_split.train, tracer=Tracer())
        assert traced.history.losses() == plain.history.losses()
        assert traced.sim_time == plain.sim_time
        assert traced.comm_totals.remote_bytes == plain.comm_totals.remote_bytes


class TestServingReconciliation:
    def test_frontend_spans_match_clock(self, small_split):
        trainer = HETKGTrainer(config(epochs=1))
        trainer.train(small_split.train)
        store = EmbeddingStore.from_trainer(trainer)
        tracer = Tracer()
        frontend = ServingFrontend(store, tracer=tracer)
        workload = ZipfianWorkload(
            store.num_entities,
            store.num_relations,
            WorkloadSpec(num_queries=120, seed=3),
        )
        frontend.run(workload.generate())
        totals = tracer.sink.category_totals("serving@0")
        for category in ("compute", "communication", "idle"):
            assert totals.get(category, 0.0) == pytest.approx(
                frontend.clock.category(category)
            ), category
        assert tracer.metrics.counter("serve.queries").value == 120
        assert tracer.metrics.counter("serve.batches").value > 0
        validate_chrome_trace(tracer.chrome_trace())


class TestCliTrace:
    def test_train_trace_smoke(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = cli.main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.012",
                "--epochs", "1", "--machines", "2", "--dim", "8",
                "--batch-size", "64", "--negatives", "4",
                "--eval-queries", "10", "--trace", str(out),
            ]
        )
        assert status == 0
        summary = validate_chrome_trace_file(str(out))
        assert summary["spans"] > 0
        assert "trace written" in capsys.readouterr().out
        # the CLI must uninstall its process-wide tracer afterwards
        assert get_tracer().enabled is False
        # file is plain JSON that chrome://tracing accepts
        trace = json.loads(out.read_text())
        assert isinstance(trace["traceEvents"], list)
