"""Equivalence guard for the vectorized hot-path kernels.

Two layers of protection:

1. **Golden runs** — seeded HET-KG-C / HET-KG-D / DGL-KE training runs
   whose every output (losses, simulated clocks, byte/message counters,
   cache hit counters, eval metrics) was fingerprinted with the
   *pre-vectorization* kernels and committed to
   ``tests/golden/train_golden.json`` (floats as ``float.hex()``).  The
   vectorized kernels must reproduce every value bit for bit.

2. **Property tests** — each kernel against the readable reference
   implementation it replaced (dict slot maps, Python sorts,
   ``np.add.at`` scatters, per-query eval loops, O(capacity) LFU scans),
   on randomized inputs, asserting *exact* equality, not closeness.

If one of these fails after an intentional numerics change (e.g. a new
optimizer default), regenerate the golden file with
``PYTHONPATH=src python tests/golden/capture.py`` — never to paper over
an unintended kernel divergence.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
from collections import Counter, OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.filtering import _top_ids, filter_hot_ids
from repro.cache.prefetch import _count_batch, _fold_counts
from repro.cache.policies import EvictionPolicy, LFUCache
from repro.cache.table import CacheTable
from repro.core.evaluation import (
    FilterIndex,
    _full_ranks_reference,
    _ranks_batched,
    evaluate_link_prediction,
)
from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph, TripleIndex
from repro.models import get_model
from repro.optim.base import coalesce
from repro.sampling.negative import NegativeSampler
from repro.utils.kernels import scatter_add_rows

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "golden_capture", GOLDEN_DIR / "capture.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------- golden runs


class TestGoldenRuns:
    """Bit-identical training outputs vs the committed pre-refactor runs."""

    golden = json.loads((GOLDEN_DIR / "train_golden.json").read_text())
    capture = _load_capture_module()

    @pytest.mark.parametrize(
        "entry", [k for k in golden if k != "config"]
    )
    def test_fingerprint_bit_identical(self, entry):
        if entry == "hetkg-d+filtered-negatives":
            fresh = self.capture.fingerprint("hetkg-d", filtered_negatives=True)
        elif entry == "dglke+full-ranking-eval":
            fresh = self.capture.fingerprint("dglke", eval_candidates=None)
        else:
            fresh = self.capture.fingerprint(entry)
        assert fresh == self.golden[entry], (
            f"{entry}: vectorized kernels diverged from the golden run "
            "(every float is compared via float.hex() — this is a real "
            "numerics change, not jitter)"
        )


# ----------------------------------------------------- cache table vs dict map


class RefDictTable:
    """The pre-vectorization dict slot map (membership oracle)."""

    def __init__(self, ids: np.ndarray, rows: np.ndarray) -> None:
        self._slot_of = {int(e): i for i, e in enumerate(ids)}
        self._rows = rows

    def partition(self, ids: np.ndarray):
        mask = np.fromiter(
            (int(e) in self._slot_of for e in ids), dtype=bool, count=len(ids)
        )
        return mask, ids[mask], ids[~mask]

    def get(self, ids: np.ndarray) -> np.ndarray:
        slots = [self._slot_of[int(e)] for e in ids]
        return self._rows[slots]


class TestCacheTableVsDictMap:
    @given(
        ids=st.lists(st.integers(0, 500), min_size=0, max_size=40, unique=True),
        queries=st.lists(st.integers(0, 500), min_size=0, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_and_get_agree(self, ids, queries):
        ids = np.asarray(ids, dtype=np.int64)
        queries = np.asarray(queries, dtype=np.int64)
        rows = np.arange(3.0 * len(ids)).reshape(len(ids), 3)
        table = CacheTable(max(1, len(ids)), 3)
        table.install(ids, rows)
        ref = RefDictTable(ids, rows)

        mask, hit_ids, miss_ids = table.partition_hits(queries)
        ref_mask, ref_hits, ref_misses = ref.partition(queries)
        assert np.array_equal(mask, ref_mask)
        assert np.array_equal(hit_ids, ref_hits)
        assert np.array_equal(miss_ids, ref_misses)
        if len(hit_ids):
            assert np.array_equal(table.get(hit_ids), ref.get(hit_ids))

    @given(
        ids=st.lists(st.integers(0, 200), min_size=1, max_size=30, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_slots_match_install_order(self, ids):
        ids = np.asarray(ids, dtype=np.int64)
        table = CacheTable(len(ids), 2)
        table.install(ids, np.zeros((len(ids), 2)))
        mask, slots = table.lookup(ids)
        assert mask.all()
        # install assigns ids[i] -> slot i, exactly like the dict map did.
        assert np.array_equal(slots, np.arange(len(ids)))


# -------------------------------------------------------- top-k tie-breaking


def ref_top_ids(counts: dict[int, int], k: int) -> np.ndarray:
    """Pre-vectorization Python sort on (-count, id)."""
    if k <= 0 or not counts:
        return np.empty(0, dtype=np.int64)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return np.asarray([key for key, _ in ranked[:k]], dtype=np.int64)


counts_strategy = st.dictionaries(
    st.integers(0, 80), st.integers(1, 8), min_size=0, max_size=60
)


class TestTopKTieBreaking:
    @given(counts=counts_strategy, k=st.integers(0, 70))
    @settings(max_examples=80, deadline=None)
    def test_lexsort_matches_python_sort(self, counts, k):
        assert np.array_equal(_top_ids(counts, k), ref_top_ids(counts, k))

    @given(
        ent=counts_strategy, rel=counts_strategy, capacity=st.integers(1, 60)
    )
    @settings(max_examples=60, deadline=None)
    def test_frequency_only_merge_matches_reference(self, ent, rel, capacity):
        """HET-KG-N path: merged (count desc, kind, id) ordering."""
        hot = filter_hot_ids(ent, rel, capacity, entity_ratio=None)
        merged = [(-c, 0, e) for e, c in ent.items()]
        merged += [(-c, 1, r) for r, c in rel.items()]
        merged.sort()
        top = merged[:capacity]
        assert np.array_equal(
            hot.entities,
            np.asarray([e for _, kind, e in top if kind == 0], dtype=np.int64),
        )
        assert np.array_equal(
            hot.relations,
            np.asarray([r for _, kind, r in top if kind == 1], dtype=np.int64),
        )


# ------------------------------------------------- prefetch counting kernels


class TestFoldCounts:
    @given(seed=st.integers(0, 1000), n_batches=st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_fold_matches_per_batch_counter(self, seed, n_batches):
        """_fold_counts must agree with applying _count_batch batch by batch."""
        from repro.sampling.negative import MiniBatch

        rng = np.random.default_rng(seed)
        batches = []
        for _ in range(n_batches):
            b, n = int(rng.integers(1, 8)), int(rng.integers(1, 5))
            batches.append(
                MiniBatch(
                    positives=rng.integers(0, 30, size=(b, 3)).astype(np.int64),
                    neg_entities=rng.integers(0, 30, size=(b, n)).astype(np.int64),
                    corrupt_head=rng.random(b) < 0.5,
                )
            )
        ref_ent: dict[int, int] = {}
        ref_rel: dict[int, int] = {}
        for batch in batches:
            _count_batch(batch, ref_ent, ref_rel)

        ent_chunks, rel_chunks, rel_weights = [], [], []
        for batch in batches:
            ent_chunks += [
                batch.positives[:, HEAD],
                batch.positives[:, TAIL],
                batch.neg_entities.ravel(),
            ]
            rel_chunks.append(batch.positives[:, REL])
            rel_weights.append(1 + batch.num_negatives)
        assert _fold_counts(ent_chunks) == ref_ent
        assert _fold_counts(rel_chunks, rel_weights) == ref_rel


# ------------------------------------------------------ scatter-add kernels


class TestScatterAdd:
    @given(
        seed=st.integers(0, 1000),
        n_out=st.integers(1, 40),
        n_in=st.integers(0, 120),
        dim=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_bincount_scatter_bit_identical_to_add_at(
        self, seed, n_out, n_in, dim
    ):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, n_out, size=n_in)
        rows = rng.standard_normal((n_in, dim))
        ref = np.zeros((n_out, dim))
        np.add.at(ref, idx, rows)
        assert np.array_equal(scatter_add_rows(idx, rows, n_out), ref)

    @given(seed=st.integers(0, 1000), n_in=st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_coalesce_bit_identical_to_add_at_reference(self, seed, n_in):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 25, size=n_in).astype(np.int64)
        grads = rng.standard_normal((n_in, 4))
        unique, summed = coalesce(ids, grads)
        ref_unique, ref_inverse = np.unique(ids, return_inverse=True)
        ref_summed = np.zeros((len(ref_unique), 4))
        np.add.at(ref_summed, ref_inverse, grads)
        assert np.array_equal(unique, ref_unique)
        assert np.array_equal(summed, ref_summed)


# ------------------------------------------------------------- triple index


class TestTripleIndex:
    @given(
        seed=st.integers(0, 500),
        n_triples=st.integers(0, 60),
        n_queries=st.integers(0, 80),
    )
    @settings(max_examples=60, deadline=None)
    def test_contains_batch_matches_set(self, seed, n_triples, n_queries):
        rng = np.random.default_rng(seed)
        triples = np.column_stack(
            [
                rng.integers(0, 20, size=n_triples),
                rng.integers(0, 5, size=n_triples),
                rng.integers(0, 20, size=n_triples),
            ]
        ).astype(np.int64)
        index = TripleIndex(triples, 20, 5)
        truth = {(int(h), int(r), int(t)) for h, r, t in triples}
        qh = rng.integers(0, 20, size=n_queries)
        qr = rng.integers(0, 5, size=n_queries)
        qt = rng.integers(0, 20, size=n_queries)
        expected = np.fromiter(
            ((int(h), int(r), int(t)) in truth for h, r, t in zip(qh, qr, qt)),
            dtype=bool,
            count=n_queries,
        )
        assert np.array_equal(index.contains_batch(qh, qr, qt), expected)
        for h, r, t in zip(qh[:10], qr[:10], qt[:10]):
            assert index.contains(h, r, t) == ((int(h), int(r), int(t)) in truth)


# ------------------------------------------------- negative resampler (RNG)


class TestNegativeResamplerRNGFaithful:
    def _reference_resample(self, sampler, batch, retries=10):
        """The pre-vectorization per-entry scan, verbatim."""
        pos = batch.positives
        for i in range(batch.size):
            h, r, t = (int(x) for x in pos[i])
            head = bool(batch.corrupt_head[i])
            for j in range(batch.num_negatives):
                e = int(batch.neg_entities[i, j])
                candidate = (e, r, t) if head else (h, r, e)
                attempts = 0
                while candidate in sampler._filter and attempts < retries:
                    e = int(sampler._draw_entities(1)[0])
                    candidate = (e, r, t) if head else (h, r, e)
                    attempts += 1
                batch.neg_entities[i, j] = e

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_same_negatives_and_rng_state(self, small_graph, seed):
        def build(sampler_seed):
            return NegativeSampler(
                small_graph.num_entities,
                num_negatives=4,
                strategy="chunked",
                chunk_size=8,
                filter_graph=small_graph,
                seed=sampler_seed,
            )

        rng = np.random.default_rng(seed)
        positives = small_graph.triples[
            rng.choice(len(small_graph.triples), size=48, replace=False)
        ]
        vec = build(seed)
        ref = build(seed)
        vec_batch = vec.corrupt(positives)  # vectorized detection inside

        ref_batch = ref.corrupt(positives)
        # corrupt() already resampled via the vectorized path in both;
        # instead drive the reference loop manually on a pristine batch.
        ref2 = build(seed)
        ref2._filter_index = None  # force manual control
        ref2._filter = None  # disable in-corrupt resampling
        raw = ref2.corrupt(positives)
        ref2._filter = small_graph.triple_set()
        self._reference_resample(ref2, raw)

        assert np.array_equal(vec_batch.neg_entities, raw.neg_entities)
        assert np.array_equal(vec_batch.neg_entities, ref_batch.neg_entities)
        # Identical residual RNG state: the next draw must agree.
        assert np.array_equal(
            vec._draw_entities(8), ref2._draw_entities(8)
        )


# ------------------------------------------------------- evaluation kernels


@pytest.fixture(scope="module")
def eval_setup():
    rng = np.random.default_rng(5)
    graph = KnowledgeGraph(
        np.column_stack(
            [
                rng.integers(0, 40, size=120),
                rng.integers(0, 6, size=120),
                rng.integers(0, 40, size=120),
            ]
        ).astype(np.int64),
        num_entities=40,
        num_relations=6,
    )
    model = get_model("transe", dim=6)
    entity_table = rng.standard_normal((40, 6))
    relation_table = rng.standard_normal((6, 6))
    return model, entity_table, relation_table, graph


class TestEvaluationEquivalence:
    @pytest.mark.parametrize("replace_head", [True, False])
    @pytest.mark.parametrize("filtered", [True, False])
    def test_full_ranks_batched_vs_reference(
        self, eval_setup, replace_head, filtered
    ):
        model, ent, rel, graph = eval_setup
        filter_index = FilterIndex(graph.triple_set()) if filtered else None
        ref = _full_ranks_reference(
            model, ent, rel, graph.triples, replace_head, filter_index
        )
        vec = _ranks_batched(
            model, ent, rel, graph.triples, replace_head, filter_index
        )
        assert vec == ref
        # Tiny blocks exercise the chunking edges too.
        assert (
            _ranks_batched(
                model, ent, rel, graph.triples, replace_head, filter_index,
                block_rows=64,
            )
            == ref
        )

    @pytest.mark.parametrize("num_candidates", [None, 10])
    @pytest.mark.parametrize("filtered", [True, False])
    def test_evaluate_batched_vs_reference_loop(
        self, eval_setup, num_candidates, filtered
    ):
        model, ent, rel, graph = eval_setup
        filter_set = graph.triple_set() if filtered else None
        kwargs = dict(
            filter_set=filter_set,
            max_queries=25,
            num_candidates=num_candidates,
            seed=9,
        )
        vec = evaluate_link_prediction(
            model, ent, rel, graph, batched=True, **kwargs
        )
        ref = evaluate_link_prediction(
            model, ent, rel, graph, batched=False, **kwargs
        )
        assert vec == ref  # dataclass equality: exact float comparison


# --------------------------------------------------------------- LFU policy


class RefLFU(EvictionPolicy):
    """The former O(capacity) min-scan LFU."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Counter[int] = Counter()
        self._members: OrderedDict[int, None] = OrderedDict()

    def _access(self, key: int) -> bool:
        self._counts[key] += 1
        if key in self._members:
            self._members.move_to_end(key)
            return True
        if len(self._members) >= self.capacity:
            victim = min(self._members, key=lambda k: (self._counts[k], 0))
            del self._members[victim]
        self._members[key] = None
        return False

    def __len__(self) -> int:
        return len(self._members)


class TestLFUBucketEquivalence:
    @given(
        seed=st.integers(0, 500),
        capacity=st.integers(1, 12),
        length=st.integers(0, 300),
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_sequence_and_membership_match_min_scan(
        self, seed, capacity, length
    ):
        rng = np.random.default_rng(seed)
        trace = rng.zipf(1.4, size=length) % 40
        fast, ref = LFUCache(capacity), RefLFU(capacity)
        for key in trace:
            assert fast.access(int(key)) == ref.access(int(key))
        assert fast.hits == ref.hits and fast.misses == ref.misses
        assert len(fast) == len(ref)


# ------------------------------------------------------- parallel runner


class TestParallelRunner:
    def test_parallel_map_preserves_order_inline_and_pooled(self):
        from repro.experiments.parallel import parallel_map

        items = list(range(7))
        assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=2) == [i * i for i in items]

    def test_sweep_jobs2_identical_to_serial(self, small_graph):
        from repro.core.config import TrainingConfig
        from repro.experiments.sweep import run_sweep
        from repro.kg.splits import split_triples

        split = split_triples(small_graph, seed=0)
        config = TrainingConfig(
            model="transe", dim=4, epochs=1, batch_size=32, num_negatives=2,
            num_machines=2, cache_capacity=32, sync_period=4, seed=0,
        )
        kwargs = dict(
            filter_set=small_graph.triple_set(),
            eval_max_queries=20,
            eval_candidates=20,
        )
        serial = run_sweep(
            "hetkg-c", config, split, {"sync_period": [2, 8]}, jobs=1, **kwargs
        )
        pooled = run_sweep(
            "hetkg-c", config, split, {"sync_period": [2, 8]}, jobs=2, **kwargs
        )
        assert serial.records == pooled.records  # exact, includes floats
        assert serial.to_text() == pooled.to_text()


def _square(x: int) -> int:
    return x * x
