"""End-to-end training smoke tests for every registered model.

Each scoring model must train through the full distributed stack
(partitioning, PS, cache, AdaGrad) without numerical failure, and the loss
must actually decrease — catching sign errors and geometry mismatches that
unit-level gradient checks can't see.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer
from repro.models.base import MODEL_REGISTRY

MODELS = sorted(MODEL_REGISTRY)


@pytest.mark.parametrize("name", MODELS)
class TestEveryModelTrains:
    def test_loss_decreases_and_stays_finite(self, name, small_split):
        config = TrainingConfig(
            model=name,
            dim=6,  # TransR/RESCAL relation rows are dim^2-sized
            epochs=4,
            batch_size=16,
            num_negatives=4,
            num_machines=2,
            cache_strategy="dps",
            cache_capacity=64,
            dps_window=4,
            sync_period=4,
            seed=3,
        )
        result = HETKGTrainer(config).train(small_split.train)
        losses = result.history.losses()
        assert all(np.isfinite(losses))
        assert losses[-1] < losses[0]

    def test_evaluation_runs(self, name, small_split):
        config = TrainingConfig(
            model=name,
            dim=6,
            epochs=1,
            batch_size=16,
            num_negatives=4,
            num_machines=1,
            seed=3,
        )
        trainer = HETKGTrainer(config)
        result = trainer.train(
            small_split.train,
            eval_graph=small_split.test,
            eval_max_queries=5,
            eval_candidates=20,
        )
        assert 0.0 <= result.final_metrics["mrr"] <= 1.0
