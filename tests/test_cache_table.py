"""Tests for repro.cache.table."""

import numpy as np
import pytest

from repro.cache.table import CacheStats, CacheTable


@pytest.fixture
def table():
    t = CacheTable(capacity=4, width=2)
    t.install(np.array([10, 20, 30]), np.arange(6, dtype=np.float64).reshape(3, 2))
    return t


class TestInstall:
    def test_membership(self, table):
        assert len(table) == 3
        assert 10 in table and 30 in table
        assert 99 not in table

    def test_over_capacity_rejected(self):
        t = CacheTable(2, 1)
        with pytest.raises(ValueError, match="capacity"):
            t.install(np.array([1, 2, 3]), np.zeros((3, 1)))

    def test_duplicate_ids_rejected(self):
        t = CacheTable(4, 1)
        with pytest.raises(ValueError, match="unique"):
            t.install(np.array([1, 1]), np.zeros((2, 1)))

    def test_mismatched_rows_rejected(self):
        t = CacheTable(4, 1)
        with pytest.raises(ValueError, match="ids"):
            t.install(np.array([1, 2]), np.zeros((3, 1)))

    def test_reinstall_replaces_membership(self, table):
        table.install(np.array([7]), np.array([[9.0, 9.0]]))
        assert 7 in table
        assert 10 not in table
        assert len(table) == 1

    def test_empty_install(self):
        t = CacheTable(4, 2)
        t.install(np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert len(t) == 0

    def test_zero_capacity(self):
        t = CacheTable(0, 2)
        t.install(np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert len(t) == 0

    def test_shrinking_install_zeroes_stale_tail(self, table):
        """Regression: installing a smaller hot set left the previous
        membership's rows in the slots beyond the new occupancy, so any
        consumer of ``rows_view()`` that trusted slot indices could read
        (or update) embeddings of entities no longer cached."""
        table.install(np.array([7]), np.array([[9.0, 9.0]]))
        assert table.occupied == 1
        assert not table.rows_view()[1:].any()

    def test_occupied_tracks_membership(self, table):
        assert table.occupied == 3
        table.install(np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert table.occupied == 0
        assert not table.rows_view().any()

    def test_growing_install_overwrites_cleanly(self):
        t = CacheTable(4, 2)
        t.install(np.array([1]), np.array([[5.0, 5.0]]))
        t.install(
            np.array([2, 3, 4]), np.arange(6, dtype=np.float64).reshape(3, 2)
        )
        assert t.occupied == 3
        assert t.get(np.array([2]))[0].tolist() == [0.0, 1.0]
        assert not t.rows_view()[3:].any()

    def test_stats_survive_reinstall(self, table):
        table.partition_hits(np.array([10, 99]))
        table.install(np.array([7]), np.array([[0.0, 0.0]]))
        assert table.stats.hits == 1
        assert table.stats.misses == 1


class TestReads:
    def test_get_preserves_order(self, table):
        rows = table.get(np.array([30, 10]))
        assert rows[0].tolist() == [4.0, 5.0]
        assert rows[1].tolist() == [0.0, 1.0]

    def test_get_returns_copy(self, table):
        rows = table.get(np.array([10]))
        rows[0, 0] = 777.0
        assert table.get(np.array([10]))[0, 0] == 0.0

    def test_get_missing_raises(self, table):
        with pytest.raises(KeyError, match="not cached"):
            table.get(np.array([99]))

    def test_partition_hits(self, table):
        mask, hits, misses = table.partition_hits(np.array([10, 99, 30]))
        assert mask.tolist() == [True, False, True]
        assert list(hits) == [10, 30]
        assert list(misses) == [99]

    def test_partition_counts_duplicates(self, table):
        table.partition_hits(np.array([10, 10, 99]))
        assert table.stats.hits == 2
        assert table.stats.misses == 1

    def test_membership_mask_no_stats(self, table):
        table.membership_mask(np.array([10, 99]))
        assert table.stats.accesses == 0


class TestWrites:
    def test_set(self, table):
        table.set(np.array([20]), np.array([[8.0, 8.0]]))
        assert table.get(np.array([20]))[0].tolist() == [8.0, 8.0]

    def test_add_inplace_coalesces_duplicates(self, table):
        table.add_inplace(
            np.array([10, 10]), np.array([[1.0, 0.0], [1.0, 0.0]])
        )
        assert table.get(np.array([10]))[0, 0] == 2.0

    def test_slot_of(self, table):
        slots = table.slot_of(np.array([20]))
        assert table.rows_view()[slots[0]].tolist() == [2.0, 3.0]


class TestCacheStats:
    def test_hit_ratio(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_ratio == 0.75
        assert stats.accesses == 4

    def test_empty_ratio(self):
        assert CacheStats().hit_ratio == 0.0

    def test_merge_and_reset(self):
        a, b = CacheStats(1, 2), CacheStats(3, 4)
        a.merge(b)
        assert (a.hits, a.misses) == (4, 6)
        a.reset()
        assert a.accesses == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CacheTable(4, 0)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            CacheTable(-1, 2)
