"""Tests for the wire-compression codecs."""

import numpy as np
import pytest

from repro.optim.sgd import SparseSGD
from repro.ps.compression import (
    Fp16Compression,
    Int8Compression,
    NoCompression,
    get_compressor,
)
from repro.ps.kvstore import ShardedKVStore
from repro.ps.server import ParameterServer


class TestCodecs:
    def test_registry(self):
        assert isinstance(get_compressor("none"), NoCompression)
        assert isinstance(get_compressor("fp16"), Fp16Compression)
        assert isinstance(get_compressor("int8"), Int8Compression)
        with pytest.raises(KeyError, match="unknown compressor"):
            get_compressor("zstd")

    def test_byte_factors(self):
        assert get_compressor("none").byte_factor == 1.0
        assert get_compressor("fp16").byte_factor == 0.5
        assert get_compressor("int8").byte_factor == 0.25

    def test_none_is_identity(self, rng):
        rows = rng.normal(size=(4, 8))
        assert get_compressor("none").roundtrip(rows) is rows

    def test_fp16_small_error(self, rng):
        rows = rng.normal(size=(4, 8))
        out = get_compressor("fp16").roundtrip(rows)
        assert not np.array_equal(out, rows)  # lossy
        np.testing.assert_allclose(out, rows, rtol=1e-2)

    def test_int8_bounded_error(self, rng):
        rows = rng.normal(size=(4, 8))
        out = get_compressor("int8").roundtrip(rows)
        span = rows.max(axis=1) - rows.min(axis=1)
        err = np.abs(out - rows).max(axis=1)
        assert np.all(err <= span / 255 + 1e-12)

    def test_int8_constant_row(self):
        rows = np.full((1, 4), 3.0)
        out = get_compressor("int8").roundtrip(rows)
        np.testing.assert_allclose(out, rows)

    def test_int8_empty(self):
        rows = np.zeros((0, 4))
        assert get_compressor("int8").roundtrip(rows).shape == (0, 4)


class TestServerIntegration:
    @pytest.fixture
    def store(self):
        entity = np.arange(20, dtype=np.float64).reshape(10, 2) * 0.1
        relation = np.ones((4, 2))
        owner = np.array([0] * 5 + [1] * 5)
        return ShardedKVStore(entity, relation, owner, num_machines=2)

    def test_remote_bytes_scaled(self, store):
        plain = ParameterServer(store, SparseSGD(1.0))
        compressed = ParameterServer(
            store, SparseSGD(1.0), compressor=get_compressor("fp16")
        )
        ids = np.array([7])  # remote for machine 0
        _, comm_plain = plain.pull("entity", ids, machine=0)
        _, comm_fp16 = compressed.pull("entity", ids, machine=0)
        assert comm_fp16.remote_bytes == comm_plain.remote_bytes // 2

    def test_local_rows_not_degraded(self, store):
        server = ParameterServer(
            store, SparseSGD(1.0), compressor=get_compressor("int8")
        )
        rows, comm = server.pull("entity", np.array([0, 1]), machine=0)
        np.testing.assert_array_equal(rows, store.table("entity")[[0, 1]])
        assert comm.remote_bytes == 0

    def test_remote_rows_roundtripped(self, store):
        server = ParameterServer(
            store, SparseSGD(1.0), compressor=get_compressor("fp16")
        )
        rows, _ = server.pull("entity", np.array([7]), machine=0)
        expected = store.table("entity")[7].astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(rows[0], expected)

    def test_push_gradients_compressed_remotely(self, store):
        server = ParameterServer(
            store, SparseSGD(1.0), compressor=get_compressor("fp16")
        )
        before = store.table("entity")[7].copy()
        grad = np.array([[0.12345678901234, 0.0]])
        server.push("entity", np.array([7]), grad, machine=0)
        applied = before - store.table("entity")[7]
        expected = grad[0].astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(applied, expected)

    def test_end_to_end_training_with_compression(self, small_split):
        """Compressed training must still learn (loss decreases)."""
        from repro.core.config import TrainingConfig
        from repro.core.trainer import HETKGTrainer

        config = TrainingConfig(
            model="transe", dim=8, epochs=4, batch_size=16, num_negatives=4,
            num_machines=2, compression="fp16", seed=0,
        )
        result = HETKGTrainer(config).train(small_split.train)
        losses = result.history.losses()
        assert losses[-1] < losses[0]
