"""Tests for the mp backend: shm lifecycle, sync bit-identity, crash paths.

The heavyweight guarantee under test: ``train_mp(schedule="sync")`` over
real OS processes produces a :class:`TrainResult` **bit-identical** to the
single-process simulator — losses, SimClock categories, CommRecord
totals, final embedding tables, optimizer accumulators, and eval metrics.
Everything else (async smoke, crash propagation, leak-freedom, checkpoint
round-trip) defends the machinery that guarantee rests on.

Most spawns use the fork start method for speed (child setup is ~10x
cheaper); one spawn-method smoke keeps the pickled-spec path honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.kg.datasets import generate_dataset
from repro.kg.splits import split_triples
from repro.mp import (
    MPUnsupportedError,
    MPWorkerCrashed,
    SharedArena,
    SharedArray,
    SharedKVStore,
    shm_segments,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def mp_config(**overrides) -> TrainingConfig:
    """The golden-run shape: 2 machines, 2 epochs, small tables."""
    defaults = dict(
        model="transe",
        dim=8,
        epochs=2,
        batch_size=32,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        sync_period=4,
        dps_window=8,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="module")
def mp_data():
    graph = generate_dataset("fb15k", scale=0.02, seed=3)
    split = split_triples(graph, seed=3)
    return graph, split


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = shm_segments()
    yield
    leaked = [s for s in shm_segments() if s not in before]
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


# ----------------------------------------------------------- shm primitives


class TestSharedArray:
    def test_roundtrip(self):
        data = np.arange(12, dtype=np.float64).reshape(4, 3)
        shared = SharedArray.create(data)
        try:
            assert np.array_equal(shared.view(), data)
            assert shared.rows == 4
        finally:
            shared.close()

    def test_attach_sees_writes(self):
        data = np.zeros((4, 3))
        owner = SharedArray.create(data)
        try:
            peer = SharedArray.attach(owner.spec())
            owner.view()[2, 1] = 7.5
            assert peer.view()[2, 1] == 7.5
            peer.view()[0, 0] = -1.0
            assert owner.view()[0, 0] == -1.0
            peer.close()
        finally:
            owner.close()

    def test_double_close_idempotent(self):
        shared = SharedArray.create(np.ones((2, 2)))
        shared.close()
        shared.close()  # must not raise

    def test_attach_after_unlink_raises(self):
        shared = SharedArray.create(np.ones((2, 2)))
        spec = shared.spec()
        shared.close()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(spec)

    def test_use_after_close_rejected(self):
        shared = SharedArray.create(np.ones((2, 2)))
        shared.close()
        with pytest.raises(ValueError, match="closed"):
            shared.view()

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            SharedArray.create(np.ones(5))

    def test_grow_within_capacity(self):
        shared = SharedArray.create(np.ones((2, 3)), capacity_rows=5)
        try:
            view = shared.grow(np.full((2, 3), 2.0))
            assert shared.rows == 4
            assert view.shape == (4, 3)
            assert np.array_equal(view[2:], np.full((2, 3), 2.0))
        finally:
            shared.close()

    def test_grow_visible_to_peer(self):
        owner = SharedArray.create(np.ones((2, 3)), capacity_rows=4)
        try:
            peer = SharedArray.attach(owner.spec())
            assert peer.rows == 2
            owner.grow(np.zeros((1, 3)))
            assert peer.rows == 3
            assert peer.view().shape == (3, 3)
            peer.close()
        finally:
            owner.close()

    def test_grow_over_capacity_rejected(self):
        shared = SharedArray.create(np.ones((2, 3)), capacity_rows=3)
        try:
            with pytest.raises(ValueError, match="capacity"):
                shared.grow(np.zeros((2, 3)))
        finally:
            shared.close()

    def test_capacity_below_rows_rejected(self):
        with pytest.raises(ValueError, match="capacity_rows"):
            SharedArray.create(np.ones((4, 2)), capacity_rows=2)


class TestSharedArena:
    def test_context_manager_unlinks(self):
        before = shm_segments()
        with SharedArena() as arena:
            arena.create("a", np.ones((2, 2)))
            arena.create("b", np.zeros((3, 1)))
            assert len(shm_segments()) == len(before) + 2
        assert shm_segments() == before

    def test_unlinks_on_exception(self):
        before = shm_segments()
        with pytest.raises(RuntimeError):
            with SharedArena() as arena:
                arena.create("a", np.ones((2, 2)))
                raise RuntimeError("boom")
        assert shm_segments() == before

    def test_duplicate_key_rejected(self):
        with SharedArena() as arena:
            arena.create("a", np.ones((2, 2)))
            with pytest.raises(KeyError):
                arena.create("a", np.ones((2, 2)))

    def test_finalizer_cleanup_without_close(self):
        before = shm_segments()
        arena = SharedArena()
        arena.create("a", np.ones((2, 2)))
        del arena  # finalizer must unlink
        import gc

        gc.collect()
        assert shm_segments() == before


class TestSharedKVStore:
    def test_from_store_grow_matches_resident(self):
        from repro.ps.kvstore import ShardedKVStore

        rng = np.random.default_rng(0)
        entity = rng.normal(size=(6, 4))
        relation = rng.normal(size=(2, 4))
        owner = np.array([0, 1, 0, 1, 0, 1])
        resident = ShardedKVStore(entity.copy(), relation.copy(), owner, 2)
        with SharedArena() as arena:
            shared = SharedKVStore.from_store(
                ShardedKVStore(entity.copy(), relation.copy(), owner, 2),
                arena,
                headroom_rows=4,
            )
            rows = rng.normal(size=(2, 4))
            resident.grow("entity", rows, np.array([0, 1]))
            shared.grow("entity", rows, np.array([0, 1]))
            assert np.array_equal(
                resident.table("entity"), shared.table("entity")
            )
            assert np.array_equal(
                resident.owners("entity", np.arange(8)),
                shared.owners("entity", np.arange(8)),
            )

    def test_grow_over_headroom_rejected(self):
        from repro.ps.kvstore import ShardedKVStore

        entity = np.ones((4, 2))
        relation = np.ones((2, 2))
        owner = np.array([0, 1, 0, 1])
        with SharedArena() as arena:
            shared = SharedKVStore.from_store(
                ShardedKVStore(entity, relation, owner, 2), arena
            )
            with pytest.raises(ValueError, match="capacity"):
                shared.grow("entity", np.ones((1, 2)), np.array([0]))

    def test_tiered_store_rejected(self):
        from repro.ps.kvstore import ShardedKVStore
        from repro.tier import TierConfig

        store = ShardedKVStore(
            np.ones((4, 2)),
            np.ones((2, 2)),
            np.array([0, 1, 0, 1]),
            2,
            backing="tiered",
            tier=TierConfig(),
        )
        with SharedArena() as arena:
            with pytest.raises(ValueError, match="tiered"):
                SharedKVStore.from_store(store, arena)


# ------------------------------------------------------- sync bit-identity


def _fingerprint(trainer, result):
    acc = getattr(trainer.server.optimizer, "_accumulators", {})
    return {
        "losses": [float(p.loss).hex() for p in result.history.points],
        "sim_time": float(result.sim_time).hex(),
        "compute_time": float(result.compute_time).hex(),
        "communication_time": float(result.communication_time).hex(),
        "comm": (
            result.comm_totals.local_bytes,
            result.comm_totals.remote_bytes,
            result.comm_totals.local_messages,
            result.comm_totals.remote_messages,
            result.comm_totals.retransmit_bytes,
        ),
        "hit_ratio": float(result.cache_hit_ratio).hex(),
        "metrics": [p.metrics for p in result.history.points],
        "entity": trainer.server.store.table("entity").copy(),
        "relation": trainer.server.store.table("relation").copy(),
        "acc": {k: np.array(v, copy=True) for k, v in acc.items()},
    }


def _assert_identical(ref, got):
    assert got["losses"] == ref["losses"]
    assert got["sim_time"] == ref["sim_time"]
    assert got["compute_time"] == ref["compute_time"]
    assert got["communication_time"] == ref["communication_time"]
    assert got["comm"] == ref["comm"]
    assert got["hit_ratio"] == ref["hit_ratio"]
    assert got["metrics"] == ref["metrics"]
    assert np.array_equal(got["entity"], ref["entity"])
    assert np.array_equal(got["relation"], ref["relation"])
    assert set(got["acc"]) == set(ref["acc"])
    for kind in ref["acc"]:
        assert np.array_equal(got["acc"][kind], ref["acc"][kind])


class TestSyncBitIdentity:
    @pytest.mark.parametrize("system", ["hetkg-d", "hetkg-c", "dglke"])
    def test_identical_to_simulator(self, system, mp_data):
        graph, split = mp_data
        sim = make_trainer(system, mp_config())
        r_sim = sim.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=30,
            eval_candidates=40,
        )
        mp = make_trainer(system, mp_config())
        r_mp = mp.train_mp(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=30,
            eval_candidates=40,
            schedule="sync",
            start_method="fork",
        )
        assert r_mp.backend == "mp/sync"
        assert r_mp.wall_time_s > 0
        _assert_identical(_fingerprint(sim, r_sim), _fingerprint(mp, r_mp))

    def test_spawn_start_method(self, mp_data):
        # One spawn-method run keeps the pickled-spec path honest (fork
        # inherits module state that spawn must reconstruct).
        graph, split = mp_data
        sim = make_trainer("hetkg-d", mp_config(epochs=1))
        r_sim = sim.train(split.train)
        mp = make_trainer("hetkg-d", mp_config(epochs=1))
        r_mp = mp.train_mp(
            split.train, schedule="sync", start_method="spawn"
        )
        _assert_identical(_fingerprint(sim, r_sim), _fingerprint(mp, r_mp))

    def test_telemetry_merge_matches_simulator(self, mp_data):
        from repro.core.telemetry import Telemetry

        _, split = mp_data
        sim = make_trainer("hetkg-d", mp_config(epochs=1))
        t_sim = Telemetry()
        sim.train(split.train, telemetry=t_sim)
        mp = make_trainer("hetkg-d", mp_config(epochs=1))
        t_mp = Telemetry()
        mp.train_mp(
            split.train,
            telemetry=t_mp,
            schedule="sync",
            start_method="fork",
        )
        assert len(t_mp.records) == len(t_sim.records)
        for a, b in zip(t_sim.records, t_mp.records):
            assert (a.worker, a.iteration, a.loss) == (
                b.worker,
                b.iteration,
                b.loss,
            )


# ----------------------------------------------------------- async schedule


class TestAsyncSchedule:
    def test_smoke(self, mp_data):
        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config())
        result = trainer.train_mp(
            split.train, schedule="async", start_method="fork"
        )
        assert result.backend == "mp/async"
        assert result.wall_time_s > 0
        assert len(result.history.points) == 2
        assert all(np.isfinite(p.loss) for p in result.history.points)
        assert len(result.worker_wall) == 2
        for span in result.worker_wall.values():
            assert span["steps"] > 0
            assert span["wall_s"] > 0

    def test_staleness_bound_validated(self, mp_data):
        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config())
        with pytest.raises(MPUnsupportedError, match="staleness"):
            trainer.train_mp(split.train, schedule="async", staleness_bound=0)

    def test_unknown_schedule_rejected(self, mp_data):
        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config())
        with pytest.raises(MPUnsupportedError, match="schedule"):
            trainer.train_mp(split.train, schedule="bulk")

    def test_tiered_backing_rejected(self, mp_data):
        _, split = mp_data
        trainer = make_trainer(
            "hetkg-d", mp_config(backing="tiered", memory_budget="1M")
        )
        with pytest.raises(MPUnsupportedError, match="tiered"):
            trainer.train_mp(split.train)


# --------------------------------------------------------- crash propagation


class TestCrashPropagation:
    def test_child_crash_raises_and_leaves_no_segments(self, mp_data):
        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config(epochs=1))
        with pytest.raises(MPWorkerCrashed, match="worker 1"):
            trainer.train_mp(
                split.train,
                schedule="async",
                start_method="fork",
                crash_at_step=(1, 5),
            )
        # The autouse fixture asserts no /dev/shm residue; additionally
        # the trainer's tables must be private (not dangling shm views).
        trainer.server.store.table("entity")[0, 0] += 1.0  # must not raise


# ----------------------------------------------------- checkpoint round-trip


class TestCheckpointRoundTrip:
    def test_mp_checkpoint_resumes_in_sim(self, tmp_path, mp_data):
        """Embeddings trained under mp save/load like simulator state."""
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        _, split = mp_data
        mp = make_trainer("hetkg-d", mp_config(epochs=1))
        mp.train_mp(split.train, schedule="sync", start_method="fork")
        path = tmp_path / "mp.npz"
        save_checkpoint(mp, path)

        sim = make_trainer("hetkg-d", mp_config(epochs=1))
        sim.setup(split.train)
        load_checkpoint(sim, path)
        assert np.array_equal(
            sim.server.store.table("entity"), mp.server.store.table("entity")
        )
        assert np.array_equal(
            sim.server.store.table("relation"),
            mp.server.store.table("relation"),
        )


# ------------------------------------------------------------- mp serving


class TestServeMP:
    def test_replicas_cover_stream_exactly(self, mp_data):
        from repro.experiments.serving_study import split_warmup
        from repro.mp.serve import serve_mp
        from repro.serving.store import EmbeddingStore
        from repro.serving.workload import WorkloadSpec, ZipfianWorkload

        graph, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config(epochs=1))
        trainer.train(split.train)
        store = EmbeddingStore.from_trainer(trainer)
        spec = WorkloadSpec(num_queries=400, seed=11)
        workload = ZipfianWorkload.from_graph(graph, spec)
        warmup, measured = split_warmup(workload.generate())

        result = serve_mp(
            store,
            measured,
            num_frontends=2,
            cache_policy="static",
            warmup=warmup,
            capacity=32,
            start_method="fork",
        )
        assert result.num_frontends == 2
        assert result.report.num_queries == len(measured)
        assert sum(r.num_queries for r in result.per_frontend) == len(measured)
        assert result.wall_time_s > 0
        assert result.wall_throughput > 0
        assert 0.0 <= result.report.hit_ratio <= 1.0
        assert result.report.latency_p50 <= result.report.latency_p99

    def test_bad_policy_rejected(self, mp_data):
        from repro.experiments.serving_study import split_warmup
        from repro.mp.serve import serve_mp
        from repro.serving.store import EmbeddingStore
        from repro.serving.workload import WorkloadSpec, ZipfianWorkload

        graph, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config(epochs=1))
        trainer.train(split.train)
        store = EmbeddingStore.from_trainer(trainer)
        spec = WorkloadSpec(num_queries=40, seed=11)
        workload = ZipfianWorkload.from_graph(graph, spec)
        _, measured = split_warmup(workload.generate())
        with pytest.raises(ValueError, match="policy"):
            serve_mp(store, measured, num_frontends=1, cache_policy="mru")


# ------------------------------------------------------------- reconcile


class TestReconcile:
    def test_mp_report_fields(self, mp_data):
        from repro.obs import reconcile

        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config(epochs=1))
        result = trainer.train_mp(
            split.train, schedule="sync", start_method="fork"
        )
        report = reconcile(result)
        assert report.backend == "mp/sync"
        assert len(report.workers) == 2
        for w in report.workers:
            assert w.wall_s > 0
            assert 0.0 <= w.predicted_comm_fraction <= 1.0
            assert 0.0 <= w.measured_comm_fraction <= 1.0
        text = report.to_text()
        assert "clock reconciliation" in text
        assert "worker m0" in text
        assert "worker m1" in text

    def test_sim_result_reconciles_without_workers(self, mp_data):
        from repro.obs import reconcile

        _, split = mp_data
        trainer = make_trainer("hetkg-d", mp_config(epochs=1))
        result = trainer.train(split.train)
        report = reconcile(result)
        assert report.workers == ()
        assert "simulator backend" in report.to_text()
