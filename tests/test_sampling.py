"""Tests for repro.sampling (negative corruption + epoch batching)."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, REL, TAIL
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import MiniBatch, NegativeSampler


def _sampler(tiny_graph, **kwargs):
    defaults = dict(num_entities=tiny_graph.num_entities, num_negatives=4, seed=0)
    defaults.update(kwargs)
    return NegativeSampler(**defaults)


class TestNegativeSampler:
    def test_shapes(self, tiny_graph):
        batch = _sampler(tiny_graph).corrupt(tiny_graph.triples[:5])
        assert batch.size == 5
        assert batch.num_negatives == 4
        assert batch.neg_entities.shape == (5, 4)
        assert batch.corrupt_head.shape == (5,)

    def test_entities_in_range(self, tiny_graph):
        batch = _sampler(tiny_graph).corrupt(tiny_graph.triples)
        assert batch.neg_entities.min() >= 0
        assert batch.neg_entities.max() < tiny_graph.num_entities

    def test_chunked_shares_negatives(self, tiny_graph):
        sampler = _sampler(tiny_graph, strategy="chunked", chunk_size=4)
        batch = sampler.corrupt(tiny_graph.triples)
        # Rows within a chunk share identical negative sets.
        assert np.array_equal(batch.neg_entities[0], batch.neg_entities[3])

    def test_independent_rows_differ(self, small_graph):
        sampler = NegativeSampler(
            small_graph.num_entities, num_negatives=8, strategy="independent", seed=0
        )
        batch = sampler.corrupt(small_graph.triples[:16])
        identical = sum(
            np.array_equal(batch.neg_entities[i], batch.neg_entities[i + 1])
            for i in range(15)
        )
        assert identical < 3  # overwhelmingly distinct rows

    def test_chunked_touches_fewer_uniques(self, small_graph):
        """The §V complexity claim: chunked sampling shrinks the per-batch
        working set."""
        pos = small_graph.triples[:64]
        chunked = NegativeSampler(
            small_graph.num_entities, 8, "chunked", chunk_size=16, seed=0
        ).corrupt(pos)
        indep = NegativeSampler(
            small_graph.num_entities, 8, "independent", seed=0
        ).corrupt(pos)
        assert len(chunked.unique_entities()) < len(indep.unique_entities())

    def test_filter_avoids_true_triples(self, tiny_graph):
        sampler = _sampler(tiny_graph, filter_graph=tiny_graph, num_negatives=2)
        batch = sampler.corrupt(tiny_graph.triples)
        for i in range(batch.size):
            h, r, t = (int(x) for x in batch.positives[i])
            for e in batch.neg_entities[i]:
                e = int(e)
                triple = (e, r, t) if batch.corrupt_head[i] else (h, r, e)
                # Tiny graph: retries nearly always succeed.
                if triple in tiny_graph.triple_set():
                    pytest.skip("all retries collided (tiny corruption pool)")

    def test_entity_pool_restricts_draws(self, small_graph):
        pool = np.array([1, 2, 3])
        sampler = NegativeSampler(
            small_graph.num_entities, 8, entity_pool=pool, seed=0
        )
        batch = sampler.corrupt(small_graph.triples[:32])
        assert set(np.unique(batch.neg_entities)) <= {1, 2, 3}

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            NegativeSampler(10, entity_pool=np.array([], dtype=np.int64))

    def test_empty_positives(self, tiny_graph):
        batch = _sampler(tiny_graph).corrupt(np.empty((0, 3), dtype=np.int64))
        assert batch.size == 0

    def test_bad_positives_shape(self, tiny_graph):
        with pytest.raises(ValueError, match=r"\(b, 3\)"):
            _sampler(tiny_graph).corrupt(np.zeros((2, 2), dtype=np.int64))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NegativeSampler(0)
        with pytest.raises(ValueError):
            NegativeSampler(10, strategy="nope")

    def test_resize_growth_with_entity_pool_rejected(self):
        """Growing a pool-restricted sampler would mint ids the pool can
        never draw — that must be a loud error, not a silent no-op."""
        sampler = NegativeSampler(10, entity_pool=np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="entity_pool"):
            sampler.resize(20)
        # Same-size resizes stay legal (streaming replays them freely).
        sampler.resize(10)

    def test_false_negative_leaks_counted_on_dense_filter(self):
        """On a complete graph every corruption collides, so retry
        exhaustion must leak — and every leak must be counted."""
        triples = np.array(
            [(h, 0, t) for h in range(3) for t in range(3)], dtype=np.int64
        )
        from repro.kg.graph import KnowledgeGraph

        dense = KnowledgeGraph(triples, num_entities=3, num_relations=1)
        sampler = NegativeSampler(
            3, num_negatives=4, filter_graph=dense, seed=0
        )
        assert sampler.false_negative_leaks == 0
        batch = sampler.corrupt(triples)
        assert sampler.false_negative_leaks == batch.size * batch.num_negatives

    def test_sparse_filter_leaks_nothing(self, small_graph):
        sampler = NegativeSampler(
            small_graph.num_entities, 4, filter_graph=small_graph, seed=0
        )
        sampler.corrupt(small_graph.triples[:64])
        assert sampler.false_negative_leaks == 0


class TestChunkedDeterminism:
    """Satellite golden: the chunked strategy's draw sequence is pinned."""

    _POSITIVES = np.array(
        [[0, 0, 1], [1, 0, 2], [2, 1, 3], [3, 0, 4], [4, 1, 5], [5, 0, 0]],
        dtype=np.int64,
    )

    def test_identical_batches_across_runs(self):
        a = NegativeSampler(10, 4, "chunked", chunk_size=4, seed=9)
        b = NegativeSampler(10, 4, "chunked", chunk_size=4, seed=9)
        for _ in range(3):
            x, y = a.corrupt(self._POSITIVES), b.corrupt(self._POSITIVES)
            assert np.array_equal(x.neg_entities, y.neg_entities)
            assert np.array_equal(x.corrupt_head, y.corrupt_head)

    def test_pinned_draw_sequence(self):
        """Literal golden: catches any silent reordering of RNG draws."""
        batch = NegativeSampler(10, 4, "chunked", chunk_size=4, seed=123).corrupt(
            self._POSITIVES
        )
        assert batch.neg_entities.tolist() == [
            [0, 6, 5, 0],
            [0, 6, 5, 0],
            [0, 6, 5, 0],
            [0, 6, 5, 0],
            [2, 1, 3, 1],
            [2, 1, 3, 1],
        ]
        assert batch.corrupt_head.tolist() == [
            True, True, True, True, False, False,
        ]

    def test_chunk_size_at_least_batch_degenerates_to_one_chunk(self):
        sampler = NegativeSampler(10, 4, "chunked", chunk_size=16, seed=9)
        batch = sampler.corrupt(self._POSITIVES)
        for i in range(1, batch.size):
            assert np.array_equal(batch.neg_entities[0], batch.neg_entities[i])


class TestMiniBatch:
    @pytest.fixture
    def batch(self, tiny_graph):
        return _sampler(tiny_graph).corrupt(tiny_graph.triples[:4])

    def test_unique_entities_sorted(self, batch):
        uniq = batch.unique_entities()
        assert np.array_equal(uniq, np.sort(np.unique(uniq)))

    def test_unique_entities_cover_batch(self, batch):
        uniq = set(batch.unique_entities().tolist())
        assert set(batch.positives[:, HEAD].tolist()) <= uniq
        assert set(batch.positives[:, TAIL].tolist()) <= uniq
        assert set(batch.neg_entities.ravel().tolist()) <= uniq

    def test_unique_relations(self, batch):
        assert set(batch.unique_relations().tolist()) == set(
            batch.positives[:, REL].tolist()
        )

    def test_negative_triples_layout(self, batch):
        neg = batch.negative_triples()
        assert neg.shape == (batch.size * batch.num_negatives, 3)
        for i in range(batch.size):
            for j in range(batch.num_negatives):
                row = neg[i * batch.num_negatives + j]
                pos = batch.positives[i]
                if batch.corrupt_head[i]:
                    assert row[HEAD] == batch.neg_entities[i, j]
                    assert row[TAIL] == pos[TAIL]
                else:
                    assert row[TAIL] == batch.neg_entities[i, j]
                    assert row[HEAD] == pos[HEAD]
                assert row[REL] == pos[REL]


class TestEpochSampler:
    def _epoch_sampler(self, graph, batch_size=3, **kwargs):
        neg = NegativeSampler(graph.num_entities, 2, seed=0)
        return EpochSampler(graph, batch_size, neg, seed=1, **kwargs)

    def test_batches_per_epoch(self, tiny_graph):
        sampler = self._epoch_sampler(tiny_graph, batch_size=3)
        assert sampler.batches_per_epoch == 3  # ceil(8 / 3)

    def test_drop_last(self, tiny_graph):
        sampler = self._epoch_sampler(tiny_graph, batch_size=3, drop_last=True)
        assert sampler.batches_per_epoch == 2

    def test_epoch_covers_all_triples(self, tiny_graph):
        sampler = self._epoch_sampler(tiny_graph, batch_size=3)
        seen = []
        for batch in sampler.epoch():
            seen.extend(map(tuple, batch.positives))
        assert sorted(seen) == sorted(map(tuple, tiny_graph.triples))

    def test_reshuffles_between_epochs(self, small_graph):
        sampler = self._epoch_sampler(small_graph, batch_size=16)
        first = [tuple(b.positives[0]) for b in sampler.epoch()]
        second = [tuple(b.positives[0]) for b in sampler.epoch()]
        assert first != second

    def test_prefetch_equals_live_sampling(self, tiny_graph):
        """Training on prefetched batches is the same stream next_batch
        would have produced — Algorithm 1's equivalence property."""
        a = self._epoch_sampler(tiny_graph)
        b = self._epoch_sampler(tiny_graph)
        prefetched = a.prefetch(5)
        live = [b.next_batch() for _ in range(5)]
        for x, y in zip(prefetched, live):
            assert np.array_equal(x.positives, y.positives)
            assert np.array_equal(x.neg_entities, y.neg_entities)

    def test_empty_graph_rejected(self, tiny_graph):
        import numpy as np
        from repro.kg.graph import KnowledgeGraph

        empty = KnowledgeGraph(np.empty((0, 3), dtype=np.int64), num_entities=5, num_relations=2)
        sampler = self._epoch_sampler(empty)
        with pytest.raises(ValueError, match="empty"):
            sampler.next_batch()
