"""Tests for repro.sampling.cache (hotness-aware hard-negative cache).

Covers the sampler in isolation (substitution, refresh planning, Gumbel
top-k retention, streaming invalidation), its integration with the worker
loop (refresh traffic on the ``"neg_cache"`` books, telemetry counters),
the zero-drift streaming contract, mp sync bit-identity, and the CLI
``--neg-cache`` validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.sampling.cache import (
    NEG_CACHE_MODES,
    CachedNegativeSampler,
    RefreshPlan,
)
from repro.sampling.negative import NegativeSampler


def _cached(num_entities=24, **kwargs) -> CachedNegativeSampler:
    defaults = dict(num_entities=num_entities, num_negatives=4, seed=0)
    defaults.update(kwargs)
    return CachedNegativeSampler(**defaults)


def quick_config(**overrides) -> TrainingConfig:
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=32, num_negatives=4,
        num_machines=2, cache_capacity=64, sync_period=4, dps_window=8,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class _IdScoreModel:
    """Toy scorer: a triple's score is its candidate head/tail row value.

    With dim-1 embedding rows set to the entity id, ``score`` ranks
    candidates by id — so at tiny temperature the cache must keep the
    numerically largest candidate ids.
    """

    def score(self, h_rows, r_rows, t_rows):
        return (h_rows + t_rows - r_rows).sum(axis=1)


# ----------------------------------------------------------- construction


class TestConstruction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            _cached(mode="topk")

    @pytest.mark.parametrize(
        "knob", ["cache_size", "pool_size", "refresh_period", "refresh_keys",
                 "temperature", "anneal_steps"]
    )
    def test_knobs_must_be_positive(self, knob):
        with pytest.raises(ValueError):
            _cached(**{knob: 0})

    def test_config_validates_mode(self):
        with pytest.raises(ValueError):
            TrainingConfig(neg_cache="bogus")
        for mode in ("off",) + NEG_CACHE_MODES:
            assert TrainingConfig(neg_cache=mode).neg_cache == mode

    def test_config_validates_knobs(self):
        with pytest.raises(ValueError):
            TrainingConfig(neg_cache="auto", neg_cache_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(neg_cache="auto", neg_cache_anneal=-1)

    def test_uses_neg_cache_property(self):
        assert not TrainingConfig().uses_neg_cache
        assert TrainingConfig(neg_cache="nscaching").uses_neg_cache


# ---------------------------------------------------------------- corrupt


class TestCorrupt:
    def test_base_draws_bit_identical_to_plain_sampler(self, small_graph):
        """Cold caches never perturb the inherited uniform corruption."""
        pos = small_graph.triples[:48]
        plain = NegativeSampler(small_graph.num_entities, 4, seed=11)
        cached = _cached(small_graph.num_entities, seed=11)
        for _ in range(3):
            a, b = plain.corrupt(pos), cached.corrupt(pos)
            np.testing.assert_array_equal(a.neg_entities, b.neg_entities)
            np.testing.assert_array_equal(a.corrupt_head, b.corrupt_head)

    def test_touch_marks_keys_pending(self, tiny_graph):
        sampler = _cached(tiny_graph.num_entities)
        assert sampler.pending_keys == 0
        sampler.corrupt(tiny_graph.triples)
        assert sampler.pending_keys > 0

    def test_warm_keys_serve_from_cache(self, tiny_graph):
        sampler = _cached(tiny_graph.num_entities, mode="nscaching")
        # Warm every possible key with a sentinel negative.
        for row in tiny_graph.triples:
            for direction in (False, True):
                key = CachedNegativeSampler._key_of(row, direction)
                sampler._cache[key] = np.array([5], dtype=np.int64)
        batch = sampler.corrupt(tiny_graph.triples)
        assert (batch.neg_entities == 5).all()
        assert sampler.hard_negatives_served == batch.size * batch.num_negatives

    def test_auto_mode_anneals_exploration_to_exploitation(self, tiny_graph):
        sampler = _cached(tiny_graph.num_entities, mode="auto", anneal_steps=2)
        assert sampler.mix_fraction() == 0.0
        sampler.corrupt(tiny_graph.triples)
        assert sampler.mix_fraction() == 0.5
        sampler.corrupt(tiny_graph.triples)
        assert sampler.mix_fraction() == 1.0

    def test_deterministic_across_instances(self, small_graph):
        runs = []
        for _ in range(2):
            sampler = _cached(small_graph.num_entities, seed=3)
            sampler._cache[(0, 0, False)] = np.array([1, 2], dtype=np.int64)
            batches = [
                sampler.corrupt(small_graph.triples[:32]).neg_entities
                for _ in range(4)
            ]
            runs.append(batches)
        for a, b in zip(*runs):
            np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------- refresh


class TestRefresh:
    def test_refresh_due_requires_pending_and_period(self, tiny_graph):
        sampler = _cached(tiny_graph.num_entities, refresh_period=4)
        assert not sampler.refresh_due(4)  # nothing touched yet
        sampler.corrupt(tiny_graph.triples)
        assert sampler.refresh_due(4)
        assert not sampler.refresh_due(5)

    def test_plan_refresh_prefers_hottest_keys(self):
        sampler = _cached(refresh_keys=1, pool_size=8)
        hot, cold = (3, 0, False), (7, 1, True)
        sampler._touched = {cold: 1, hot: 5}
        plan = sampler.plan_refresh()
        assert plan is not None and plan.keys == [hot]
        # The cold key keeps its touch count for the next event.
        assert sampler._touched == {cold: 1}

    def test_plan_excludes_anchor_and_true_triples(self, tiny_graph):
        sampler = _cached(
            tiny_graph.num_entities,
            filter_graph=tiny_graph,
            pool_size=64,
        )
        # Corrupting the head of (0, 0, 1): anchor is tail entity 1, and
        # entity 0 would reconstruct the true triple (0, 0, 1).
        sampler._touched = {(1, 0, True): 1}
        plan = sampler.plan_refresh()
        assert plan is not None
        (candidates,) = plan.candidates
        assert 1 not in candidates  # anchor never caches itself
        assert 0 not in candidates  # filter excludes the true triple

    def test_plan_empty_when_nothing_pending(self):
        assert _cached().plan_refresh() is None

    def test_complete_refresh_keeps_highest_scores(self):
        sampler = _cached(
            num_entities=16, cache_size=2, pool_size=8, temperature=1e-6
        )
        sampler._touched = {(3, 0, False): 1}
        plan = sampler.plan_refresh()
        assert plan is not None
        # Dim-1 rows equal to the entity id: _IdScoreModel then ranks
        # candidates by id, and at T=1e-6 Gumbel noise cannot reorder.
        entity_rows = plan.entity_ids.astype(float)[:, None]
        relation_rows = plan.relation_ids.astype(float)[:, None]
        scored = sampler.complete_refresh(
            plan, _IdScoreModel(), entity_rows, relation_rows
        )
        assert scored == plan.num_scores > 0
        (candidates,) = plan.candidates
        expected = np.sort(candidates)[-2:]
        np.testing.assert_array_equal(sampler._cache[(3, 0, False)], expected)

    def test_counters_accumulate(self):
        sampler = _cached(num_entities=16, pool_size=8)
        sampler._touched = {(3, 0, False): 1, (5, 1, True): 2}
        plan = sampler.plan_refresh()
        sampler.complete_refresh(
            plan,
            _IdScoreModel(),
            plan.entity_ids.astype(float)[:, None],
            plan.relation_ids.astype(float)[:, None],
        )
        counters = sampler.counters()
        assert counters["refreshes"] == 1
        assert counters["refreshed_keys"] == 2
        assert counters["candidates_scored"] == plan.num_scores
        assert sampler.num_keys == 2

    def test_cache_respects_size_bound(self):
        sampler = _cached(num_entities=64, cache_size=3, pool_size=32)
        sampler._touched = {(1, 0, False): 1}
        plan = sampler.plan_refresh()
        sampler.complete_refresh(
            plan,
            _IdScoreModel(),
            plan.entity_ids.astype(float)[:, None],
            plan.relation_ids.astype(float)[:, None],
        )
        assert len(sampler._cache[(1, 0, False)]) <= 3

    def test_refresh_plan_pull_sets_cover_candidates(self):
        sampler = _cached(num_entities=32, pool_size=8)
        sampler._touched = {(3, 0, False): 1, (9, 1, True): 1}
        plan = sampler.plan_refresh()
        for key, candidates in zip(plan.keys, plan.candidates):
            assert key[0] in plan.entity_ids
            assert key[1] in plan.relation_ids
            assert np.isin(candidates, plan.entity_ids).all()


# ----------------------------------------------------------- streaming ops


class TestStreamingOps:
    def test_resize_grows_candidate_range(self):
        sampler = _cached(num_entities=10)
        sampler.resize(20)
        assert sampler.num_entities == 20
        draws = sampler._draw_candidates(512)
        assert draws.max() >= 10  # new ids actually enter pools

    def test_resize_purges_newly_true_negatives(self, tiny_graph):
        sampler = _cached(tiny_graph.num_entities, filter_graph=tiny_graph)
        # Cache entity 4 as a head-corruption for (r=0, t=1) — legal now.
        sampler._cache[(1, 0, True)] = np.array([4], dtype=np.int64)
        grown = KnowledgeGraph(
            np.vstack([tiny_graph.triples, [[4, 0, 1]]]),
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
        )
        sampler.resize(grown.num_entities, filter_graph=grown)
        # (4, 0, 1) is now a true triple: it must leave the cache.
        assert 4 not in sampler._cache[(1, 0, True)]

    def test_invalidate_drops_anchored_keys_and_purges_ids(self):
        sampler = _cached(num_entities=16)
        sampler._cache = {
            (3, 0, False): np.array([1, 2], dtype=np.int64),
            (5, 0, True): np.array([3, 7], dtype=np.int64),
            (6, 1, False): np.array([8], dtype=np.int64),
        }
        sampler._touched = {(3, 0, False): 2, (6, 1, False): 1}
        dropped = sampler.invalidate_ids(
            np.array([3], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        # Key anchored on entity 3 and key on relation 1 are gone; the
        # survivor's negative list loses the deleted entity 3.
        assert dropped == 2
        assert set(sampler._cache) == {(5, 0, True)}
        np.testing.assert_array_equal(
            sampler._cache[(5, 0, True)], np.array([7])
        )
        assert sampler._touched == {}

    def test_invalidate_noop_returns_zero(self):
        sampler = _cached()
        assert sampler.invalidate_ids(np.empty(0), np.empty(0)) == 0


# ------------------------------------------------------ worker integration


class TestWorkerIntegration:
    @pytest.mark.parametrize("mode", NEG_CACHE_MODES)
    def test_train_pays_refresh_traffic(self, small_split, mode):
        from repro.core.telemetry import Telemetry

        trainer = make_trainer(
            "hetkg-d", quick_config(neg_cache=mode, neg_cache_anneal=16)
        )
        telemetry = Telemetry()
        result = trainer.train(small_split.train, telemetry=telemetry)
        stats = result.neg_cache_stats
        assert stats["refreshes"] > 0
        assert stats["candidates_scored"] > 0
        assert stats["refresh_bytes"] > 0
        assert stats["refresh_messages"] > 0
        assert stats["neg_cache_time"] > 0.0
        assert stats["cache_keys"] > 0
        # Refresh scoring adds to the training forward passes.
        assert result.scored_candidates > 0
        for worker in trainer.workers:
            assert worker.clock.category("neg_cache") > 0.0
        assert telemetry.counter("neg_cache_refreshes") > 0
        assert telemetry.counter("neg_cache_candidates_scored") > 0

    def test_off_path_charges_nothing(self, small_split):
        trainer = make_trainer("hetkg-d", quick_config())
        result = trainer.train(small_split.train)
        assert result.neg_cache_stats == {}
        for worker in trainer.workers:
            assert worker.neg_cache is None
            assert worker.clock.category("neg_cache") == 0.0
        # Training still counts its own forward scores.
        assert result.scored_candidates > 0

    def test_cached_changes_embeddings(self, small_split):
        plain = make_trainer("hetkg-d", quick_config())
        plain.train(small_split.train)
        cached = make_trainer("hetkg-d", quick_config(neg_cache="nscaching"))
        cached.train(small_split.train)
        assert not np.array_equal(
            plain.server.store.table("entity"),
            cached.server.store.table("entity"),
        )

    def test_leak_counter_surfaces_on_result(self, small_split):
        trainer = make_trainer("hetkg-d", quick_config())
        result = trainer.train(small_split.train)
        assert result.false_negative_leaks >= 0


# ---------------------------------------------------- streaming integration


class TestStreamingIntegration:
    def test_empty_stream_bit_identical_to_static_cached(self, small_split):
        from repro.stream import EventStream, OnlineTrainer

        config = quick_config(epochs=1, neg_cache="nscaching")
        static = make_trainer("hetkg-d", config)
        static_result = static.train(small_split.train)

        online_trainer = make_trainer("hetkg-d", config)
        online = OnlineTrainer(online_trainer, EventStream())
        online_result = online.train(small_split.train)

        for kind in ("entity", "relation"):
            np.testing.assert_array_equal(
                static.server.store.table(kind),
                online_trainer.server.store.table(kind),
                err_msg=f"{kind} tables diverged with an empty stream",
            )
        assert online_result.sim_time == static_result.sim_time
        assert online_result.neg_cache_keys_invalidated == 0
        assert (
            online_result.neg_cache_stats["candidates_scored"]
            == static_result.neg_cache_stats["candidates_scored"]
        )

    def test_stream_deletes_invalidate_keys(self):
        from repro.kg.datasets import generate_dataset
        from repro.stream import OnlineTrainer, make_stream

        graph = generate_dataset("fb15k", scale=0.012, seed=7)
        config = quick_config(epochs=1, neg_cache="nscaching")
        stream = make_stream(
            "rotation", graph, steps=200, seed=5,
            interval=8, inserts_per_update=16,
        )
        trainer = make_trainer("hetkg-d", config)
        online = OnlineTrainer(trainer, stream, eval_every=32)
        result = online.train(graph)
        assert result.triples_deleted > 0  # the profile actually deletes
        assert result.neg_cache_keys_invalidated > 0
        assert result.neg_cache_stats["refreshes"] > 0

    def test_resize_growth_keeps_cached_sampler_valid(self):
        from repro.kg.datasets import generate_dataset
        from repro.stream import OnlineTrainer, make_stream

        graph = generate_dataset("fb15k", scale=0.012, seed=7)
        config = quick_config(epochs=1, neg_cache="auto", neg_cache_anneal=16)
        stream = make_stream(
            "rotation", graph, steps=200, seed=5,
            interval=8, inserts_per_update=16,
        )
        trainer = make_trainer("hetkg-d", config)
        result = OnlineTrainer(trainer, stream, eval_every=32).train(graph)
        assert result.entities_added > 0
        for worker in trainer.workers:
            sampler = worker.sampler.negative_sampler
            assert sampler.num_entities > graph.num_entities


# -------------------------------------------------------- mp bit-identity


class TestMpSyncBitIdentity:
    def test_cached_sampler_threads_through_mp(self):
        from repro.kg.datasets import generate_dataset
        from repro.kg.splits import split_triples

        graph = generate_dataset("fb15k", scale=0.02, seed=3)
        split = split_triples(graph, seed=3)
        config = quick_config(neg_cache="nscaching")
        sim = make_trainer("hetkg-d", config)
        r_sim = sim.train(split.train)
        mp = make_trainer("hetkg-d", quick_config(neg_cache="nscaching"))
        r_mp = mp.train_mp(
            split.train, schedule="sync", start_method="fork"
        )
        for kind in ("entity", "relation"):
            np.testing.assert_array_equal(
                sim.server.store.table(kind),
                mp.server.store.table(kind),
                err_msg=f"{kind} tables diverged between sim and mp/sync",
            )
        assert r_mp.neg_cache_stats["refreshes"] == (
            r_sim.neg_cache_stats["refreshes"]
        )
        assert r_mp.neg_cache_stats["candidates_scored"] == (
            r_sim.neg_cache_stats["candidates_scored"]
        )
        assert r_mp.scored_candidates == r_sim.scored_candidates


# ------------------------------------------------------------------- CLI


class TestCLI:
    def test_unknown_mode_exits_two_with_suggestion(self, capsys):
        from repro.cli import main

        assert main(["train", "--neg-cache", "nscachin"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "nscaching" in err

    def test_pbg_rejected(self, capsys):
        from repro.cli import main

        code = main(
            ["train", "--neg-cache", "auto", "--system", "pbg",
             "--scale", "0.012"]
        )
        assert code == 2
        assert "PBG" in capsys.readouterr().err

    def test_stream_rejects_unknown_mode(self, capsys):
        from repro.cli import main

        assert main(["stream", "--neg-cache", "lru"]) == 2
        assert "valid modes" in capsys.readouterr().err

    def test_run_rejects_unknown_mode(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "negative-sampling", "--neg-cache", "cache"]
        ) == 2
        assert "valid modes" in capsys.readouterr().err
