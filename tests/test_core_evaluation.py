"""Tests for the filtered link-prediction evaluation."""

import numpy as np
import pytest

from repro.core.evaluation import evaluate_link_prediction
from repro.kg.graph import KnowledgeGraph
from repro.models import TransE


@pytest.fixture
def perfect_world():
    """Embeddings constructed so that triple (0, 0, 1) is a perfect fit and
    every other candidate tail is far away."""
    model = TransE(2, norm="l2")
    entity = np.array(
        [
            [0.0, 0.0],  # 0: head
            [1.0, 0.0],  # 1: true tail = h + r
            [5.0, 5.0],  # 2: far
            [-4.0, 3.0],  # 3: far
        ]
    )
    relation = np.array([[1.0, 0.0]])
    test = KnowledgeGraph([(0, 0, 1)], num_entities=4, num_relations=1)
    return model, entity, relation, test


class TestRanking:
    def test_perfect_embedding_rank_one(self, perfect_world):
        model, entity, relation, test = perfect_world
        result = evaluate_link_prediction(model, entity, relation, test)
        assert result.mrr == pytest.approx(1.0)
        assert result.mr == pytest.approx(1.0)
        assert result.hits[1] == 1.0

    def test_num_queries_counts_both_sides(self, perfect_world):
        model, entity, relation, test = perfect_world
        result = evaluate_link_prediction(model, entity, relation, test)
        assert result.num_queries == 2  # head + tail corruption

    def test_bad_embedding_rank_low(self):
        model = TransE(2, norm="l2")
        entity = np.array([[0.0, 0.0], [10.0, 10.0], [1.0, 0.0], [1.01, 0.0]])
        relation = np.array([[1.0, 0.0]])
        # True tail is entity 1, but entities 2 and 3 fit h + r better.
        test = KnowledgeGraph([(0, 0, 1)], num_entities=4, num_relations=1)
        result = evaluate_link_prediction(model, entity, relation, test)
        assert result.hits[1] == 0.0
        assert result.mr > 1.0

    def test_filtered_ranking_excludes_known_triples(self):
        model = TransE(2, norm="l2")
        entity = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.0]])  # 2 ties 1
        relation = np.array([[1.0, 0.0]])
        test = KnowledgeGraph([(0, 0, 1)], num_entities=3, num_relations=1)
        raw = evaluate_link_prediction(model, entity, relation, test)
        # Entity 2 scores equal; strict inequality means rank 1 either way,
        # so use a filter set that removes a *better* candidate instead.
        entity[2] = [1.0, 0.001]  # slightly different, same distance? make it better
        entity[2] = [1.0, 0.0]
        filt = evaluate_link_prediction(
            model, entity, relation, test, filter_set={(0, 0, 2), (0, 0, 1)}
        )
        assert filt.mrr >= raw.mrr

    def test_filter_removes_strictly_better_candidate(self):
        model = TransE(2, norm="l2")
        entity = np.array([[0.0, 0.0], [0.9, 0.0], [1.0, 0.0]])
        relation = np.array([[1.0, 0.0]])
        # (0,0,1): candidate 2 fits better than the true tail 1.
        test = KnowledgeGraph([(0, 0, 1)], num_entities=3, num_relations=1)
        raw = evaluate_link_prediction(model, entity, relation, test)
        filtered = evaluate_link_prediction(
            model, entity, relation, test, filter_set={(0, 0, 2), (0, 0, 1)}
        )
        # Tail-side query: raw rank 2, filtered rank 1.
        assert filtered.mrr > raw.mrr


class TestSampling:
    @pytest.fixture
    def world(self, small_graph, rng):
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        return model, entity, relation

    def test_max_queries_subsamples(self, world, small_graph):
        model, entity, relation = world
        result = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=5, seed=0
        )
        assert result.num_queries == 10

    def test_candidate_sampling_contains_truth(self, world, small_graph):
        """Sampled candidate ranking must still be able to produce rank 1
        (the true entity is always included)."""
        model, entity, relation = world
        result = evaluate_link_prediction(
            model,
            entity,
            relation,
            small_graph,
            max_queries=10,
            num_candidates=20,
            seed=0,
        )
        assert result.mr <= 21  # rank can never exceed candidates + 1

    def test_deterministic(self, world, small_graph):
        model, entity, relation = world
        a = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=10, num_candidates=30, seed=4
        )
        b = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=10, num_candidates=30, seed=4
        )
        assert a.mrr == b.mrr and a.mr == b.mr

    def test_empty_test_graph(self, world):
        model, entity, relation = world
        empty = KnowledgeGraph(
            np.empty((0, 3), dtype=np.int64), num_entities=10, num_relations=2
        )
        result = evaluate_link_prediction(model, entity, relation, empty)
        assert result.mrr == 0.0 and result.num_queries == 0

    def test_random_embeddings_near_chance(self, world, small_graph):
        """Untrained embeddings must score close to the analytic chance
        MRR — guards against evaluation leaking the answer."""
        model, entity, relation = world
        result = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=100, seed=1
        )
        n = small_graph.num_entities
        chance = (1.0 / np.arange(1, n + 1)).sum() / n
        assert result.mrr < 6 * chance

    def test_as_row(self, world, small_graph):
        model, entity, relation = world
        result = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=5, seed=0
        )
        row = result.as_row()
        assert len(row) == 3
        assert row[0] == result.mrr


class TestSideBreakdown:
    def test_head_tail_mrrs_average_to_overall(self, small_graph, rng):
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        result = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=20, seed=0
        )
        combined = 0.5 * (result.head_mrr + result.tail_mrr)
        assert result.mrr == pytest.approx(combined, rel=1e-9)

    def test_sides_populated(self, small_graph, rng):
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        result = evaluate_link_prediction(
            model, entity, relation, small_graph, max_queries=10, seed=0
        )
        assert result.head_mrr > 0
        assert result.tail_mrr > 0


class TestFilterIndex:
    def test_matches_set_semantics(self, small_graph, rng):
        """FilterIndex-based filtering must rank identically to a brute
        per-candidate set lookup."""
        from repro.core.evaluation import FilterIndex, _rank_one_side

        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        filter_set = small_graph.triple_set()
        index = FilterIndex(filter_set)
        candidates = np.arange(small_graph.num_entities)
        for h, r, t in small_graph.triples[:30]:
            h, r, t = int(h), int(r), int(t)
            for replace_head in (True, False):
                fast = _rank_one_side(
                    model, entity, relation, h, r, t, replace_head,
                    candidates, index,
                )
                # Brute-force reference.
                true_entity = h if replace_head else t
                scores = []
                for e in candidates:
                    e = int(e)
                    hh, tt = (e, t) if replace_head else (h, e)
                    triple = (hh, r, tt)
                    if e != true_entity and triple in filter_set:
                        scores.append(-np.inf)
                    else:
                        scores.append(
                            float(
                                model.score(
                                    entity[hh][None], relation[r][None], entity[tt][None]
                                )[0]
                            )
                        )
                scores = np.asarray(scores)
                true_score = scores[true_entity]
                mask = candidates != true_entity
                slow = 1 + int((scores[mask] > true_score).sum())
                assert fast == slow

    def test_known_entities_lookup(self):
        from repro.core.evaluation import FilterIndex

        index = FilterIndex({(1, 0, 2), (3, 0, 2), (1, 0, 4)})
        heads = index.known_entities(h=9, r=0, t=2, replace_head=True)
        assert sorted(heads.tolist()) == [1, 3]
        tails = index.known_entities(h=1, r=0, t=9, replace_head=False)
        assert sorted(tails.tolist()) == [2, 4]
        assert len(index.known_entities(5, 5, 5, True)) == 0


class TestBatchedPath:
    def test_identical_to_reference(self, small_graph, rng):
        """The vectorised full-ranking path must reproduce the reference
        implementation's metrics exactly, filtered and raw."""
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        for filt in (None, small_graph.triple_set()):
            fast = evaluate_link_prediction(
                model, entity, relation, small_graph,
                filter_set=filt, max_queries=40, seed=3, batched=True,
            )
            slow = evaluate_link_prediction(
                model, entity, relation, small_graph,
                filter_set=filt, max_queries=40, seed=3, batched=False,
            )
            assert fast.mrr == slow.mrr
            assert fast.mr == slow.mr
            assert fast.hits == slow.hits
            assert fast.head_mrr == slow.head_mrr
            assert fast.tail_mrr == slow.tail_mrr

    def test_small_blocks_equivalent(self, small_graph, rng):
        """Block boundaries must not change results."""
        from repro.core.evaluation import FilterIndex, _ranks_batched

        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        triples = small_graph.triples[:25]
        index = FilterIndex(small_graph.triple_set())
        big = _ranks_batched(
            model, entity, relation, triples, False, index, block_rows=10**9
        )
        tiny = _ranks_batched(
            model, entity, relation, triples, False, index,
            block_rows=small_graph.num_entities,  # one query per block
        )
        assert big == tiny

    def test_sampled_candidates_use_reference_path(self, small_graph, rng):
        """num_candidates < entities must fall back to the reference path
        (sampling semantics depend on draw order)."""
        model = TransE(4)
        entity = rng.normal(size=(small_graph.num_entities, 4))
        relation = rng.normal(size=(small_graph.num_relations, 4))
        a = evaluate_link_prediction(
            model, entity, relation, small_graph,
            max_queries=10, num_candidates=20, seed=5, batched=True,
        )
        b = evaluate_link_prediction(
            model, entity, relation, small_graph,
            max_queries=10, num_candidates=20, seed=5, batched=False,
        )
        assert a.mrr == b.mrr
