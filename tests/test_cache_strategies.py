"""Tests for the CPS and DPS hot-table construction strategies."""

import numpy as np
import pytest

from repro.cache.strategies import ConstantPartialStale, DynamicPartialStale
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler


def make_sampler(graph, seed=0, batch_size=16):
    neg = NegativeSampler(graph.num_entities, num_negatives=4, seed=seed)
    return EpochSampler(graph, batch_size, neg, seed=seed)


class TestCPS:
    def test_setup_returns_hot_set(self, small_graph):
        strategy = ConstantPartialStale(capacity=32)
        hot = strategy.setup(make_sampler(small_graph))
        assert 0 < hot.size <= 32

    def test_membership_never_changes(self, small_graph):
        strategy = ConstantPartialStale(capacity=32)
        strategy.setup(make_sampler(small_graph))
        for _ in range(2 * strategy._sampler.batches_per_epoch + 3):
            _, new_hot = strategy.next_batch()
            assert new_hot is None

    def test_trains_on_prefetched_batches(self, small_graph):
        """CPS must train on exactly the batches it counted frequencies
        from (first epoch)."""
        a = make_sampler(small_graph, seed=3)
        b = make_sampler(small_graph, seed=3)
        strategy = ConstantPartialStale(capacity=16)
        strategy.setup(a)
        expected = b.prefetch(b.batches_per_epoch)
        for want in expected:
            got, _ = strategy.next_batch()
            assert np.array_equal(got.positives, want.positives)

    def test_overhead_reported_once(self, small_graph):
        strategy = ConstantPartialStale(capacity=16)
        strategy.setup(make_sampler(small_graph))
        assert strategy.consume_overhead_items() > 0
        assert strategy.consume_overhead_items() == 0
        strategy.next_batch()
        assert strategy.consume_overhead_items() == 0

    def test_custom_horizon(self, small_graph):
        strategy = ConstantPartialStale(capacity=16, horizon=3)
        strategy.setup(make_sampler(small_graph))
        assert len(strategy._queue) == 3

    def test_next_batch_before_setup(self):
        with pytest.raises(RuntimeError, match="setup"):
            ConstantPartialStale(capacity=4).next_batch()

    def test_epoch_rollover(self, small_graph):
        sampler = make_sampler(small_graph)
        strategy = ConstantPartialStale(capacity=16)
        strategy.setup(sampler)
        n = sampler.batches_per_epoch
        for _ in range(n + 2):  # crosses the epoch boundary
            batch, _ = strategy.next_batch()
            assert batch.size > 0


class TestDPS:
    def test_rebuilds_every_window(self, small_graph):
        strategy = DynamicPartialStale(capacity=32, window=4)
        strategy.setup(make_sampler(small_graph))
        events = []
        for i in range(12):
            _, new_hot = strategy.next_batch()
            events.append(new_hot is not None)
        # Batches 0-3 from setup window; rebuild arrives with batch 4 and 8.
        assert events == [False] * 4 + [True] + [False] * 3 + [True] + [False] * 3

    def test_hot_sets_track_windows(self, small_graph):
        """DPS hot entities must be exactly the top-k of the window it
        prefetched."""
        strategy = DynamicPartialStale(capacity=8, window=4, entity_ratio=0.5)
        hot = strategy.setup(make_sampler(small_graph))
        assert len(hot.entities) <= 4
        assert len(hot.relations) <= 8

    def test_overhead_recurs(self, small_graph):
        strategy = DynamicPartialStale(capacity=16, window=2)
        strategy.setup(make_sampler(small_graph))
        first = strategy.consume_overhead_items()
        assert first > 0
        strategy.next_batch()
        strategy.next_batch()  # triggers refill
        strategy.next_batch()
        assert strategy.consume_overhead_items() > 0

    def test_dps_hit_ratio_at_least_cps(self, small_graph):
        """The paper's DPS motivation: window-local top-k should hit at
        least as often as the global top-k on the same stream, for a small
        cache."""
        from repro.cache.prefetch import prefetch

        capacity = 8
        # Global top-k (CPS) baseline.
        cps_sampler = make_sampler(small_graph, seed=1)
        cps = ConstantPartialStale(capacity=capacity, entity_ratio=0.5)
        cps_hot = cps.setup(cps_sampler)
        cps_set = set(cps_hot.entities.tolist())

        dps_sampler = make_sampler(small_graph, seed=1)
        dps = DynamicPartialStale(capacity=capacity, window=4, entity_ratio=0.5)
        hot = dps.setup(dps_sampler)
        dps_set = set(hot.entities.tolist())

        def run(strategy, member_sets):
            hits = total = 0
            current = member_sets
            for _ in range(20):
                batch, new_hot = strategy.next_batch()
                if new_hot is not None:
                    current = set(new_hot.entities.tolist())
                for e in batch.unique_entities().tolist():
                    hits += e in current
                    total += 1
            return hits / total

        assert run(dps, dps_set) >= run(cps, cps_set) - 0.05

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DynamicPartialStale(capacity=8, window=0)

    def test_next_batch_before_setup(self):
        with pytest.raises(RuntimeError, match="setup"):
            DynamicPartialStale(capacity=4).next_batch()
