"""Unit tests for repro.obs: tracer, metrics, sinks, Chrome-trace export."""

import json

import pytest

from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import InMemorySink, NullSink, SpanRecord, TraceSink
from repro.obs.tracer import (
    NULL_SCOPE,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.utils.simclock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer():
    return Tracer()


def make_nested_trace(tracer, clock):
    """outer[0, 1.75] wrapping inner[1.0, 1.5] on one track, plus a counter."""
    scope = tracer.scope("worker0", clock)
    with scope.span("outer", "compute", phase="demo") as outer:
        clock.advance(1.0, "compute")
        with scope.span("inner", "communication") as inner:
            clock.advance(0.5, "communication")
            inner.set(bytes=1234)
        clock.advance(0.25, "compute")
        outer.set(scores=10)
    scope.count("steps")
    return scope


class TestSpans:
    def test_span_records_clock_interval(self, tracer, clock):
        scope = tracer.scope("w", clock)
        clock.advance(2.0)
        with scope.span("fetch", "communication"):
            clock.advance(0.5, "communication")
        (span,) = tracer.sink.spans
        assert span.name == "fetch"
        assert span.track == "w"
        assert span.category == "communication"
        assert span.start == pytest.approx(2.0)
        assert span.end == pytest.approx(2.5)
        assert span.duration == pytest.approx(0.5)

    def test_nested_spans_contained(self, tracer, clock):
        make_nested_trace(tracer, clock)
        spans = {s.name: s for s in tracer.sink.spans}
        outer, inner = spans["outer"], spans["inner"]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration == pytest.approx(1.75)
        assert inner.duration == pytest.approx(0.5)

    def test_attrs_set_mid_span(self, tracer, clock):
        make_nested_trace(tracer, clock)
        spans = {s.name: s for s in tracer.sink.spans}
        assert spans["inner"].attrs == {"bytes": 1234}
        assert spans["outer"].attrs == {"phase": "demo", "scores": 10}

    def test_category_totals_reconcile_with_clock(self, tracer, clock):
        make_nested_trace(tracer, clock)
        totals = tracer.sink.category_totals("worker0")
        # inner communication time is also inside the outer compute span;
        # outer's *duration* includes it, which is why instrumented code
        # gives each clock category its own span (asserted end-to-end in
        # test_obs_integration).
        assert totals["communication"] == pytest.approx(0.5)
        assert totals["compute"] == pytest.approx(1.75)

    def test_counter_samples_timestamped(self, tracer, clock):
        scope = make_nested_trace(tracer, clock)
        (sample,) = tracer.sink.counters
        assert sample.name == "steps"
        assert sample.ts == pytest.approx(1.75)
        assert sample.value == 1.0
        scope.count("steps")
        assert tracer.sink.counters[-1].value == 2.0

    def test_gauge_samples(self, tracer, clock):
        scope = tracer.scope("w", clock)
        scope.gauge("occupancy", 0.75)
        scope.gauge("occupancy", 0.5)
        assert tracer.metrics.gauge("occupancy").value == 0.5
        assert [s.value for s in tracer.sink.counters] == [0.75, 0.5]


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        reg.counter("x").add(4)
        assert reg.snapshot() == {"x": 5.0}
        assert "x" in reg and "y" not in reg

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("x").add(-1)


class TestDisabledPath:
    def test_null_scope_allocates_no_spans(self):
        # the whole point: tracing off means no span objects, ever
        a = NULL_SCOPE.span("fetch", "communication", bytes=1)
        b = NULL_SCOPE.span("push")
        assert a is b is NULL_SPAN
        with a as span:
            assert span.set(x=1) is span

    def test_null_tracer_scope_is_shared(self, clock):
        assert NULL_TRACER.scope("w", clock) is NULL_SCOPE
        assert not NULL_TRACER.enabled
        assert not NULL_SCOPE.enabled

    def test_global_tracer_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_global_tracer_install_and_clear(self, tracer):
        try:
            set_tracer(tracer)
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestSinks:
    def test_in_memory_sink_protocol(self):
        assert isinstance(InMemorySink(), TraceSink)
        assert isinstance(NullSink(), TraceSink)

    def test_null_sink_discards(self, clock):
        tracer = Tracer(sink=NullSink())
        scope = tracer.scope("w", clock)
        with scope.span("s"):
            clock.advance(1.0)
        scope.count("c")
        # counters still aggregate even when samples are dropped
        assert tracer.metrics.snapshot() == {"c": 1.0}

    def test_clear(self, tracer, clock):
        make_nested_trace(tracer, clock)
        assert len(tracer.sink) > 0
        tracer.sink.clear()
        assert len(tracer.sink) == 0


class TestChromeExport:
    def test_golden_event_stream(self, tracer, clock):
        """Golden test: exact shape of a tiny nested trace."""
        make_nested_trace(tracer, clock)
        trace = tracer.chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta == [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "worker0"},
            }
        ]
        timed = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert [(e["name"], e["ph"], e["ts"]) for e in timed] == [
            ("outer", "X", 0.0),
            ("inner", "X", 1.0e6),
            ("steps", "C", 1.75e6),
        ]
        outer = timed[0]
        assert outer["dur"] == pytest.approx(1.75e6)
        assert outer["cat"] == "compute"
        assert outer["args"] == {"phase": "demo", "scores": 10}

    def test_ts_monotonic_and_nesting_order(self, tracer, clock):
        # emission order is exit order (inner first); export must re-sort
        make_nested_trace(tracer, clock)
        assert tracer.sink.spans[0].name == "inner"
        timed = [e for e in tracer.chrome_trace()["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        # equal-ts tie: the enclosing (longer) span must come first
        with tracer.scope("worker0", clock).span("outer2", "compute"):
            with tracer.scope("worker0", clock).span("inner2", "compute"):
                clock.advance(0.1)
            clock.advance(0.1)
        timed = [e for e in tracer.chrome_trace()["traceEvents"] if e["ph"] != "M"]
        names = [e["name"] for e in timed]
        assert names.index("outer2") < names.index("inner2")

    def test_validator_accepts_export(self, tracer, clock):
        make_nested_trace(tracer, clock)
        summary = validate_chrome_trace(tracer.chrome_trace())
        assert summary["spans"] == 2.0
        assert summary["counters"] == 1.0
        assert summary["seconds[communication]"] == pytest.approx(0.5)

    def test_file_roundtrip(self, tracer, clock, tmp_path):
        make_nested_trace(tracer, clock)
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        summary = validate_chrome_trace_file(str(path))
        assert summary["spans"] == 2.0
        loaded = json.loads(path.read_text())
        assert loaded == tracer.chrome_trace()

    def test_write_chrome_trace_matches_to_chrome_trace(self, tracer, clock, tmp_path):
        make_nested_trace(tracer, clock)
        path = tmp_path / "t.json"
        write_chrome_trace(tracer.sink, str(path))
        assert json.loads(path.read_text()) == to_chrome_trace(tracer.sink)


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "X"}]})

    def test_rejects_negative_duration(self):
        event = {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": -1}
        with pytest.raises(ValueError, match="non-negative 'dur'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_non_monotonic_ts(self):
        events = [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 5.0, "dur": 1.0},
            {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": 1.0},
        ]
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace({"traceEvents": events})

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_bad_counter_args(self):
        event = {"name": "c", "ph": "C", "pid": 0, "tid": 0, "ts": 0.0, "args": {}}
        with pytest.raises(ValueError, match="non-empty 'args'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_manual_span_record(self):
        sink = InMemorySink()
        sink.emit_span(SpanRecord(name="s", track="t", start=0.0, end=1.0))
        assert validate_chrome_trace(to_chrome_trace(sink))["spans"] == 1.0
