"""Numerical gradient checks for every registered KGE model.

The single most important correctness property of the models package: the
analytic gradients returned by ``grad`` must match central finite
differences of ``score`` for every model, on random inputs.
"""

import numpy as np
import pytest

from repro.models.base import MODEL_REGISTRY, get_model
from repro.utils.rng import make_rng

DIM = 6
BATCH = 4
EPS = 1e-6

# L1-TransE's sign() gradient is not differentiable at zero entries, but on
# random continuous inputs the kink is never hit; all models check out.
MODELS = sorted(MODEL_REGISTRY)


def _random_batch(model, rng):
    h = rng.normal(0.5, 1.0, size=(BATCH, model.entity_dim))
    r = rng.normal(-0.3, 1.0, size=(BATCH, model.relation_dim))
    t = rng.normal(0.1, 1.0, size=(BATCH, model.entity_dim))
    upstream = rng.normal(0.0, 1.0, size=BATCH)
    return h, r, t, upstream


def _numeric_grad(fn, x, upstream):
    """Central-difference gradient of sum(upstream * fn(x))."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        plus = float((upstream * fn()).sum())
        flat[i] = orig - EPS
        minus = float((upstream * fn()).sum())
        flat[i] = orig
        grad.ravel()[i] = (plus - minus) / (2 * EPS)
    return grad


@pytest.mark.parametrize("name", MODELS)
class TestGradientsMatchNumerical:
    def test_grad_h(self, name):
        model = get_model(name, DIM)
        h, r, t, up = _random_batch(model, make_rng(1))
        gh, _, _ = model.grad(h, r, t, up)
        num = _numeric_grad(lambda: model.score(h, r, t), h, up)
        np.testing.assert_allclose(gh, num, rtol=1e-4, atol=1e-6)

    def test_grad_r(self, name):
        model = get_model(name, DIM)
        h, r, t, up = _random_batch(model, make_rng(2))
        _, gr, _ = model.grad(h, r, t, up)
        num = _numeric_grad(lambda: model.score(h, r, t), r, up)
        np.testing.assert_allclose(gr, num, rtol=1e-4, atol=1e-6)

    def test_grad_t(self, name):
        model = get_model(name, DIM)
        h, r, t, up = _random_batch(model, make_rng(3))
        _, _, gt = model.grad(h, r, t, up)
        num = _numeric_grad(lambda: model.score(h, r, t), t, up)
        np.testing.assert_allclose(gt, num, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("name", MODELS)
class TestGradShapes:
    def test_shapes_match_inputs(self, name):
        model = get_model(name, DIM)
        h, r, t, up = _random_batch(model, make_rng(4))
        gh, gr, gt = model.grad(h, r, t, up)
        assert gh.shape == h.shape
        assert gr.shape == r.shape
        assert gt.shape == t.shape

    def test_zero_upstream_zero_grad(self, name):
        model = get_model(name, DIM)
        h, r, t, _ = _random_batch(model, make_rng(5))
        gh, gr, gt = model.grad(h, r, t, np.zeros(BATCH))
        assert np.allclose(gh, 0) and np.allclose(gr, 0) and np.allclose(gt, 0)

    def test_grad_linear_in_upstream(self, name):
        model = get_model(name, DIM)
        h, r, t, up = _random_batch(model, make_rng(6))
        gh1, gr1, gt1 = model.grad(h, r, t, up)
        gh2, gr2, gt2 = model.grad(h, r, t, 2.0 * up)
        np.testing.assert_allclose(gh2, 2 * gh1, rtol=1e-10)
        np.testing.assert_allclose(gr2, 2 * gr1, rtol=1e-10)
        np.testing.assert_allclose(gt2, 2 * gt1, rtol=1e-10)
