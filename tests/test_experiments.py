"""Tests for the experiment runners — every paper table/figure runner must
produce a sane, well-shaped result at tiny scale."""

import pytest

from repro.experiments.common import (
    ALL_SYSTEMS,
    ExperimentResult,
    base_config,
    dataset_bundle,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

TINY = dict(scale=0.015, epochs=1, seed=0)


def run_tiny(name):
    """Run an experiment with the smallest knobs its signature accepts."""
    import inspect

    runner = get_experiment(name)
    accepted = inspect.signature(runner).parameters
    kwargs = {k: v for k, v in TINY.items() if k in accepted}
    return runner(**kwargs)


class TestRegistry:
    def test_all_paper_ids_present(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            "fig2", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig8c", "fig9",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_list_sorted(self):
        names = list_experiments()
        assert names == sorted(names)


class TestCommon:
    def test_dataset_bundle_memoised(self):
        a = dataset_bundle("fb15k", scale=0.015, seed=0)
        b = dataset_bundle("fb15k", scale=0.015, seed=0)
        assert a is b

    def test_bundle_split_is_90_5_5(self):
        bundle = dataset_bundle("fb15k", scale=0.015, seed=0)
        n = bundle.graph.num_triples
        assert bundle.split.train.num_triples == round(0.9 * n)

    def test_base_config_paper_values(self):
        cfg = base_config()
        assert cfg.optimizer == "adagrad"
        assert cfg.lr == 0.1
        assert cfg.num_machines == 4

    def test_result_to_text(self):
        result = ExperimentResult(
            "t", "Title", ["a", "b"], [[1, 2.5]],
            notes="n", series={"s": [(1.0, 2.0)]},
        )
        text = result.to_text()
        assert "[t] Title" in text
        assert "series s" in text
        assert "note: n" in text


class TestMicrobenchRunners:
    def test_table1_comm_dominates(self):
        result = run_tiny("table1")
        assert len(result.rows) == 3
        for row in result.rows:
            assert 0.0 < row[3] < 1.0  # comm fraction
        # The headline claim at any scale with 1 Gbps: comm share is large.
        assert max(row[3] for row in result.rows) > 0.4

    def test_fig2_relation_skew_exceeds_entity(self):
        result = run_tiny("fig2")
        for row in result.rows:
            assert row[2] > row[1]  # relation share > entity share

    def test_table2_counts(self):
        result = run_tiny("table2")
        for row in result.rows:
            assert row[1] > 0 and row[2] > 0 and row[3] > 0


class TestAccuracyRunners:
    @pytest.mark.parametrize("name", ["table3", "table4"])
    def test_accuracy_table_shape(self, name):
        result = run_tiny(name)
        assert len(result.rows) == 2 * len(ALL_SYSTEMS)  # two models
        for row in result.rows:
            assert 0.0 <= row[2] <= 1.0  # MRR
            assert row[5] > 0  # time

    def test_table5_single_model(self):
        result = run_tiny("table5")
        assert len(result.rows) == len(ALL_SYSTEMS)
        assert all(row[1] == "transe" for row in result.rows)


class TestEfficiencyRunners:
    def test_fig5_series_monotone_time(self):
        result = get_experiment("fig5")(scale=0.015, epochs=2, seed=0)
        for label, points in result.series.items():
            times = [t for t, _ in points]
            assert times == sorted(times)

    def test_fig6_speedups_start_at_one(self):
        result = get_experiment("fig6")(
            scale=0.03, epochs=1, seed=0, worker_counts=(1, 2)
        )
        for label, points in result.series.items():
            assert points[0][1] == pytest.approx(1.0)

    def test_fig7_breakdown_sums(self):
        result = run_tiny("fig7")
        for row in result.rows:
            assert row[4] == pytest.approx(row[2] + row[3], rel=1e-6)


class TestCacheStudyRunners:
    def test_fig8a_hit_ratio_nondecreasing_in_capacity(self):
        result = get_experiment("fig8a")(
            scale=0.03, epochs=1, seed=0, capacities=(32, 512)
        )
        hits = [r[1] for r in result.rows]
        assert hits[1] >= hits[0]

    def test_fig8b_time_falls_with_staleness(self):
        result = get_experiment("fig8b")(
            scale=0.03, epochs=1, seed=0, staleness=(1, 16)
        )
        times = [r[2] for r in result.rows]
        assert times[1] < times[0]

    def test_fig8c_extreme_ratios_not_best(self):
        result = get_experiment("fig8c")(
            scale=0.05, epochs=1, seed=0, ratios=(0.0, 0.25, 1.0)
        )
        hits = [r[1] for r in result.rows]
        assert hits[1] >= max(hits[0], hits[2]) - 0.02

    def test_fig9_produces_curves(self):
        result = get_experiment("fig9")(
            scale=0.03, epochs=2, seed=0, staleness=(1, 8)
        )
        assert len(result.series) == 2

    def test_table6_hetkg_beats_fifo_and_lru(self):
        result = get_experiment("table6")(scale=0.03, seed=0)
        for row in result.rows:
            fifo, lru, lfu, importance, hetkg = row[1:]
            assert hetkg > fifo
            assert hetkg > lru
            assert hetkg >= importance - 0.02

    def test_table7_two_variants_per_dataset(self):
        result = get_experiment("table7")(scale=0.015, epochs=1, seed=0)
        assert len(result.rows) == 4
        labels = {row[1] for row in result.rows}
        assert labels == {"HET-KG", "HET-KG-N"}


class TestAblationRunners:
    def test_partition_metis_cuts_less(self):
        result = run_tiny("ablation-partition")
        by_dataset = {}
        for dataset, name, cut, *_ in result.rows:
            by_dataset.setdefault(dataset, {})[name] = cut
        for cuts in by_dataset.values():
            assert cuts["metis"] < cuts["random"]

    def test_negatives_chunked_smaller_working_set(self):
        result = run_tiny("ablation-negatives")
        uniques = {row[0]: row[1] for row in result.rows}
        assert uniques["chunked"] < uniques["independent"]

    def test_dps_window_rows(self):
        result = get_experiment("ablation-dps-window")(
            scale=0.015, epochs=1, seed=0, windows=(4, 64)
        )
        assert len(result.rows) == 2
        assert all(0 <= row[1] <= 1 for row in result.rows)
