"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # All rows align on the same column start for "value".
        assert lines[0].index("value") == lines[2].index("1")

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_precision(self):
        text = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in text
        assert "1.235" not in text

    def test_int_not_float_formatted(self):
        text = format_table(["x"], [[7]])
        assert "7.000" not in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_no_trailing_whitespace(self):
        text = format_table(["a", "b"], [["x", "y"]])
        for line in text.splitlines():
            assert line == line.rstrip()
