"""Tests for the overload-robust serving layer.

Covers the four tentpole pieces of the overload PR:

1. **Admission control** (`repro.serving.admission`) — token buckets,
   the spec grammar, priorities, and first-class rejected outcomes.
2. **Load shedding** — the deadline-projecting ladder with hysteresis.
3. **Fault-stressed serving** — the retrying shard channel: outages
   meter retries and surface as ``timeout`` outcomes, never exceptions;
   a zero plan is bit-identical to the channel-free frontend.
4. **Continuous deployment** (`repro.serving.deploy`) — double-buffered
   version swaps, pre-swap cache re-warming, and the staleness metric.

Plus the regression guard: with every overload feature disabled the
frontend must reproduce ``tests/golden/serving_golden.json`` (captured
pre-overload-layer) bit for bit.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import types

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.faults import FaultPlan
from repro.serving.admission import (
    DEGRADED,
    FULL,
    SHED_DECISION,
    AdmissionController,
    LoadShedder,
    TenantSpec,
    TokenBucket,
    assign_tenants,
)
from repro.serving.batcher import QueryBatcher
from repro.serving.cache import ServingCache
from repro.serving.deploy import (
    ContinuousDeployment,
    VersionedStore,
    snapshot_from_trainer,
)
from repro.serving.frontend import ServingFrontend
from repro.serving.queries import ADMITTED, REJECTED, TIMEOUT, Query
from repro.serving.store import EmbeddingStore
from repro.serving.workload import WorkloadSpec, ZipfianWorkload

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def score_query(qid, head=0, relation=0, tail=1, arrival=0.0, tenant=""):
    return Query(
        qid=qid, kind="score", head=head, relation=relation, tail=tail,
        arrival=arrival, tenant=tenant,
    )


@pytest.fixture(scope="module")
def served():
    """A small trained store + calibrated workload shared by the tests."""
    config = TrainingConfig(
        model="transe", dim=8, epochs=1, batch_size=32, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        sync_period=4, seed=0,
    )
    from repro.kg.datasets import generate_dataset
    from repro.kg.splits import split_triples

    graph = generate_dataset("fb15k", scale=0.015, seed=7)
    split = split_triples(graph, seed=7)
    trainer = make_trainer("hetkg-d", config)
    trainer.train(split.train)
    return trainer, graph, snapshot_from_trainer(trainer)


def make_workload(graph, num_queries=400, rate=50_000.0, seed=11, zipf=1.1):
    spec = WorkloadSpec(
        num_queries=num_queries, arrival_rate=rate, zipf_exponent=zipf, seed=seed
    )
    return ZipfianWorkload.from_graph(graph, spec).generate()


def overload_frontend(store, **kwargs):
    defaults = dict(
        batcher=QueryBatcher(max_batch=16, max_wait=2e-3),
        byte_scale=25.0,
    )
    defaults.update(kwargs)
    return ServingFrontend(store, **defaults)


# ------------------------------------------------------------------ admission


class TestTokenBucket:
    def test_burst_then_rate_limits(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]
        # 0.1 simulated seconds refills exactly one token.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=1000.0, burst=2)
        for _ in range(2):
            assert bucket.try_take(0.0)
        assert [bucket.try_take(100.0) for _ in range(3)] == [True, True, False]

    def test_stale_timestamp_refills_nothing(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(0.5)


class TestAdmissionController:
    def test_parse_grammar(self):
        ctrl = AdmissionController.parse("gold=2000/256/p2,free=500/64,*=100")
        assert ctrl.specs["gold"] == TenantSpec("gold", 2000.0, 256, 2)
        assert ctrl.specs["free"] == TenantSpec("free", 500.0, 64, 0)
        assert ctrl.specs["*"].rate == 100.0
        assert ctrl.max_priority == 2

    def test_parse_errors_name_the_clause(self):
        for spec, clause in [
            ("gold", "gold"),
            ("gold=fast", "gold=fast"),
            ("gold=100/zz", "gold=100/zz"),
            ("gold=100,free=-1", "free=-1"),
        ]:
            with pytest.raises(ValueError, match="clause") as err:
                AdmissionController.parse(spec)
            assert clause in str(err.value)
        with pytest.raises(ValueError, match="no tenants"):
            AdmissionController.parse(" , ")

    def test_spec_round_trip(self):
        for spec in (
            "gold=2000.0/256/p2,free=500.0/64,*=100.0",
            "a=1.5",
            "b=3.0/7/p4",
        ):
            ctrl = AdmissionController.parse(spec)
            again = AdmissionController.parse(ctrl.to_spec())
            assert again.specs == ctrl.specs

    def test_unknown_tenant_without_wildcard_admitted(self):
        ctrl = AdmissionController([TenantSpec("gold", rate=1.0, burst=1)])
        assert all(ctrl.admit("stranger", 0.0) for _ in range(100))
        assert ctrl.admitted["stranger"] == 100

    def test_wildcard_buckets_are_per_tenant(self):
        ctrl = AdmissionController.parse("*=1000/1")
        assert ctrl.admit("a", 0.0)
        # b gets its own bucket: a's spent token does not gate b.
        assert ctrl.admit("b", 0.0)
        assert not ctrl.admit("a", 0.0)

    def test_rejections_counted(self):
        ctrl = AdmissionController.parse("free=10/2")
        decisions = [ctrl.admit("free", 0.0) for _ in range(5)]
        assert decisions == [True, True, False, False, False]
        assert ctrl.admitted == {"free": 2}
        assert ctrl.rejected == {"free": 3}

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdmissionController.parse("a=1,a=2")


class TestAssignTenants:
    def test_round_robin_by_qid(self):
        queries = [score_query(qid, arrival=qid * 0.1) for qid in range(6)]
        tagged = assign_tenants(queries, ["x", "y", "z"])
        assert [q.tenant for q in tagged] == ["x", "y", "z", "x", "y", "z"]
        # Originals are untouched (queries are frozen).
        assert all(q.tenant == "" for q in queries)

    def test_requires_names(self):
        with pytest.raises(ValueError, match="tenant name"):
            assign_tenants([], [])


# ------------------------------------------------------------------- shedding


class TestLoadShedder:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            LoadShedder(slo=0.0)
        with pytest.raises(ValueError, match="exit"):
            LoadShedder(slo=1.0, enter=1.0, exit=1.0)
        with pytest.raises(ValueError, match="degrade_at"):
            LoadShedder(slo=1.0, degrade_at=2.0, enter=1.0)
        with pytest.raises(ValueError, match="priority_slack"):
            LoadShedder(slo=1.0, priority_slack=-1.0)

    def test_cold_server_never_sheds_first_arrival(self):
        shedder = LoadShedder(slo=0.01)
        projected = shedder.projected_latency(
            arrival=0.0, server_clock=0.0, queue_depth=0, max_wait=2e-3
        )
        assert shedder.assess(0, projected) == FULL

    def test_ewma_estimate_converges(self):
        shedder = LoadShedder(slo=0.01, ewma=0.5)
        shedder.observe_batch(10, 0.1)  # 10 ms per query
        assert shedder.service_estimate == pytest.approx(0.01)
        shedder.observe_batch(10, 0.3)  # 30 ms per query
        assert shedder.service_estimate == pytest.approx(0.02)
        shedder.observe_batch(0, 5.0)  # empty batches are ignored
        assert shedder.service_estimate == pytest.approx(0.02)

    def test_ladder_and_hysteresis(self):
        shedder = LoadShedder(
            slo=1.0, degrade_at=0.5, enter=1.0, exit=0.6, priority_slack=0.0
        )
        assert shedder.assess(0, 0.1) == FULL
        assert shedder.assess(0, 0.7) == DEGRADED
        assert shedder.assess(0, 1.2) == SHED_DECISION
        # Inside the hysteresis band the shedding state is sticky.
        assert shedder.assess(0, 0.8) == SHED_DECISION
        assert shedder.is_shedding(0)
        # Only below exit does it disengage (0.55 is still >= degrade_at).
        assert shedder.assess(0, 0.55) == DEGRADED
        assert not shedder.is_shedding(0)
        assert shedder.stats.engaged == 1
        assert shedder.stats.disengaged == 1

    def test_priority_sheds_low_first(self):
        shedder = LoadShedder(slo=1.0, enter=1.0, exit=0.5, priority_slack=1.0)
        # Pressure 1.5 busts priority 0 (threshold 1.0) but not
        # priority 2 (threshold 3.0).
        assert shedder.assess(0, 1.5) == SHED_DECISION
        assert shedder.assess(2, 1.5) != SHED_DECISION

    def test_truncated_candidates_keeps_hot_prefix(self):
        shedder = LoadShedder(slo=1.0, degrade_keep=0.5)
        assert shedder.truncated_candidates((1, 2, 3, 4)) == (1, 2)
        assert shedder.truncated_candidates((7,)) == (7,)
        assert shedder.truncated_candidates(()) == ()

    def test_projection_includes_backlog_queue_and_wait(self):
        shedder = LoadShedder(slo=1.0)
        shedder.observe_batch(1, 0.01)
        projected = shedder.projected_latency(
            arrival=1.0, server_clock=1.5, queue_depth=3, max_wait=0.002
        )
        assert projected == pytest.approx(0.5 + 4 * 0.01 + 0.002)


# --------------------------------------------------- frontend under overload


class TestOverloadFrontend:
    def test_outcomes_partition_the_stream(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=400, rate=50_000.0)
        frontend = overload_frontend(
            store,
            cache=ServingCache.dynamic(32, policy="lru"),
            admission=AdmissionController.parse("free=8000/32"),
            shedder=LoadShedder(
                slo=0.01, degrade_at=0.4, enter=0.7, exit=0.45
            ),
        )
        queries = assign_tenants(log.queries, ["free"])
        report = frontend.run(queries)
        assert report.num_queries == len(queries)
        assert (
            report.num_admitted + report.num_rejected
            + report.num_shed + report.num_timeout
        ) == report.num_queries
        assert report.num_rejected > 0  # the 8k bucket clips a 50k stream
        assert report.shed_rate > 0.0
        assert report.goodput <= report.throughput
        assert report.tenant_p99.keys() == {"free"}

    def test_rejected_complete_instantly_answerless(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=100, rate=50_000.0)
        frontend = overload_frontend(
            store, admission=AdmissionController.parse("*=1000/1")
        )
        frontend.run(assign_tenants(log.queries, ["t"]))
        rejected = [r for r in frontend.results if r.outcome == REJECTED]
        assert rejected
        for result in rejected:
            assert result.completion == result.arrival
            assert result.answer is None
            assert result.batch_size == 0
            assert result.tenant == "t"

    def test_degraded_ladder_truncates_but_answers(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=300, rate=50_000.0)
        # A wide hysteresis band that degrades early and sheds never.
        frontend = overload_frontend(
            store,
            shedder=LoadShedder(
                slo=0.01, degrade_at=0.05, enter=50.0, exit=1.0
            ),
        )
        report = frontend.run(log.queries)
        assert report.num_shed == 0
        assert report.num_degraded > 0
        degraded = [r for r in frontend.results if r.degraded]
        assert degraded
        for result in degraded:
            assert result.outcome == ADMITTED
            assert result.answer is not None

    def test_admitted_only_latency_percentiles(self, served):
        """Rejected/shed zero-latency records must not deflate the tail."""
        _, graph, store = served
        log = make_workload(graph, num_queries=300, rate=50_000.0)
        frontend = overload_frontend(
            store, admission=AdmissionController.parse("*=4000/16")
        )
        report = frontend.run(assign_tenants(log.queries, ["t"]))
        admitted = [
            r.latency for r in frontend.results if r.outcome == ADMITTED
        ]
        assert report.num_rejected > 0
        assert report.latency_p50 >= min(admitted)
        assert report.latency_mean == pytest.approx(float(np.mean(admitted)))


# ------------------------------------------------------- golden bit-identity


class TestGoldenBitIdentity:
    """The plain serving path vs the committed pre-overload fingerprint."""

    def test_disabled_features_reproduce_golden(self):
        spec = importlib.util.spec_from_file_location(
            "serving_golden_capture", GOLDEN_DIR / "capture_serving.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        golden = json.loads((GOLDEN_DIR / "serving_golden.json").read_text())
        fresh = module.capture()
        for scenario in ("no-cache", "static", "lru"):
            assert fresh[scenario] == golden[scenario], (
                f"serving scenario {scenario!r} diverged from the "
                f"pre-overload golden fingerprint"
            )


# -------------------------------------------------------- fault-y serving


class TestFaultServing:
    def test_outage_meters_retries_never_raises(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=300, rate=20_000.0)
        frontend = overload_frontend(
            store,
            cache=ServingCache.dynamic(32, policy="lru"),
            faults=FaultPlan.parse(
                "seed=1,retries=3x0.002,ps-out=0@2:5,drop=0.6@5:30"
            ),
        )
        report = frontend.run(log.queries)  # must not raise
        assert frontend.injector.stats.retries > 0
        assert frontend.injector.stats.retry_wait_seconds > 0.0
        assert frontend.comm_totals.retransmit_bytes > 0
        assert report.num_timeout > 0
        for result in frontend.results:
            if result.outcome == TIMEOUT:
                assert result.answer is None
                assert result.completion >= result.arrival

    def test_zero_plan_bit_identical_to_plain_frontend(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=200, rate=5_000.0)
        plain = overload_frontend(store, cache=ServingCache.dynamic(32))
        chaotic = overload_frontend(
            store,
            cache=ServingCache.dynamic(32),
            faults=FaultPlan.none(seed=9),
        )
        plain.run(log.queries)
        chaotic.run(log.queries)
        assert chaotic.clock.elapsed == plain.clock.elapsed
        assert chaotic.comm_totals == plain.comm_totals
        for a, b in zip(plain.results, chaotic.results):
            assert (a.qid, a.completion, a.outcome) == (
                b.qid, b.completion, b.outcome,
            )
        assert chaotic.injector.stats.retries == 0

    def test_timeout_batch_charges_no_compute(self, served):
        _, graph, store = served
        log = make_workload(graph, num_queries=60, rate=20_000.0)
        # Total blackout: every batch burns its budget and times out.
        frontend = overload_frontend(
            store,
            faults=FaultPlan.parse("seed=1,retries=2x0.001,drop=1.0"),
        )
        report = frontend.run(log.queries)
        assert report.num_timeout == report.num_queries
        assert frontend.clock.category("compute") == 0.0
        assert frontend.clock.category("communication") > 0.0


# -------------------------------------------------------------- deployment


class FakeMembership:
    """Stands in for a trainer hot cache: exposes ``cached_ids(kind)``."""

    def __init__(self, entities, relations):
        self._ids = {
            "entity": np.asarray(entities, dtype=np.int64),
            "relation": np.asarray(relations, dtype=np.int64),
        }

    def cached_ids(self, kind):
        return self._ids[kind]


class TestWarmFrom:
    def test_preserves_configured_dynamic_cache(self, served):
        """Regression: warm_from used to replace a capped dynamic cache
        with an uncapped static pin of the whole membership."""
        _, _, store = served
        cache = ServingCache.dynamic(10, policy="lru")
        frontend = overload_frontend(store, cache=cache)
        frontend.warm_from(FakeMembership(range(50), range(20)))
        assert frontend.cache is cache  # same object, not replaced
        assert cache.label == "lru"
        assert cache.size() <= 10
        assert cache.table("entity").capacity + cache.table(
            "relation"
        ).capacity == 10

    def test_no_cache_installs_static_membership(self, served):
        _, _, store = served
        frontend = overload_frontend(store, cache=None)
        frontend.warm_from(FakeMembership([1, 2, 3], [0]))
        assert frontend.cache is not None
        assert frontend.cache.label == "static"
        assert frontend.cache.size() == 4

    def test_static_cache_repins_capped(self, served):
        _, _, store = served
        from repro.cache.filtering import HotSet

        cache = ServingCache.static(
            HotSet(
                entities=np.arange(4, dtype=np.int64),
                relations=np.arange(2, dtype=np.int64),
            )
        )
        frontend = overload_frontend(store, cache=cache)
        frontend.warm_from(FakeMembership(range(100, 120), range(50, 60)))
        # Membership replaced, capacity respected (hottest prefix kept).
        assert frontend.cache is cache
        assert cache.size() == 6
        assert bool(cache.lookup("entity", np.asarray([100]))[0])


class TestVersionedStore:
    def test_delegates_to_active_version(self, served):
        _, _, store = served
        vstore = VersionedStore(store)
        assert vstore.num_entities == store.num_entities
        assert vstore.model is store.model
        heads = np.asarray([0, 1])
        rels = np.asarray([0, 0])
        tails = np.asarray([1, 2])
        np.testing.assert_array_equal(
            vstore.score_triples(heads, rels, tails),
            store.score_triples(heads, rels, tails),
        )

    def test_swap_promotes_staging_and_stamps_history(self, served):
        trainer, _, store = served
        vstore = VersionedStore(store, trainer_step=10)
        fresh = snapshot_from_trainer(trainer)
        vstore.stage(fresh, trainer_step=25)
        assert vstore.version == 0 and vstore.active_step == 10
        vstore.swap()
        assert vstore.version == 1
        assert vstore.active_step == 25
        assert vstore.swaps == 1
        assert vstore.history == [(0, 10), (1, 25)]
        assert vstore.model is fresh.model

    def test_swap_without_staged_version_raises(self, served):
        _, _, store = served
        with pytest.raises(RuntimeError, match="staged"):
            VersionedStore(store).swap()

    def test_stage_rejects_geometry_mismatch(self, served):
        _, _, store = served
        from repro.models.base import get_model
        from repro.ps.kvstore import ShardedKVStore

        wrong_model = get_model("transe", 4)
        entity = np.zeros((store.num_entities, 4))
        relation = np.zeros((store.num_relations, 4))
        owners = np.zeros(store.num_entities, dtype=np.int64)
        small = EmbeddingStore(
            wrong_model, ShardedKVStore(entity, relation, owners, 1)
        )
        with pytest.raises(ValueError):
            VersionedStore(store).stage(small, trainer_step=1)

    def test_staleness_tracks_trainer_progress(self, served):
        _, _, store = served
        vstore = VersionedStore(store)
        assert vstore.staleness == 0
        vstore.note_trainer_step(40)
        assert vstore.staleness == 40
        vstore.stage(store, trainer_step=40)
        vstore.swap()
        assert vstore.staleness == 0

    def test_snapshot_is_a_copy(self, served):
        trainer, _, _ = served
        snap = snapshot_from_trainer(trainer)
        live = trainer.server.store.table("entity")
        before = snap.store.table("entity")[0].copy()
        live[0] += 1.0
        try:
            np.testing.assert_array_equal(snap.store.table("entity")[0], before)
        finally:
            live[0] -= 1.0


class TestContinuousDeployment:
    def _frontend(self, served, cache):
        trainer, graph, _ = served
        vstore = VersionedStore(snapshot_from_trainer(trainer))
        frontend = overload_frontend(vstore, cache=cache)
        return trainer, graph, vstore, frontend

    def test_publish_swaps_and_rewarms(self, served):
        trainer, graph, vstore, frontend = self._frontend(
            served, ServingCache.dynamic(32, policy="lru")
        )
        deploy = ContinuousDeployment(vstore, frontend, rewarm=True)
        frontend.run(make_workload(graph, num_queries=100, rate=2_000.0))
        deploy.publish(trainer, step=64)
        assert vstore.version == 1
        assert vstore.active_step == 64
        # Re-warm pre-admitted the trainer's hot membership...
        assert frontend.cache.size() > 0
        assert deploy.warm_traffic.total_bytes > 0
        # ...without replacing the configured cache shape.
        assert frontend.cache.label == "lru"
        report = frontend.report()
        assert report.version_swaps == 1
        assert report.staleness == 0

    def test_publish_without_rewarm_invalidates(self, served):
        trainer, graph, vstore, frontend = self._frontend(
            served, ServingCache.dynamic(32, policy="lru")
        )
        deploy = ContinuousDeployment(vstore, frontend, rewarm=False)
        frontend.run(make_workload(graph, num_queries=100, rate=2_000.0))
        assert frontend.cache.size() > 0
        deploy.publish(trainer, step=64)
        assert frontend.cache.size() == 0  # the naive cold swap
        assert deploy.warm_traffic.total_bytes == 0

    def test_rewarmed_swap_beats_cold_swap(self, served):
        """The cliff: post-swap hit ratio with re-warming vs without."""
        trainer, graph, _ = served
        bundle = types.SimpleNamespace(graph=graph)
        from repro.experiments.serving_scale import _swap_run

        warm_curve, warm_report = _swap_run(trainer, bundle, rewarm=True, seed=0)
        cold_curve, cold_report = _swap_run(trainer, bundle, rewarm=False, seed=0)
        # Identical streams up to the swap (chunk 8)...
        assert warm_curve[:8] == cold_curve[:8]
        # ...then the re-warmed cache holds more of its hit ratio.
        assert warm_curve[8] > cold_curve[8]
        assert warm_report.version_swaps == cold_report.version_swaps == 1

    def test_answers_served_from_the_new_version(self, served):
        trainer, graph, vstore, frontend = self._frontend(served, None)
        deploy = ContinuousDeployment(vstore, frontend, rewarm=True)
        deploy.publish(trainer, step=1)
        fresh = snapshot_from_trainer(trainer)
        query = score_query(0, head=0, relation=0, tail=1)
        frontend.run([query])
        expected = float(
            fresh.score_triples(
                np.asarray([0]), np.asarray([0]), np.asarray([1])
            )[0]
        )
        assert frontend.results[0].answer == expected


# ----------------------------------------------------- frontend edge cases


class TestFrontendEdgeCases:
    def test_arrival_exactly_at_deadline_flushes_first(self, served):
        _, _, store = served
        frontend = ServingFrontend(
            store, batcher=QueryBatcher(max_batch=10, max_wait=5e-3)
        )
        frontend.run(
            [score_query(0, arrival=0.0), score_query(1, arrival=5e-3)]
        )
        # The deadline flush fires before the boundary arrival joins, so
        # each query dispatches in its own batch.
        by_qid = {r.qid: r for r in frontend.results}
        assert by_qid[0].batch_size == 1
        assert by_qid[1].batch_size == 1
        assert by_qid[0].completion <= by_qid[1].completion

    def test_repeated_run_accumulates_state(self, served):
        _, _, store = served
        frontend = ServingFrontend(
            store, batcher=QueryBatcher(max_batch=4, max_wait=1e-3)
        )
        first = frontend.run([score_query(0, arrival=0.0)])
        clock_after_first = frontend.clock.elapsed
        second = frontend.run([score_query(1, arrival=1.0)])
        assert first.num_queries == 1
        assert second.num_queries == 2  # cumulative, like a live server
        assert len(frontend.results) == 2
        assert frontend.clock.elapsed > clock_after_first
        assert second.duration >= 1.0

    def test_empty_stream_drains_cleanly(self, served):
        _, _, store = served
        frontend = ServingFrontend(store)
        report = frontend.run([])
        assert report.num_queries == 0
        assert report.throughput == 0.0
        assert frontend.batcher.deadline() is None

    def test_out_of_order_arrivals_are_sorted_per_run(self, served):
        _, _, store = served
        frontend = ServingFrontend(
            store, batcher=QueryBatcher(max_batch=2, max_wait=1e-3)
        )
        frontend.run(
            [score_query(1, arrival=0.5), score_query(0, arrival=0.0)]
        )
        assert len(frontend.results) == 2
        assert all(r.completion >= r.arrival for r in frontend.results)


# ------------------------------------------------- experiment: serving-scale


class TestServingScaleExperiment:
    def test_jobs_parallelism_is_bit_identical(self):
        """Each load point is hermetic: a process pool must reproduce the
        serial results byte for byte."""
        from repro.experiments.parallel import parallel_map
        from repro.experiments.serving_scale import _serve_point

        tasks = [
            (8_000.0, 0.02, 1, 0, 200, None),
            (32_000.0, 0.02, 1, 0, 200, None),
        ]
        serial = [_serve_point(task) for task in tasks]
        parallel = parallel_map(_serve_point, tasks, jobs=2)
        for (s_rate, s_report, s_retries), (p_rate, p_report, p_retries) in zip(
            serial, parallel
        ):
            assert s_rate == p_rate
            assert s_retries == p_retries
            assert s_report.as_row() == p_report.as_row()
            assert float(s_report.latency_p99).hex() == float(
                p_report.latency_p99
            ).hex()

    def test_serving_scale_smoke(self, served):
        """The CI smoke: one tenant past saturation, one fault window,
        one version swap — shed rate positive, admitted p99 inside SLO."""
        from repro.experiments.serving_scale import FAULT_SPEC, SLO, _shedder

        trainer, graph, _ = served
        vstore = VersionedStore(snapshot_from_trainer(trainer))
        frontend = overload_frontend(
            vstore,
            cache=ServingCache.dynamic(32, policy="lru"),
            admission=AdmissionController.parse("free=8000.0/64"),
            shedder=_shedder(),
            faults=FaultPlan.parse(FAULT_SPEC),
        )
        deploy = ContinuousDeployment(vstore, frontend, rewarm=True)
        log = make_workload(graph, num_queries=600, rate=64_000.0)
        queries = assign_tenants(log.queries, ["free"])
        frontend.run(queries[:300])
        deploy.publish(trainer, step=300)
        report = frontend.run(queries[300:])

        assert report.num_queries == 600
        assert report.shed_rate > 0.0, "past saturation the ladder must shed"
        assert report.latency_p99 <= SLO, (
            f"p99 of admitted queries {report.latency_p99 * 1e3:.2f} ms "
            f"busts the {SLO * 1e3:.0f} ms SLO"
        )
        assert frontend.injector.stats.retries > 0
        assert report.version_swaps == 1
