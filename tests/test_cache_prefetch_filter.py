"""Tests for Algorithms 1 (prefetch) and 2 (filtering)."""

import pytest

from repro.cache.filtering import filter_hot_ids
from repro.cache.prefetch import prefetch
from repro.kg.graph import HEAD, TAIL
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler


@pytest.fixture
def sampler(small_graph):
    neg = NegativeSampler(small_graph.num_entities, num_negatives=4, seed=0)
    return EpochSampler(small_graph, 16, neg, seed=0)


class TestPrefetch:
    def test_batch_count(self, sampler):
        result = prefetch(sampler, 5)
        assert len(result.batches) == 5

    def test_counts_match_batches(self, sampler):
        result = prefetch(sampler, 3)
        expected_ent = 0
        expected_rel = 0
        for batch in result.batches:
            expected_ent += 2 * batch.size + batch.neg_entities.size
            expected_rel += batch.size * (1 + batch.num_negatives)
        assert result.total_entity_accesses == expected_ent
        assert result.total_relation_accesses == expected_rel

    def test_every_touched_entity_counted(self, sampler):
        result = prefetch(sampler, 2)
        touched = set()
        for batch in result.batches:
            touched.update(batch.positives[:, HEAD].tolist())
            touched.update(batch.positives[:, TAIL].tolist())
            touched.update(batch.neg_entities.ravel().tolist())
        assert set(result.entity_counts) == touched

    def test_invalid_iterations(self, sampler):
        with pytest.raises(ValueError):
            prefetch(sampler, 0)


class TestFilterHotIds:
    def test_respects_capacity(self):
        ents = {i: 10 - i for i in range(10)}
        rels = {i: 100 - i for i in range(10)}
        hot = filter_hot_ids(ents, rels, capacity=8, entity_ratio=0.25)
        assert hot.size <= 8
        assert len(hot.entities) == 2
        assert len(hot.relations) == 6

    def test_hottest_first(self):
        ents = {1: 5, 2: 50, 3: 500}
        rels = {7: 1}
        hot = filter_hot_ids(ents, rels, capacity=4, entity_ratio=0.5)
        # Two entity slots plus one spare reassigned from the short
        # relation side -> top-3 entities, hottest first.
        assert list(hot.entities) == [3, 2, 1]

    def test_deterministic_tie_break(self):
        ents = {5: 7, 3: 7, 9: 7}
        hot = filter_hot_ids(ents, {}, capacity=4, entity_ratio=0.5)
        assert list(hot.entities) == [3, 5, 9]  # ties by ascending id

    def test_spare_slots_reassigned_to_entities(self):
        """Small relation vocabularies must not waste cache slots."""
        ents = {i: 100 - i for i in range(50)}
        rels = {0: 10, 1: 5}  # only 2 relations exist
        hot = filter_hot_ids(ents, rels, capacity=20, entity_ratio=0.25)
        assert len(hot.relations) == 2
        assert len(hot.entities) == 18
        assert hot.size == 20

    def test_spare_slots_reassigned_to_relations(self):
        ents = {0: 10}
        rels = {i: 100 - i for i in range(50)}
        hot = filter_hot_ids(ents, rels, capacity=20, entity_ratio=0.5)
        assert len(hot.entities) == 1
        assert len(hot.relations) == 19

    def test_frequency_only_mode(self):
        """entity_ratio=None (HET-KG-N) ranks across both kinds purely by
        frequency."""
        ents = {1: 100, 2: 1}
        rels = {1: 50, 2: 2}
        hot = filter_hot_ids(ents, rels, capacity=2, entity_ratio=None)
        assert list(hot.entities) == [1]
        assert list(hot.relations) == [1]

    def test_frequency_only_relations_can_dominate(self):
        ents = {i: 1 for i in range(10)}
        rels = {i: 1000 for i in range(10)}
        hot = filter_hot_ids(ents, rels, capacity=5, entity_ratio=None)
        assert len(hot.relations) == 5
        assert len(hot.entities) == 0

    def test_empty_counts(self):
        hot = filter_hot_ids({}, {}, capacity=4)
        assert hot.size == 0

    def test_entity_ratio_extremes(self):
        ents = {i: 10 for i in range(10)}
        rels = {i: 10 for i in range(10)}
        all_rel = filter_hot_ids(ents, rels, capacity=4, entity_ratio=0.0)
        assert len(all_rel.entities) == 0 and len(all_rel.relations) == 4
        all_ent = filter_hot_ids(ents, rels, capacity=4, entity_ratio=1.0)
        assert len(all_ent.entities) == 4 and len(all_ent.relations) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            filter_hot_ids({}, {}, capacity=0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            filter_hot_ids({}, {}, capacity=4, entity_ratio=1.5)
