"""Tests for repro.kg.transforms."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.kg.transforms import (
    add_inverse_relations,
    deduplicate,
    k_core,
    relabel_by_degree,
    remove_self_loops,
    subsample_triples,
)


class TestInverseRelations:
    def test_doubles_triples_and_relations(self, tiny_graph):
        out = add_inverse_relations(tiny_graph)
        assert out.num_triples == 2 * tiny_graph.num_triples
        assert out.num_relations == 2 * tiny_graph.num_relations

    def test_inverse_is_reversed(self, tiny_graph):
        out = add_inverse_relations(tiny_graph)
        n = tiny_graph.num_triples
        for i in range(n):
            h, r, t = tiny_graph.triples[i]
            ih, ir, it = out.triples[n + i]
            assert (ih, it) == (t, h)
            assert ir == r + tiny_graph.num_relations

    def test_labels_suffixed(self):
        g = KnowledgeGraph.from_labeled_triples([("a", "likes", "b")])
        out = add_inverse_relations(g)
        assert out.relation_labels == ["likes", "likes_inv"]

    def test_original_untouched(self, tiny_graph):
        before = tiny_graph.triples.copy()
        add_inverse_relations(tiny_graph)
        np.testing.assert_array_equal(before, tiny_graph.triples)


class TestSelfLoopsAndDedup:
    def test_remove_self_loops(self):
        g = KnowledgeGraph([(0, 0, 0), (0, 0, 1), (1, 1, 1)])
        out = remove_self_loops(g)
        assert out.num_triples == 1
        assert tuple(out.triples[0]) == (0, 0, 1)

    def test_deduplicate(self):
        g = KnowledgeGraph([(0, 0, 1), (0, 0, 1), (1, 0, 2), (0, 0, 1)])
        out = deduplicate(g)
        assert out.num_triples == 2

    def test_deduplicate_keeps_order(self):
        g = KnowledgeGraph([(1, 0, 2), (0, 0, 1), (1, 0, 2)])
        out = deduplicate(g)
        assert tuple(out.triples[0]) == (1, 0, 2)
        assert tuple(out.triples[1]) == (0, 0, 1)

    def test_dedup_empty(self):
        g = KnowledgeGraph(np.empty((0, 3), dtype=np.int64))
        assert deduplicate(g).num_triples == 0


class TestRelabelByDegree:
    def test_id_zero_is_hottest(self, small_graph):
        out, mapping = relabel_by_degree(small_graph)
        degrees = out.entity_degrees()
        assert degrees[0] == degrees.max()
        # Degrees must be non-increasing in the new id order.
        assert np.all(np.diff(degrees) <= 0)

    def test_structure_preserved(self, tiny_graph):
        out, mapping = relabel_by_degree(tiny_graph)
        assert out.num_triples == tiny_graph.num_triples
        # Triple-by-triple, the mapping must connect old to new ids.
        for old, new in zip(tiny_graph.triples, out.triples):
            assert mapping[old[HEAD]] == new[HEAD]
            assert mapping[old[TAIL]] == new[TAIL]
            assert old[REL] == new[REL]

    def test_mapping_is_permutation(self, small_graph):
        _, mapping = relabel_by_degree(small_graph)
        assert sorted(mapping.tolist()) == list(range(small_graph.num_entities))


class TestSubsample:
    def test_fraction(self, small_graph):
        out = subsample_triples(small_graph, 0.25, seed=0)
        assert out.num_triples == round(0.25 * small_graph.num_triples)
        assert out.num_entities == small_graph.num_entities

    def test_deterministic(self, small_graph):
        a = subsample_triples(small_graph, 0.5, seed=3)
        b = subsample_triples(small_graph, 0.5, seed=3)
        assert np.array_equal(a.triples, b.triples)

    def test_subset_of_original(self, small_graph):
        out = subsample_triples(small_graph, 0.1, seed=0)
        assert out.triple_set() <= small_graph.triple_set()

    def test_invalid_fraction(self, small_graph):
        with pytest.raises(ValueError):
            subsample_triples(small_graph, 1.5)


class TestKCore:
    def test_min_degree_holds(self, small_graph):
        out = k_core(small_graph, 4)
        degrees = out.entity_degrees()
        touched = degrees[degrees > 0]
        assert np.all(touched >= 4)

    def test_chain_collapses(self):
        """A path graph has no 2-core beyond its cycle-free structure."""
        chain = [(i, 0, i + 1) for i in range(5)]
        g = KnowledgeGraph(chain)
        out = k_core(g, 2)
        assert out.num_triples == 0

    def test_cycle_survives_2core(self):
        cycle = [(i, 0, (i + 1) % 5) for i in range(5)]
        g = KnowledgeGraph(cycle)
        out = k_core(g, 2)
        assert out.num_triples == 5

    def test_k1_is_identity(self, tiny_graph):
        out = k_core(tiny_graph, 1)
        assert out.num_triples == tiny_graph.num_triples

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            k_core(tiny_graph, 0)
