"""Tests for repro.core.config."""

import pytest

from repro.core.config import TrainingConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = TrainingConfig()
        assert cfg.optimizer == "adagrad"
        assert cfg.lr == 0.1
        assert cfg.num_machines == 4
        assert cfg.partitioner == "metis"
        assert cfg.wire_dim == 400

    def test_uses_cache(self):
        assert not TrainingConfig().uses_cache
        assert TrainingConfig(cache_strategy="cps").uses_cache
        assert TrainingConfig(cache_strategy="dps").uses_cache


class TestCostDim:
    def test_wire_dim_used(self):
        cfg = TrainingConfig(dim=16, wire_dim=400)
        assert cfg.cost_dim == 400
        assert cfg.byte_scale == 25.0

    def test_none_falls_back_to_dim(self):
        cfg = TrainingConfig(dim=16, wire_dim=None)
        assert cfg.cost_dim == 16
        assert cfg.byte_scale == 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("dim", 0),
            ("lr", 0),
            ("batch_size", 0),
            ("num_negatives", -1),
            ("epochs", 0),
            ("num_machines", 0),
            ("cache_capacity", 0),
            ("sync_period", 0),
            ("dps_window", 0),
            ("margin", 0),
            ("wire_dim", 0),
            ("entity_ratio", 1.5),
        ],
    )
    def test_rejects_bad_numeric(self, field, value):
        with pytest.raises(ValueError):
            TrainingConfig(**{field: value})

    @pytest.mark.parametrize(
        "field,value",
        [
            ("loss", "mse"),
            ("optimizer", "adam"),
            ("negative_strategy", "nscaching"),
            ("partitioner", "hash"),
            ("cache_strategy", "lru"),
        ],
    )
    def test_rejects_bad_choice(self, field, value):
        with pytest.raises(ValueError):
            TrainingConfig(**{field: value})

    def test_entity_ratio_none_allowed(self):
        assert TrainingConfig(entity_ratio=None).entity_ratio is None


class TestOverrides:
    def test_with_overrides_copies(self):
        base = TrainingConfig()
        other = base.with_overrides(epochs=99)
        assert other.epochs == 99
        assert base.epochs != 99

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            TrainingConfig().with_overrides(lr=-1)
