"""Tests for per-iteration telemetry."""

import pytest

from repro.core.config import TrainingConfig
from repro.core.telemetry import Telemetry
from repro.core.trainer import HETKGTrainer


def quick_config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        dps_window=4, sync_period=4, seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture
def recorded(small_split):
    telemetry = Telemetry()
    trainer = HETKGTrainer(quick_config())
    result = trainer.train(small_split.train, telemetry=telemetry)
    return telemetry, trainer, result


class TestRecording:
    def test_one_record_per_step(self, recorded):
        telemetry, trainer, _ = recorded
        total_steps = sum(w.iterations for w in trainer.workers)
        assert len(telemetry) == total_steps

    def test_per_worker_view(self, recorded):
        telemetry, trainer, _ = recorded
        for worker in trainer.workers:
            records = telemetry.for_worker(worker.machine)
            assert len(records) == worker.iterations
            iters = [r.iteration for r in records]
            assert iters == sorted(iters)

    def test_sim_time_monotone_per_worker(self, recorded):
        telemetry, trainer, _ = recorded
        for worker in trainer.workers:
            times = [r.sim_time for r in telemetry.for_worker(worker.machine)]
            assert times == sorted(times)

    def test_cache_stats_consistent(self, recorded):
        telemetry, trainer, _ = recorded
        hits = sum(r.cache_hits for r in telemetry.records)
        misses = sum(r.cache_misses for r in telemetry.records)
        measured = hits / (hits + misses)
        # Worker-level ratio counts only in-step accesses too, so the two
        # views must agree closely.
        summary = telemetry.summary()
        assert summary["hit_ratio"] == pytest.approx(measured)
        assert 0.0 < measured <= 1.0

    def test_summary_fields(self, recorded):
        telemetry, _, _ = recorded
        s = telemetry.summary()
        assert s["steps"] == len(telemetry)
        assert s["mean_loss"] > 0
        assert s["remote_bytes_per_step"] > 0

    def test_empty_summary(self):
        assert Telemetry().summary() == {"steps": 0}

    def test_uncached_worker_records_zero_cache_stats(self, small_split):
        telemetry = Telemetry()
        trainer = HETKGTrainer(quick_config(cache_strategy="none"))
        trainer.train(small_split.train, telemetry=telemetry)
        assert all(r.cache_hits == 0 for r in telemetry.records)
        assert telemetry.summary()["hit_ratio"] == 0.0

    def test_hit_ratio_method_matches_summary(self, recorded):
        telemetry, _, _ = recorded
        assert telemetry.hit_ratio() == pytest.approx(
            telemetry.summary()["hit_ratio"]
        )
        assert 0.0 < telemetry.hit_ratio() <= 1.0

    def test_hit_ratio_empty_is_zero(self):
        assert Telemetry().hit_ratio() == 0.0


class TestCsvRoundtrip:
    def test_roundtrip(self, recorded, tmp_path):
        telemetry, _, _ = recorded
        path = tmp_path / "telemetry.csv"
        telemetry.to_csv(path)
        loaded = Telemetry.from_csv(path)
        assert len(loaded) == len(telemetry)
        assert loaded.records[0] == telemetry.records[0]
        assert loaded.total_remote_bytes() == telemetry.total_remote_bytes()

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        Telemetry().to_csv(path)
        assert len(Telemetry.from_csv(path)) == 0


class TestExportCsvAppend:
    def test_append_accumulates_with_single_header(self, recorded, tmp_path):
        telemetry, _, _ = recorded
        path = tmp_path / "chunks.csv"
        half = len(telemetry.records) // 2
        first = Telemetry(records=telemetry.records[:half])
        second = Telemetry(records=telemetry.records[half:])
        first.export_csv(path, append=True)
        second.export_csv(path, append=True)
        loaded = Telemetry.from_csv(path)
        assert len(loaded) == len(telemetry)
        assert loaded.records == telemetry.records

    def test_append_with_clear_bounds_memory(self, recorded, tmp_path):
        telemetry, _, _ = recorded
        path = tmp_path / "flush.csv"
        buffer = Telemetry(records=list(telemetry.records))
        total = len(buffer)
        buffer.export_csv(path, append=True, clear=True)
        assert len(buffer) == 0
        assert len(Telemetry.from_csv(path)) == total

    def test_multi_flush_roundtrip_single_header(self, recorded, tmp_path):
        """Three append+clear flushes must produce one header, all rows,
        and a faithful ``from_csv`` round-trip."""
        telemetry, _, _ = recorded
        path = tmp_path / "multiflush.csv"
        originals = list(telemetry.records)
        third = max(1, len(originals) // 3)
        buffer = Telemetry()
        flushed = 0
        for start in range(0, len(originals), third):
            buffer.records.extend(originals[start:start + third])
            buffer.export_csv(path, append=True, clear=True)
            assert len(buffer) == 0  # cleared after every flush
            flushed += 1
        assert flushed >= 3
        lines = path.read_text().strip().splitlines()
        header = lines[0]
        assert sum(1 for line in lines if line == header) == 1
        assert len(lines) == 1 + len(originals)
        loaded = Telemetry.from_csv(path)
        assert loaded.records == originals

    def test_plain_export_truncates(self, recorded, tmp_path):
        telemetry, _, _ = recorded
        path = tmp_path / "truncate.csv"
        telemetry.export_csv(path, append=True)
        telemetry.export_csv(path)  # overwrite, not double up
        assert len(Telemetry.from_csv(path)) == len(telemetry)
