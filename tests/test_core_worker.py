"""Tests for the per-machine Worker loop."""

import numpy as np
import pytest

from repro.cache.strategies import DynamicPartialStale
from repro.cache.sync import HotEmbeddingCache
from repro.core.worker import Worker
from repro.models import TransE
from repro.models.losses import MarginRankingLoss
from repro.optim.adagrad import SparseAdagrad
from repro.partition.random_partition import RandomPartitioner
from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import ComputeModel, NetworkModel
from repro.ps.server import ParameterServer
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler


@pytest.fixture
def world(small_graph):
    model = TransE(8)
    partition = RandomPartitioner(seed=0).partition(small_graph, 2)
    store = ShardedKVStore(
        model.init_entities(small_graph.num_entities, 0),
        model.init_relations(small_graph.num_relations, 0),
        partition.entity_part,
        2,
    )
    server = ParameterServer(store, SparseAdagrad(lr=0.1))
    network = NetworkModel()
    compute = ComputeModel()
    return small_graph, model, server, network, compute


def make_worker(world, cached: bool, machine=0):
    graph, model, server, network, compute = world
    neg = NegativeSampler(graph.num_entities, 4, seed=machine)
    sampler = EpochSampler(graph, 16, neg, seed=machine)
    strategy = cache = None
    if cached:
        strategy = DynamicPartialStale(capacity=64, window=4)
        cache = HotEmbeddingCache(
            server, machine, 64, 64, model.entity_dim, model.relation_dim,
            sync_period=4, local_lr=0.1,
        )
    return Worker(
        machine, sampler, server, model, MarginRankingLoss(), network, compute,
        strategy=strategy, cache=cache,
    )


class TestWorkerUncached:
    def test_step_returns_loss_and_advances_clock(self, world):
        worker = make_worker(world, cached=False)
        loss = worker.step()
        assert loss >= 0.0
        assert worker.clock.elapsed > 0
        assert worker.clock.category("compute") > 0
        assert worker.clock.category("communication") > 0
        assert worker.iterations == 1

    def test_step_updates_server_state(self, world):
        graph, model, server, *_ = world
        before = server.store.table("entity").copy()
        make_worker(world, cached=False).step()
        assert not np.array_equal(before, server.store.table("entity"))

    def test_start_noop_without_cache(self, world):
        worker = make_worker(world, cached=False)
        worker.start()
        assert worker.clock.elapsed == 0.0


class TestWorkerCached:
    def test_start_installs_hot_set(self, world):
        worker = make_worker(world, cached=True)
        worker.start()
        assert len(worker.cache.cached_ids("entity")) > 0
        assert worker.clock.elapsed > 0  # install traffic + prefetch overhead

    def test_start_idempotent(self, world):
        worker = make_worker(world, cached=True)
        worker.start()
        elapsed = worker.clock.elapsed
        worker.start()
        assert worker.clock.elapsed == elapsed

    def test_steps_hit_cache(self, world):
        worker = make_worker(world, cached=True)
        for _ in range(6):
            worker.step()
        assert worker.cache_hit_ratio() > 0.0

    def test_hit_ratio_zero_without_cache(self, world):
        worker = make_worker(world, cached=False)
        worker.step()
        assert worker.cache_hit_ratio() == 0.0

    def test_mismatched_strategy_cache_rejected(self, world):
        graph, model, server, network, compute = world
        neg = NegativeSampler(graph.num_entities, 4, seed=0)
        sampler = EpochSampler(graph, 16, neg, seed=0)
        with pytest.raises(ValueError, match="together"):
            Worker(
                0, sampler, server, model, MarginRankingLoss(), network, compute,
                strategy=DynamicPartialStale(capacity=8), cache=None,
            )

    def test_cached_worker_communicates_less_per_step(self, world):
        """With a cache big enough to hold the working set and a long sync
        period, the cached worker's steady-state pull traffic must drop
        below the uncached worker's."""
        graph, model, server, network, compute = world
        neg = NegativeSampler(graph.num_entities, 4, seed=0)
        sampler = EpochSampler(graph, 16, neg, seed=0)
        strategy = DynamicPartialStale(capacity=4096, window=8)
        cache = HotEmbeddingCache(
            server, 0, 4096, 4096, model.entity_dim, model.relation_dim,
            sync_period=64, local_lr=0.1,
        )
        cached = Worker(
            0, sampler, server, model, MarginRankingLoss(), network, compute,
            strategy=strategy, cache=cache,
        )
        plain = make_worker(world, cached=False, machine=0)
        cached.start()
        warm_start = None
        for i in range(8):
            cached.step()
            plain.step()
            if i == 3:
                warm_start = (
                    cached.clock.category("communication"),
                    plain.clock.category("communication"),
                )
        cached_delta = cached.clock.category("communication") - warm_start[0]
        plain_delta = plain.clock.category("communication") - warm_start[1]
        assert cached_delta < plain_delta

    def test_cost_dim_scales_compute(self, world):
        a = make_worker(world, cached=False)
        b = make_worker(world, cached=False)
        b.cost_dim = a.cost_dim * 10
        a.step()
        b.step()
        assert b.clock.category("compute") > 5 * a.clock.category("compute")
