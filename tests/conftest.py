"""Shared fixtures: small deterministic graphs and cluster components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.datasets import generate_dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.splits import split_triples
from repro.utils.rng import make_rng


@pytest.fixture
def rng():
    return make_rng(42)


@pytest.fixture
def tiny_graph() -> KnowledgeGraph:
    """A hand-written 6-entity, 2-relation graph."""
    triples = [
        (0, 0, 1),
        (1, 0, 2),
        (2, 1, 3),
        (3, 0, 4),
        (4, 1, 5),
        (5, 0, 0),
        (0, 1, 3),
        (2, 0, 5),
    ]
    return KnowledgeGraph(np.asarray(triples), num_entities=6, num_relations=2)


@pytest.fixture(scope="session")
def small_graph() -> KnowledgeGraph:
    """A generated ~180-entity graph shared across the session (read-only)."""
    return generate_dataset("fb15k", scale=0.012, seed=7)


@pytest.fixture(scope="session")
def small_split(small_graph):
    return split_triples(small_graph, seed=7)
