"""Tests for repro.kg.analytics."""

import numpy as np
import pytest

from repro.kg.analytics import (
    degree_histogram,
    hot_set_coverage,
    powerlaw_alpha_mle,
    summarize,
)


class TestPowerlawMLE:
    def test_recovers_known_exponent(self, rng):
        """Sampling from a discrete power law and fitting must recover the
        exponent within tolerance."""
        alpha_true = 2.5
        # Inverse-CDF sampling of a zeta-ish distribution via continuous
        # approximation: x = x_min * (1 - u)^(-1/(alpha-1)).  The floor()
        # discretisation biases the head, so fit from x_min = 5 where the
        # discrete MLE's -0.5 correction is accurate.
        u = rng.random(50_000)
        samples = np.floor(1.0 * (1 - u) ** (-1.0 / (alpha_true - 1)))
        fitted = powerlaw_alpha_mle(samples, x_min=5)
        assert fitted == pytest.approx(alpha_true, abs=0.3)

    def test_nan_for_tiny_samples(self):
        assert np.isnan(powerlaw_alpha_mle(np.array([1.0])))

    def test_x_min_filters(self):
        values = np.array([1, 1, 1, 5, 10, 20])
        a_all = powerlaw_alpha_mle(values, x_min=1)
        a_tail = powerlaw_alpha_mle(values, x_min=5)
        assert a_all != a_tail

    def test_invalid_x_min(self):
        with pytest.raises(ValueError):
            powerlaw_alpha_mle(np.array([1, 2, 3]), x_min=0)


class TestDegreeHistogram:
    def test_counts_sum_to_entities(self, small_graph):
        values, counts = degree_histogram(small_graph)
        assert counts.sum() == small_graph.num_entities

    def test_weighted_sum_is_double_triples(self, small_graph):
        values, counts = degree_histogram(small_graph)
        assert (values * counts).sum() == 2 * small_graph.num_triples


class TestSummarize:
    def test_summary_fields(self, small_graph):
        s = summarize(small_graph)
        assert s.num_entities == small_graph.num_entities
        assert s.mean_degree == pytest.approx(
            2 * small_graph.num_triples / small_graph.num_entities
        )
        assert s.max_degree >= s.mean_degree
        assert 0 <= s.degree_gini <= 1
        assert 0 <= s.relation_top10_share <= 1

    def test_generated_graph_is_heavy_tailed(self, small_graph):
        """The generator must produce a power-law-ish degree tail
        (alpha in the 1.5-4 range typical for real KGs)."""
        s = summarize(small_graph)
        assert 1.2 < s.degree_alpha < 5.0

    def test_as_row_length(self, small_graph):
        assert len(summarize(small_graph).as_row()) == 9


class TestHotSetCoverage:
    def test_monotone_in_capacity(self):
        counts = np.array([100, 50, 10, 5, 1])
        cov = hot_set_coverage(counts, (1, 2, 5))
        shares = [s for _, s in cov]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0)

    def test_zero_capacity(self):
        cov = hot_set_coverage(np.array([5, 5]), (0,))
        assert cov[0][1] == 0.0

    def test_skew_means_small_cache_covers_much(self, small_graph):
        """On the generated graphs, caching 10% of entities covers far
        more than 10% of accesses — the premise of the whole paper."""
        degrees = small_graph.entity_degrees()
        k = max(1, small_graph.num_entities // 10)
        (_, share), = hot_set_coverage(degrees, (k,))
        assert share > 0.2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            hot_set_coverage(np.array([1.0]), (-1,))

    def test_empty_counts(self):
        assert hot_set_coverage(np.array([]), (3,)) == [(3, 0.0)]
