"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cache.filtering import filter_hot_ids
from repro.cache.policies import FIFOCache, LFUCache, LRUCache, replay_trace
from repro.cache.table import CacheTable
from repro.kg.graph import KnowledgeGraph
from repro.kg.stats import gini, top_fraction_share
from repro.models.losses import LogisticLoss, MarginRankingLoss
from repro.optim.base import coalesce
from repro.partition.metis import MetisPartitioner
from repro.partition.quality import cut_fraction
from repro.utils.simclock import SimClock

ids_strategy = st.lists(st.integers(0, 50), min_size=1, max_size=40)


class TestCoalesceProperties:
    @given(ids=ids_strategy, seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_total_gradient_mass_preserved(self, ids, seed):
        rng = np.random.default_rng(seed)
        grads = rng.normal(size=(len(ids), 3))
        unique, summed = coalesce(np.asarray(ids), grads)
        np.testing.assert_allclose(summed.sum(axis=0), grads.sum(axis=0), atol=1e-9)

    @given(ids=ids_strategy)
    @settings(max_examples=50, deadline=None)
    def test_unique_sorted_output(self, ids):
        unique, _ = coalesce(np.asarray(ids), np.ones((len(ids), 1)))
        assert np.array_equal(unique, np.unique(ids))


class TestCacheTableProperties:
    @given(
        ids=st.lists(st.integers(0, 1000), min_size=0, max_size=20, unique=True),
        capacity=st.integers(20, 40),
    )
    @settings(max_examples=50, deadline=None)
    def test_install_membership_exact(self, ids, capacity):
        table = CacheTable(capacity, 2)
        rows = np.arange(2 * len(ids), dtype=np.float64).reshape(len(ids), 2)
        table.install(np.asarray(ids, dtype=np.int64), rows)
        assert len(table) == len(ids)
        for i in ids:
            assert i in table
        if ids:
            np.testing.assert_array_equal(
                table.get(np.asarray(ids, dtype=np.int64)), rows
            )

    @given(
        queries=st.lists(st.integers(0, 30), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, queries):
        table = CacheTable(10, 1)
        table.install(np.arange(10), np.zeros((10, 1)))
        table.partition_hits(np.asarray(queries))
        assert table.stats.accesses == len(queries)
        expected_hits = sum(1 for q in queries if q < 10)
        assert table.stats.hits == expected_hits


class TestEvictionPolicyProperties:
    @given(
        trace=st.lists(st.integers(0, 30), min_size=1, max_size=200),
        capacity=st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, trace, capacity):
        for cls in (FIFOCache, LRUCache, LFUCache):
            cache = cls(capacity)
            replay_trace(cache, trace)
            assert len(cache) <= capacity

    @given(trace=st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_hit_ratio_one_when_capacity_covers_universe(self, trace):
        cache = LRUCache(6)
        ratio = replay_trace(cache, trace)
        misses = len(set(trace))
        assert cache.misses == misses  # each key misses exactly once

    @given(
        trace=st.lists(st.integers(0, 50), min_size=1, max_size=100),
        capacity=st.integers(1, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_hit_ratio_bounds(self, trace, capacity):
        for cls in (FIFOCache, LRUCache, LFUCache):
            assert 0.0 <= replay_trace(cls(capacity), trace) <= 1.0


class TestFilterProperties:
    @given(
        n_ent=st.integers(1, 30),
        n_rel=st.integers(1, 30),
        capacity=st.integers(1, 40),
        ratio=st.one_of(st.none(), st.floats(0.0, 1.0)),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_size_never_exceeds_capacity(self, n_ent, n_rel, capacity, ratio, seed):
        rng = np.random.default_rng(seed)
        ents = {i: int(rng.integers(1, 100)) for i in range(n_ent)}
        rels = {i: int(rng.integers(1, 100)) for i in range(n_rel)}
        hot = filter_hot_ids(ents, rels, capacity, ratio)
        assert hot.size <= capacity
        assert len(np.unique(hot.entities)) == len(hot.entities)
        assert len(np.unique(hot.relations)) == len(hot.relations)

    @given(capacity=st.integers(1, 10), seed=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_selected_are_hottest(self, capacity, seed):
        rng = np.random.default_rng(seed)
        counts = {i: int(c) for i, c in enumerate(rng.integers(1, 1000, size=30))}
        hot = filter_hot_ids(counts, {}, capacity, entity_ratio=1.0)
        chosen = set(hot.entities.tolist())
        min_chosen = min(counts[i] for i in chosen)
        max_rejected = max(
            (c for i, c in counts.items() if i not in chosen), default=0
        )
        assert min_chosen >= max_rejected or len(chosen) == len(counts)


class TestPartitionProperties:
    @given(
        n=st.integers(8, 40),
        extra=st.integers(0, 60),
        k=st.integers(1, 4),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_metis_is_a_valid_partition(self, n, extra, k, seed):
        rng = np.random.default_rng(seed)
        chain = [(i, 0, (i + 1) % n) for i in range(n)]
        rand = [
            (int(rng.integers(n)), 0, int(rng.integers(n))) for _ in range(extra)
        ]
        rand = [(h, r, t) for h, r, t in rand if h != t]
        g = KnowledgeGraph(np.asarray(chain + rand), num_entities=n, num_relations=1)
        part = MetisPartitioner(seed=seed).partition(g, k)
        # Every entity assigned exactly once to a valid part.
        assert len(part.entity_part) == n
        assert part.entity_part.min() >= 0
        assert part.entity_part.max() < k
        # Triples follow heads.
        np.testing.assert_array_equal(
            part.triple_part, part.entity_part[g.triples[:, 0]]
        )
        assert 0.0 <= cut_fraction(g, part) <= 1.0


class TestLossProperties:
    @given(
        seed=st.integers(0, 100),
        batch=st.integers(1, 8),
        n_neg=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_losses_non_negative(self, seed, batch, n_neg):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=batch)
        neg = rng.normal(size=(batch, n_neg))
        for loss in (MarginRankingLoss(1.0), LogisticLoss()):
            result = loss.compute(pos, neg)
            assert result.value >= 0.0
            assert np.all(np.isfinite(result.grad_pos))
            assert np.all(np.isfinite(result.grad_neg))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_ranking_grad_signs(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.normal(size=4)
        neg = rng.normal(size=(4, 3))
        result = MarginRankingLoss(1.0).compute(pos, neg)
        assert np.all(result.grad_pos <= 0)
        assert np.all(result.grad_neg >= 0)


class TestStatsProperties:
    @given(
        counts=arrays(
            np.int64, st.integers(1, 50), elements=st.integers(0, 10_000)
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_gini_in_unit_interval(self, counts):
        assert 0.0 <= gini(counts) <= 1.0

    @given(
        counts=arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 1000)),
        fraction=st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_top_share_monotone_in_fraction(self, counts, fraction):
        smaller = top_fraction_share(counts, fraction / 2)
        larger = top_fraction_share(counts, fraction)
        assert smaller <= larger + 1e-12


class TestSimClockProperties:
    @given(steps=st.lists(st.floats(0, 100), min_size=0, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_elapsed_is_sum_of_categories(self, steps):
        clock = SimClock()
        for i, s in enumerate(steps):
            clock.advance(s, "a" if i % 2 else "b")
        assert clock.elapsed == pytest.approx(sum(clock.by_category.values()))
        assert clock.elapsed == pytest.approx(sum(steps))


class TestNegativeSamplerProperties:
    @given(
        batch=st.integers(1, 40),
        n_neg=st.integers(1, 8),
        chunk=st.integers(1, 16),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_unique_negatives_bounded(self, batch, n_neg, chunk, seed):
        """Chunked corruption draws at most ceil(b/chunk) * n_neg distinct
        negative entities."""
        from repro.sampling.negative import NegativeSampler

        rng = np.random.default_rng(seed)
        positives = np.stack(
            [
                rng.integers(0, 100, size=batch),
                rng.integers(0, 5, size=batch),
                rng.integers(0, 100, size=batch),
            ],
            axis=1,
        )
        sampler = NegativeSampler(
            100, n_neg, strategy="chunked", chunk_size=chunk, seed=seed
        )
        out = sampler.corrupt(positives)
        chunks = -(-batch // chunk)
        assert len(np.unique(out.neg_entities)) <= chunks * n_neg

    @given(batch=st.integers(1, 30), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_batch_shapes_invariant(self, batch, seed):
        from repro.sampling.negative import NegativeSampler

        rng = np.random.default_rng(seed)
        positives = np.stack(
            [
                rng.integers(0, 50, size=batch),
                rng.integers(0, 3, size=batch),
                rng.integers(0, 50, size=batch),
            ],
            axis=1,
        )
        out = NegativeSampler(50, 4, seed=seed).corrupt(positives)
        assert out.neg_entities.shape == (batch, 4)
        assert out.unique_entities().max() < 50


class TestQuaternionAlgebra:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_hamilton_norm_multiplicative(self, seed):
        """|p (x) q| = |p| |q| per component — the quaternion norm is
        multiplicative."""
        from repro.models.quate import hamilton

        rng = np.random.default_rng(seed)
        p = tuple(rng.normal(size=(2, 3)) for _ in range(4))
        q = tuple(rng.normal(size=(2, 3)) for _ in range(4))
        prod = hamilton(p, q)
        norm = lambda x: sum(c**2 for c in x)
        np.testing.assert_allclose(norm(prod), norm(p) * norm(q), rtol=1e-9)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_hamilton_associative(self, seed):
        from repro.models.quate import hamilton

        rng = np.random.default_rng(seed)
        p, q, s = (
            tuple(rng.normal(size=(1, 2)) for _ in range(4)) for _ in range(3)
        )
        left = hamilton(hamilton(p, q), s)
        right = hamilton(p, hamilton(q, s))
        for a, b in zip(left, right):
            np.testing.assert_allclose(a, b, rtol=1e-9)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_conjugate_reverses_product(self, seed):
        """(p (x) q)* = q* (x) p*."""
        from repro.models.quate import conjugate, hamilton

        rng = np.random.default_rng(seed)
        p = tuple(rng.normal(size=(1, 2)) for _ in range(4))
        q = tuple(rng.normal(size=(1, 2)) for _ in range(4))
        left = conjugate(hamilton(p, q))
        right = hamilton(conjugate(q), conjugate(p))
        for a, b in zip(left, right):
            np.testing.assert_allclose(a, b, rtol=1e-9)


class TestAdagradProperties:
    @given(
        steps=st.integers(1, 20),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_accumulator_monotone(self, steps, seed):
        from repro.optim.adagrad import SparseAdagrad

        rng = np.random.default_rng(seed)
        opt = SparseAdagrad(lr=0.1)
        table = np.zeros((4, 2))
        prev = np.zeros_like(table)
        for _ in range(steps):
            ids = rng.integers(0, 4, size=3)
            grads = rng.normal(size=(3, 2))
            opt.update("t", table, ids, grads)
            acc = opt._accumulators["t"]
            assert np.all(acc >= prev - 1e-15)
            prev = acc.copy()

    @given(seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_step_magnitude_bounded_by_lr(self, seed):
        """Each AdaGrad coordinate step is at most lr (plus eps slack)."""
        from repro.optim.adagrad import SparseAdagrad

        rng = np.random.default_rng(seed)
        opt = SparseAdagrad(lr=0.1)
        table = np.zeros((2, 3))
        for _ in range(5):
            before = table.copy()
            ids = np.array([0, 1])
            grads = rng.normal(size=(2, 3)) * 10
            opt.update("t", table, ids, grads)
            assert np.all(np.abs(table - before) <= 0.1 + 1e-9)
