"""Cross-validation against independent implementations.

networkx and scipy are mature references for graph algorithms and sparse
algebra; these tests check our from-scratch implementations against them
on randomized inputs.
"""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.kg.datasets import DatasetSpec, generate_dataset
from repro.kg.graph import HEAD, TAIL, KnowledgeGraph
from repro.kg.transforms import k_core
from repro.partition.quality import edge_cut
from repro.partition.random_partition import RandomPartitioner


def _to_nx(graph: KnowledgeGraph) -> nx.MultiGraph:
    g = nx.MultiGraph()
    g.add_nodes_from(range(graph.num_entities))
    g.add_edges_from((int(h), int(t)) for h, _, t in graph.triples)
    return g


@pytest.fixture(scope="module")
def random_graph():
    spec = DatasetSpec("oracle", 120, 6, 900, seed=13)
    return generate_dataset(spec)


class TestKCoreOracle:
    def test_matches_networkx_surviving_nodes(self, random_graph):
        """Entities surviving our k-core must equal networkx's k-core node
        set (computed on the simple graph; multi-edges count via degree,
        so compare on a deduplicated simple graph)."""
        # Build a simple (non-multi) version for an apples-to-apples check.
        simple_edges = {
            (min(int(h), int(t)), max(int(h), int(t)))
            for h, _, t in random_graph.triples
            if h != t
        }
        triples = [(a, 0, b) for a, b in sorted(simple_edges)]
        g = KnowledgeGraph(
            triples,
            num_entities=random_graph.num_entities,
            num_relations=1,
        )
        for k in (2, 3, 4):
            ours = k_core(g, k)
            degrees = ours.entity_degrees()
            our_nodes = set(np.nonzero(degrees > 0)[0].tolist())

            nxg = nx.Graph()
            nxg.add_edges_from(simple_edges)
            nx_nodes = set(nx.k_core(nxg, k).nodes())
            assert our_nodes == nx_nodes, f"k={k}"


class TestDegreeOracle:
    def test_degrees_match_networkx(self, random_graph):
        ours = random_graph.entity_degrees()
        nxg = _to_nx(random_graph)
        # Self-loops count twice in nx.degree but twice in ours too (an
        # entity appearing as both head and tail of the same triple).
        theirs = np.array([nxg.degree(i) for i in range(random_graph.num_entities)])
        np.testing.assert_array_equal(ours, theirs)

    def test_connected_by_construction(self, random_graph):
        """The generator's spanning chain guarantees one weakly-connected
        component."""
        nxg = _to_nx(random_graph)
        assert nx.is_connected(nxg)


class TestEdgeCutOracle:
    def test_edge_cut_matches_sparse_algebra(self, random_graph):
        """Edge cut via scipy sparse indicator algebra: for assignment
        matrix Z (n x k) and directed adjacency A, the internal edge count
        is sum over parts of z_p^T A z_p; cut = total - internal."""
        part = RandomPartitioner(seed=3).partition(random_graph, 4)
        n = random_graph.num_entities
        rows = random_graph.triples[:, HEAD]
        cols = random_graph.triples[:, TAIL]
        data = np.ones(len(rows))
        adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()

        internal = 0.0
        for p in range(4):
            z = (part.entity_part == p).astype(np.float64)
            internal += z @ (adjacency @ z)
        expected_cut = random_graph.num_triples - int(round(internal))
        assert edge_cut(random_graph, part) == expected_cut


class TestPartitionBalanceOracle:
    def test_metis_cut_at_most_random_average(self, random_graph):
        """Across seeds, METIS's cut must beat the random-partition mean
        (an aggregate oracle; individual seeds could tie on tiny graphs)."""
        from repro.partition.metis import MetisPartitioner

        random_cuts = [
            edge_cut(random_graph, RandomPartitioner(seed=s).partition(random_graph, 3))
            for s in range(5)
        ]
        metis_cut = edge_cut(
            random_graph, MetisPartitioner(seed=0).partition(random_graph, 3)
        )
        assert metis_cut < np.mean(random_cuts)
