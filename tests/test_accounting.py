"""Accounting conservation tests: the simulation's books must balance.

The cost models, per-worker clocks, telemetry, and the network's global
byte counters all observe the same underlying events from different
angles; these tests assert they agree.
"""

import numpy as np
import pytest

from repro.core.baselines import PBGTrainer
from repro.core.config import TrainingConfig
from repro.core.telemetry import Telemetry
from repro.core.trainer import HETKGTrainer
from repro.kg.graph import KnowledgeGraph


def config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        dps_window=4, sync_period=4, seed=1,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="module")
def run(small_split):
    telemetry = Telemetry()
    trainer = HETKGTrainer(config())
    result = trainer.train(small_split.train, telemetry=telemetry)
    return trainer, result, telemetry


class TestClockConservation:
    def test_every_worker_clock_decomposes(self, run):
        trainer, _, _ = run
        for worker in trainer.workers:
            total = worker.clock.elapsed
            parts = sum(worker.clock.by_category.values())
            assert total == pytest.approx(parts)

    def test_result_uses_slowest_worker(self, run):
        trainer, result, _ = run
        slowest = max(w.clock.elapsed for w in trainer.workers)
        assert result.sim_time == slowest

    def test_history_time_matches_final_clock(self, run):
        trainer, result, _ = run
        assert result.history.points[-1].sim_time == result.sim_time


class TestByteConservation:
    def test_telemetry_bytes_bounded_by_network_totals(self, run):
        """Telemetry records step traffic only (no install/start traffic),
        so its total must be <= the network model's global totals, and
        close to them."""
        trainer, result, telemetry = run
        step_remote = sum(r.remote_bytes for r in telemetry.records)
        total_remote = result.comm_totals.remote_bytes
        assert step_remote <= total_remote
        assert step_remote > 0.5 * total_remote  # installs are the minority

    def test_network_totals_cover_both_directions(self, run):
        """Pull and push both meter; total bytes must exceed either
        direction alone (sanity against double-free accounting)."""
        trainer, result, telemetry = run
        assert result.comm_totals.total_bytes > result.comm_totals.remote_bytes

    def test_byte_scale_multiplies_traffic(self, small_split):
        """Doubling wire_dim must exactly double metered bytes for the
        same seeded run."""
        a = HETKGTrainer(config(wire_dim=160)).train(small_split.train)
        b = HETKGTrainer(config(wire_dim=320)).train(small_split.train)
        assert b.comm_totals.remote_bytes == pytest.approx(
            2 * a.comm_totals.remote_bytes, rel=1e-6
        )

    def test_identical_math_regardless_of_wire_dim(self, small_split):
        """wire_dim only affects the cost models — losses and metrics must
        be bit-identical across wire dims."""
        a = HETKGTrainer(config(wire_dim=160)).train(small_split.train)
        b = HETKGTrainer(config(wire_dim=None)).train(small_split.train)
        assert a.history.losses() == b.history.losses()


class TestStatsConservation:
    def test_worker_hits_equal_telemetry_hits(self, run):
        trainer, _, telemetry = run
        for worker in trainer.workers:
            recorded_hits = sum(
                r.cache_hits for r in telemetry.for_worker(worker.machine)
            )
            recorded_misses = sum(
                r.cache_misses for r in telemetry.for_worker(worker.machine)
            )
            stats = worker.cache.combined_stats()
            assert stats.hits == recorded_hits
            assert stats.misses == recorded_misses

    def test_epoch_iterations_balanced(self, run):
        trainer, result, _ = run
        counts = {w.iterations for w in trainer.workers}
        assert len(counts) == 1  # round-robin keeps workers in lock-step


class TestRepeatedTrainCalls:
    """Each ``train()`` call must report only its own time and traffic.

    Regression: the trainer charged into process-lifetime clocks and the
    network's global byte tables without snapshotting them per call, so a
    second ``train()`` on the same trainer reported roughly double the
    traffic and simulated time of the first.
    """

    @staticmethod
    def _two_entity_graph():
        """Every batch touches exactly entities {0, 1} and relation {0},
        so per-step communication is *identical* across calls even though
        the sampler's rng state advances between them."""
        triples = np.asarray([(0, 0, 1), (1, 0, 0)])
        return KnowledgeGraph(triples, num_entities=2, num_relations=1)

    def test_second_train_reports_equal_totals(self):
        graph = self._two_entity_graph()
        trainer = HETKGTrainer(
            config(
                cache_strategy="none", partitioner="random", batch_size=2,
                num_negatives=2,
            )
        )
        first = trainer.train(graph)
        second = trainer.train(graph)
        assert second.comm_totals.remote_bytes == first.comm_totals.remote_bytes
        assert second.comm_totals.total_bytes == first.comm_totals.total_bytes
        assert second.comm_totals.total_messages == first.comm_totals.total_messages
        assert second.sim_time == pytest.approx(first.sim_time)
        assert second.communication_time == pytest.approx(
            first.communication_time
        )

    def test_second_train_not_cumulative_with_cache(self, small_split):
        """With a DPS cache batches differ across calls (rng advances), so
        assert the second call is *close to* the first — not ~2x it."""
        trainer = HETKGTrainer(config())
        first = trainer.train(small_split.train)
        second = trainer.train(small_split.train)
        assert second.comm_totals.total_bytes < 1.5 * first.comm_totals.total_bytes
        assert second.sim_time < 1.5 * first.sim_time
        assert second.history.points[-1].sim_time == pytest.approx(
            second.sim_time
        )

    def test_pbg_second_train_reports_equal_totals(self):
        graph = self._two_entity_graph()
        trainer = PBGTrainer(
            config(
                cache_strategy="none", partitioner="random", batch_size=2,
                num_negatives=2, pbg_partitions=2,
            )
        )
        first = trainer.train(graph)
        second = trainer.train(graph)
        assert second.comm_totals.remote_bytes == first.comm_totals.remote_bytes
        assert second.comm_totals.total_messages == first.comm_totals.total_messages
        assert second.sim_time == pytest.approx(first.sim_time)
