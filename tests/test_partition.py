"""Tests for repro.partition (base, random, METIS, quality)."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, KnowledgeGraph
from repro.partition.base import Partition, assign_triples
from repro.partition.metis import MetisPartitioner
from repro.partition.quality import balance, cut_fraction, edge_cut
from repro.partition.random_partition import RandomPartitioner


class TestPartitionObject:
    def test_entities_and_triples_of(self, tiny_graph):
        part = assign_triples(tiny_graph, np.array([0, 0, 0, 1, 1, 1]), 2)
        assert set(part.entities_of(0)) == {0, 1, 2}
        # Triples follow the head entity.
        for idx in part.triples_of(1):
            assert tiny_graph.triples[idx, HEAD] in (3, 4, 5)

    def test_part_sizes(self, tiny_graph):
        part = assign_triples(tiny_graph, np.array([0, 0, 1, 1, 1, 1]), 2)
        assert list(part.part_sizes()) == [2, 4]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Partition(np.array([0, 3]), np.array([0]), k=2)

    def test_wrong_length_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="entries"):
            assign_triples(tiny_graph, np.array([0, 1]), 2)


class TestRandomPartitioner:
    def test_balanced(self, small_graph):
        part = RandomPartitioner(seed=0).partition(small_graph, 4)
        sizes = part.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_covers_all_entities(self, small_graph):
        part = RandomPartitioner(seed=0).partition(small_graph, 3)
        assert part.part_sizes().sum() == small_graph.num_entities

    def test_k1(self, small_graph):
        part = RandomPartitioner(seed=0).partition(small_graph, 1)
        assert np.all(part.entity_part == 0)

    def test_invalid_k(self, small_graph):
        with pytest.raises(ValueError):
            RandomPartitioner().partition(small_graph, 0)


class TestMetisPartitioner:
    @pytest.fixture(scope="class")
    def metis_part(self, small_graph):
        return MetisPartitioner(seed=0).partition(small_graph, 4)

    def test_every_entity_assigned(self, small_graph, metis_part):
        assert len(metis_part.entity_part) == small_graph.num_entities
        assert metis_part.part_sizes().sum() == small_graph.num_entities

    def test_balance_within_tolerance(self, metis_part):
        # Default imbalance is 5%; allow slack for integer rounding.
        assert balance(metis_part) <= 1.10

    def test_beats_random_on_edge_cut(self, small_graph, metis_part):
        random_part = RandomPartitioner(seed=0).partition(small_graph, 4)
        assert edge_cut(small_graph, metis_part) < edge_cut(
            small_graph, random_part
        )

    def test_k1_single_part(self, small_graph):
        part = MetisPartitioner(seed=0).partition(small_graph, 1)
        assert np.all(part.entity_part == 0)

    def test_k_at_least_entities(self):
        g = KnowledgeGraph([(0, 0, 1), (1, 0, 2)])
        part = MetisPartitioner(seed=0).partition(g, 10)
        # One entity per part; all valid ids.
        assert len(np.unique(part.entity_part)) == 3

    def test_deterministic(self, small_graph):
        a = MetisPartitioner(seed=9).partition(small_graph, 4)
        b = MetisPartitioner(seed=9).partition(small_graph, 4)
        assert np.array_equal(a.entity_part, b.entity_part)

    def test_two_cliques_separated(self):
        """Two dense cliques joined by one edge must split at the bridge."""
        triples = []
        for i in range(6):
            for j in range(i + 1, 6):
                triples.append((i, 0, j))
                triples.append((i + 6, 0, j + 6))
        triples.append((0, 0, 6))  # bridge
        g = KnowledgeGraph(np.asarray(triples), num_entities=12, num_relations=1)
        part = MetisPartitioner(seed=0).partition(g, 2)
        assert edge_cut(g, part) == 1
        left = set(part.entity_part[:6])
        right = set(part.entity_part[6:])
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MetisPartitioner(imbalance=-0.1)


class TestQualityMetrics:
    def test_edge_cut_zero_single_part(self, small_graph):
        part = assign_triples(
            small_graph, np.zeros(small_graph.num_entities, dtype=np.int64), 1
        )
        assert edge_cut(small_graph, part) == 0
        assert cut_fraction(small_graph, part) == 0.0

    def test_cut_fraction_bounds(self, small_graph):
        part = RandomPartitioner(seed=1).partition(small_graph, 4)
        assert 0.0 <= cut_fraction(small_graph, part) <= 1.0

    def test_random_cut_near_expected(self, small_graph):
        """Random 4-way partitioning cuts ~3/4 of edges in expectation."""
        part = RandomPartitioner(seed=1).partition(small_graph, 4)
        assert 0.6 <= cut_fraction(small_graph, part) <= 0.9

    def test_balance_perfect(self):
        part = Partition(np.array([0, 0, 1, 1]), np.zeros(0, dtype=np.int64), 2)
        assert balance(part) == 1.0

    def test_empty_graph_cut(self):
        g = KnowledgeGraph(np.empty((0, 3), dtype=np.int64), num_entities=4)
        part = assign_triples(g, np.zeros(4, dtype=np.int64), 1)
        assert cut_fraction(g, part) == 0.0
