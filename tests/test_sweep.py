"""Tests for the generic hyperparameter sweep utility."""

import pytest

from repro.cli import main
from repro.core.config import TrainingConfig
from repro.experiments.sweep import SweepResult, run_sweep


def quick_config(**overrides):
    defaults = dict(
        model="transe", dim=8, epochs=1, batch_size=16, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64,
        dps_window=4, sync_period=4, seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestRunSweep:
    def test_one_dimensional(self, small_split):
        result = run_sweep(
            "hetkg-d",
            quick_config(),
            small_split,
            {"sync_period": [2, 8]},
            eval_max_queries=5,
            eval_candidates=20,
        )
        assert result.parameters == ["sync_period"]
        assert len(result.records) == 2
        assert result.column("sync_period") == [2, 8]
        for record in result.records:
            assert 0.0 <= record["mrr"] <= 1.0
            assert record["sim_time"] > 0

    def test_cartesian_grid(self, small_split):
        result = run_sweep(
            "hetkg-c",
            quick_config(),
            small_split,
            {"sync_period": [2, 8], "cache_capacity": [32, 64]},
            eval_max_queries=3,
            eval_candidates=20,
        )
        assert len(result.records) == 4
        combos = {
            (r["sync_period"], r["cache_capacity"]) for r in result.records
        }
        assert combos == {(2, 32), (2, 64), (8, 32), (8, 64)}

    def test_longer_sync_is_faster(self, small_split):
        result = run_sweep(
            "hetkg-c",
            quick_config(epochs=2),
            small_split,
            {"sync_period": [1, 16]},
            eval_max_queries=1,
        )
        fast = result.best("sim_time", minimize=True)
        assert fast["sync_period"] == 16

    def test_best_raises_on_empty(self):
        with pytest.raises(ValueError, match="no records"):
            SweepResult(parameters=["x"]).best()

    def test_unknown_field_rejected(self, small_split):
        with pytest.raises(ValueError, match="unknown TrainingConfig field"):
            run_sweep("hetkg-d", quick_config(), small_split, {"nope": [1]})

    def test_empty_grid_rejected(self, small_split):
        with pytest.raises(ValueError, match="at least one"):
            run_sweep("hetkg-d", quick_config(), small_split, {})
        with pytest.raises(ValueError, match="no values"):
            run_sweep("hetkg-d", quick_config(), small_split, {"sync_period": []})

    def test_to_text_renders(self, small_split):
        result = run_sweep(
            "hetkg-d",
            quick_config(),
            small_split,
            {"sync_period": [4]},
            eval_max_queries=2,
            eval_candidates=10,
        )
        text = result.to_text()
        assert "sync_period" in text
        assert "mrr" in text


class TestSweepCli:
    def test_cli_sweep(self, capsys):
        rc = main(
            [
                "sweep", "sync_period", "2", "8",
                "--dataset", "wn18", "--scale", "0.02", "--epochs", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "fastest" in out

    def test_value_parsing(self):
        from repro.cli import _parse_value

        assert _parse_value("3") == 3
        assert _parse_value("0.25") == 0.25
        assert _parse_value("none") is None
        assert _parse_value("metis") == "metis"
