"""Tests for HETKGTrainer / DGLKETrainer / PBGTrainer assembly and loops."""

import pytest

from repro.core.baselines import DGLKETrainer, PBGTrainer
from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer, make_trainer


def quick_config(**overrides):
    defaults = dict(
        model="transe",
        dim=8,
        epochs=2,
        batch_size=16,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        dps_window=4,
        sync_period=4,
        seed=0,
        wire_dim=None,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestMakeTrainer:
    def test_hetkg_variants(self):
        c = make_trainer("hetkg-c", quick_config())
        assert isinstance(c, HETKGTrainer)
        assert c.config.cache_strategy == "cps"
        d = make_trainer("HET-KG-D", quick_config())
        assert d.config.cache_strategy == "dps"

    def test_baselines(self):
        assert isinstance(make_trainer("dglke", quick_config()), DGLKETrainer)
        assert isinstance(make_trainer("pbg", quick_config()), PBGTrainer)

    def test_dglke_forces_no_cache(self):
        trainer = make_trainer("dglke", quick_config(cache_strategy="dps"))
        assert trainer.config.cache_strategy == "none"

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown system"):
            make_trainer("graphvite", quick_config())


class TestHETKGTrainer:
    def test_setup_builds_workers(self, small_split):
        trainer = HETKGTrainer(quick_config(cache_strategy="dps"))
        trainer.setup(small_split.train)
        assert 1 <= len(trainer.workers) <= 2
        assert trainer.server is not None
        assert all(w.cache is not None for w in trainer.workers)

    def test_setup_idempotent(self, small_split):
        trainer = HETKGTrainer(quick_config())
        trainer.setup(small_split.train)
        workers = trainer.workers
        trainer.setup(small_split.train)
        assert trainer.workers is workers

    def test_train_returns_result(self, small_split):
        trainer = HETKGTrainer(quick_config(cache_strategy="cps"))
        result = trainer.train(small_split.train)
        assert result.sim_time > 0
        assert result.compute_time > 0
        assert result.communication_time > 0
        assert result.sim_time == pytest.approx(
            result.compute_time + result.communication_time
        )
        assert len(result.history) == 2

    def test_loss_decreases(self, small_split):
        trainer = HETKGTrainer(quick_config(epochs=6, cache_strategy="dps"))
        result = trainer.train(small_split.train)
        losses = result.history.losses()
        assert losses[-1] < losses[0]

    def test_cache_hit_ratio_positive(self, small_split):
        trainer = HETKGTrainer(quick_config(cache_strategy="dps"))
        result = trainer.train(small_split.train)
        assert 0.0 < result.cache_hit_ratio <= 1.0

    def test_no_cache_zero_hits(self, small_split):
        result = DGLKETrainer(quick_config()).train(small_split.train)
        assert result.cache_hit_ratio == 0.0

    def test_eval_at_final_epoch(self, small_split):
        trainer = HETKGTrainer(quick_config(cache_strategy="cps"))
        result = trainer.train(
            small_split.train,
            eval_graph=small_split.test,
            eval_max_queries=10,
            eval_candidates=30,
        )
        assert "mrr" in result.final_metrics
        assert 0.0 <= result.final_metrics["mrr"] <= 1.0

    def test_eval_every(self, small_split):
        trainer = HETKGTrainer(quick_config(epochs=4, cache_strategy="cps"))
        result = trainer.train(
            small_split.train,
            eval_graph=small_split.test,
            eval_every=2,
            eval_max_queries=5,
            eval_candidates=20,
        )
        evaluated = [p.epoch for p in result.history.points if p.metrics]
        assert evaluated == [2, 4]

    def test_deterministic_given_seed(self, small_split):
        a = HETKGTrainer(quick_config(cache_strategy="dps")).train(small_split.train)
        b = HETKGTrainer(quick_config(cache_strategy="dps")).train(small_split.train)
        assert a.sim_time == b.sim_time
        assert a.history.losses() == b.history.losses()

    def test_evaluate_before_setup_rejected(self, small_split):
        trainer = HETKGTrainer(quick_config())
        with pytest.raises(RuntimeError):
            trainer.evaluate(small_split.test)

    def test_single_machine(self, small_split):
        trainer = HETKGTrainer(quick_config(num_machines=1, cache_strategy="dps"))
        result = trainer.train(small_split.train)
        assert result.sim_time > 0


class TestPBGTrainer:
    def test_train_runs(self, small_split):
        result = PBGTrainer(quick_config()).train(small_split.train)
        assert result.sim_time > 0
        assert result.system == "PBG"
        assert result.cache_hit_ratio == 0.0

    def test_buckets_cover_all_triples(self, small_split):
        trainer = PBGTrainer(quick_config())
        trainer.setup(small_split.train)
        total = sum(len(idx) for idx in trainer._buckets.values())
        assert total == small_split.train.num_triples

    def test_loss_decreases(self, small_split):
        result = PBGTrainer(quick_config(epochs=6)).train(small_split.train)
        losses = result.history.losses()
        assert losses[-1] < losses[0]

    def test_relation_traffic_is_dense(self, small_split):
        """PBG's communication must scale with the full relation table, not
        the batch's touched relations."""
        trainer = PBGTrainer(quick_config())
        trainer.setup(small_split.train)
        cost = trainer._dense_relation_cost()
        expected = 2 * trainer.relation_table.size * 4  # wire_dim=None
        assert cost.remote_bytes == expected

    def test_evaluate_before_setup_rejected(self, small_split):
        with pytest.raises(RuntimeError):
            PBGTrainer(quick_config()).evaluate(small_split.test)


class TestSystemComparison:
    """The paper's headline shape, at test scale."""

    @pytest.fixture(scope="class")
    def results(self, small_split):
        cfg = dict(
            model="transe",
            dim=8,
            epochs=2,
            batch_size=32,
            num_negatives=8,
            num_machines=4,
            cache_capacity=128,
            dps_window=8,
            sync_period=8,
            seed=1,
        )
        out = {}
        for system in ("pbg", "dglke", "hetkg-c", "hetkg-d"):
            trainer = make_trainer(system, TrainingConfig(**cfg))
            out[system] = trainer.train(small_split.train)
        return out

    def test_hetkg_not_slower_than_dglke(self, results):
        assert results["hetkg-c"].sim_time <= results["dglke"].sim_time * 1.02
        assert results["hetkg-d"].sim_time <= results["dglke"].sim_time * 1.02

    def test_hetkg_communicates_less(self, results):
        assert (
            results["hetkg-c"].communication_time
            < results["dglke"].communication_time
        )

    def test_pbg_slowest(self, results):
        assert results["pbg"].sim_time > results["hetkg-d"].sim_time

    def test_compute_times_close(self, results):
        """Fig. 7's observation: caching must not change compute cost."""
        ratio = results["hetkg-c"].compute_time / results["dglke"].compute_time
        assert 0.9 < ratio < 1.2


class TestHeterogeneousMachines:
    def test_straggler_stretches_epoch(self, small_split):
        fast = HETKGTrainer(quick_config(num_machines=2)).train(small_split.train)
        slow = HETKGTrainer(
            quick_config(num_machines=2, machine_speeds=(1.0, 0.25))
        ).train(small_split.train)
        # The slow machine's compute takes 4x longer and the epoch waits
        # for the slowest machine.
        assert slow.sim_time > fast.sim_time
        assert slow.compute_time > fast.compute_time

    def test_speeds_length_validated(self):
        with pytest.raises(ValueError, match="machine_speeds"):
            quick_config(num_machines=2, machine_speeds=(1.0,))

    def test_speeds_positive(self):
        with pytest.raises(ValueError):
            quick_config(num_machines=2, machine_speeds=(1.0, 0.0))

    def test_speed_of_default(self):
        assert quick_config().speed_of(1) == 1.0
