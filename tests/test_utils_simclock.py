"""Tests for repro.utils.simclock."""

import pytest

from repro.utils.simclock import SimClock, max_clock


class TestAdvance:
    def test_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.elapsed == 2.0

    def test_category_split(self):
        clock = SimClock()
        clock.advance(1.0, "compute")
        clock.advance(2.0, "communication")
        clock.advance(1.0, "compute")
        assert clock.category("compute") == 2.0
        assert clock.category("communication") == 2.0

    def test_unknown_category_is_zero(self):
        assert SimClock().category("nope") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.elapsed == 0.0

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")], ids=["nan", "inf", "-inf"]
    )
    def test_non_finite_rejected(self, bad):
        # Regression: NaN/inf used to slip past the `< 0` guard (NaN compares
        # False to everything) and poison `elapsed` for the rest of the run.
        clock = SimClock()
        clock.advance(1.0, "compute")
        with pytest.raises(ValueError, match="non-finite"):
            clock.advance(bad, "compute")
        # The failed advance must not have touched any accumulator.
        assert clock.elapsed == 1.0
        assert clock.category("compute") == 1.0


class TestFraction:
    def test_fraction(self):
        clock = SimClock()
        clock.advance(3.0, "communication")
        clock.advance(1.0, "compute")
        assert clock.fraction("communication") == pytest.approx(0.75)

    def test_fraction_empty_clock(self):
        assert SimClock().fraction("compute") == 0.0


class TestMergeCopyReset:
    def test_merge(self):
        a, b = SimClock(), SimClock()
        a.advance(1.0, "compute")
        b.advance(2.0, "compute")
        b.advance(1.0, "communication")
        a.merge(b)
        assert a.elapsed == 4.0
        assert a.category("compute") == 3.0

    def test_copy_is_independent(self):
        a = SimClock()
        a.advance(1.0, "compute")
        b = a.copy()
        b.advance(5.0, "compute")
        assert a.elapsed == 1.0
        assert b.elapsed == 6.0

    def test_reset(self):
        a = SimClock()
        a.advance(1.0, "x")
        a.reset()
        assert a.elapsed == 0.0
        assert a.category("x") == 0.0


class TestMaxClock:
    def test_picks_slowest(self):
        a, b = SimClock(), SimClock()
        a.advance(1.0)
        b.advance(3.0)
        assert max_clock([a, b]).elapsed == 3.0

    def test_returns_copy(self):
        a = SimClock()
        a.advance(1.0)
        m = max_clock([a])
        m.advance(1.0)
        assert a.elapsed == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            max_clock([])
