"""Tests for the unified cache core (repro.cache.core).

Covers the centralized capacity ledger, the per-access residency
invariant across every registered policy, trace equivalence between the
facades and independent reference implementations of the pre-core
policies, the four capacity/overflow bug regressions from ISSUE 7, and
the CPS/DPS/ADAPTIVE membership replay engine.
"""

from __future__ import annotations

from collections import Counter, OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.core import (
    CacheCore,
    CapacityError,
    CapacityLedger,
    EvictionStrategy,
    HotnessMembershipCache,
    PinnedStrategy,
    available_policies,
    make_cache,
    replay_membership_trace,
)
from repro.cache.filtering import filter_hot_ids, split_slots
from repro.cache.policies import (
    ARCCache,
    ClockCache,
    FIFOCache,
    ImportanceCache,
    LRUCache,
    TwoQueueCache,
    hotness_window_hit_ratio,
    replay_trace,
)
from repro.cache.table import CacheTable
from repro.serving.cache import ServingCache

#: Every reactive policy registered with the core (pinned is membership-
#: driven and exercised separately).
REACTIVE = tuple(p for p in available_policies() if p != "pinned")

#: Hypothesis trace: keys from a small space so evictions actually occur.
TRACES = st.lists(st.integers(min_value=0, max_value=30), max_size=200)
CAPACITIES = st.integers(min_value=1, max_value=12)


# ----------------------------------------------------------------- ledger


class TestCapacityLedger:
    def test_charge_release_roundtrip(self):
        ledger = CapacityLedger(3)
        ledger.charge(2)
        assert ledger.resident == 2 and ledger.remaining == 1
        ledger.release(1)
        assert ledger.resident == 1 and not ledger.full

    def test_charge_past_capacity_raises(self):
        ledger = CapacityLedger(2)
        ledger.charge(2)
        assert ledger.full
        with pytest.raises(CapacityError):
            ledger.charge(1)
        assert ledger.resident == 2  # failed charge leaves no residue

    def test_release_more_than_resident_raises(self):
        ledger = CapacityLedger(2)
        ledger.charge(1)
        with pytest.raises(CapacityError):
            ledger.release(2)

    def test_reinstall_is_wholesale(self):
        ledger = CapacityLedger(4)
        ledger.charge(3)
        ledger.reinstall(1)
        assert ledger.resident == 1
        with pytest.raises(CapacityError):
            ledger.reinstall(5)

    def test_check_fits(self):
        ledger = CapacityLedger(2)
        ledger.check_fits(2)
        with pytest.raises(CapacityError, match="cannot install"):
            ledger.check_fits(3)

    def test_audit_detects_mismatch(self):
        ledger = CapacityLedger(2)
        ledger.charge(1)
        ledger.audit(1)
        with pytest.raises(CapacityError):
            ledger.audit(2)

    def test_zero_capacity_legal(self):
        ledger = CapacityLedger(0)
        assert ledger.full and ledger.remaining == 0
        with pytest.raises(CapacityError):
            ledger.charge(1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            CapacityLedger(-1)
        ledger = CapacityLedger(2)
        with pytest.raises(ValueError):
            ledger.charge(-1)
        with pytest.raises(ValueError):
            ledger.release(-1)
        with pytest.raises(ValueError):
            ledger.reinstall(-1)

    def test_capacity_error_is_value_error(self):
        assert issubclass(CapacityError, ValueError)


# ------------------------------------------------------------------- core


class TestCacheCore:
    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_cache("belady", 4)

    def test_available_policies_sorted(self):
        names = available_policies()
        assert names == sorted(names)
        assert {"fifo", "lru", "lfu", "clock", "2q", "arc", "pinned"} <= set(
            names
        )

    def test_capacity_zero_always_misses(self):
        core = make_cache("lru", 0)
        for key in (1, 2, 1, 1):
            assert not core.access(key)
        assert len(core) == 0 and core.hit_ratio == 0.0

    def test_hit_metering(self):
        core = make_cache("fifo", 2)
        assert not core.access(1)
        assert core.access(1)
        assert core.hits == 1 and core.misses == 1
        assert core.hit_ratio == pytest.approx(0.5)

    def test_clear_drops_members_keeps_counters(self):
        core = make_cache("lru", 4)
        core.access(1)
        core.access(1)
        core.clear()
        assert len(core) == 0
        assert core.hits == 1 and core.misses == 1
        assert not core.access(1)  # cold again

    def test_new_policy_is_a_small_strategy_class(self):
        """Landing a policy = one strategy class; no core/ledger changes."""

        class MRUStrategy(EvictionStrategy):
            """Evict the *most* recently used key (a classic anti-LRU)."""

            def __init__(self):
                super().__init__()
                self._order = OrderedDict()

            def lookup(self, key):
                return key in self._order

            def on_hit(self, key):
                self._order.move_to_end(key)

            def on_miss(self, key):
                if self.core.full:
                    victim, _ = self._order.popitem(last=True)
                    self.core.evict(victim)
                self._order[key] = None
                self.core.admit(key)

            def __len__(self):
                return len(self._order)

            def clear(self):
                self._order.clear()

        core = CacheCore(2, MRUStrategy(), label="mru")
        for key in (1, 2, 3, 1, 3):
            core.access(key)
            assert len(core) <= 2
        # 3 evicted 2 (the MRU victim); 1 stayed resident throughout.
        assert core.access(1)

    def test_strategy_overflow_is_caught_centrally(self):
        """A buggy strategy that forgets to evict trips the ledger."""

        class LeakyStrategy(EvictionStrategy):
            def __init__(self):
                super().__init__()
                self._members = set()

            def lookup(self, key):
                return key in self._members

            def on_hit(self, key):
                pass

            def on_miss(self, key):  # admits unconditionally: overflows
                self._members.add(key)
                self.core.admit(key)

            def __len__(self):
                return len(self._members)

            def clear(self):
                self._members.clear()

        core = CacheCore(1, LeakyStrategy(), label="leaky")
        core.access(1)
        with pytest.raises(CapacityError):
            core.access(2)


# ----------------------------------------------- the capacity invariant


class TestCapacityInvariant:
    """`len(cache) <= capacity` after every access, for every policy."""

    @pytest.mark.parametrize("policy", REACTIVE)
    @settings(max_examples=40, deadline=None)
    @given(trace=TRACES, capacity=CAPACITIES)
    def test_resident_never_exceeds_capacity(self, policy, trace, capacity):
        core = make_cache(policy, capacity)
        for key in trace:
            core.access(key)
            assert len(core) <= capacity
        assert core.hits + core.misses == len(trace)

    @pytest.mark.parametrize("policy", REACTIVE)
    def test_capacity_one(self, policy):
        """Regression (ISSUE 7): 2Q at capacity=1 used to hold 2 keys."""
        core = make_cache(policy, 1)
        for key in (0, 1, 0, 1, 2, 2, 0):
            core.access(key)
            assert len(core) <= 1

    @settings(max_examples=40, deadline=None)
    @given(trace=TRACES, capacity=CAPACITIES)
    def test_pinned_membership_respects_capacity(self, trace, capacity):
        strategy = PinnedStrategy()
        core = CacheCore(capacity, strategy)
        members = sorted(set(trace))[:capacity]
        strategy.install(members)
        for key in trace:
            core.access(key)
            assert len(core) <= capacity


# ----------------------------------------------------- 2Q / split regressions


class TestTwoQueueRegression:
    def test_capacity_one_holds_one(self):
        """The pre-core 2Q gave both segments max(1, ...) slots and held
        two resident keys in a capacity-1 cache."""
        cache = TwoQueueCache(1)
        for key in (1, 2, 1, 1, 3, 1):
            cache.access(key)
            assert len(cache) <= 1

    @pytest.mark.parametrize("capacity", range(1, 16))
    def test_segment_caps_sum_to_capacity(self, capacity):
        strategy = TwoQueueCache(capacity)._core.strategy
        assert strategy.probation_cap + strategy.protected_cap == capacity
        assert strategy.probation_cap >= 1

    def test_probation_hit_without_protected_segment(self):
        """At capacity 1 a probation hit stays probationary (and hits)."""
        cache = TwoQueueCache(1)
        assert not cache.access(7)
        assert cache.access(7)
        assert len(cache) == 1

    def test_invalid_probation_fraction(self):
        with pytest.raises(ValueError, match="probation_fraction"):
            TwoQueueCache(4, probation_fraction=1.0)


class TestSplitSlots:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=500),
        ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sides_sum_to_capacity_exactly(self, capacity, ratio):
        entity_slots, relation_slots = split_slots(capacity, ratio)
        assert entity_slots + relation_slots == capacity
        assert entity_slots >= 0 and relation_slots >= 0

    def test_capacity_one_single_slot(self):
        """The pre-core serving split gave capacity=1 two slots."""
        assert sum(split_slots(1, 0.25)) == 1
        assert sum(split_slots(1, 0.75)) == 1

    def test_matches_training_filter(self):
        """filter_hot_ids divides slots by the same rule (no spare)."""
        entity_counts = {i: 100 - i for i in range(50)}
        relation_counts = {i: 100 - i for i in range(50)}
        for capacity, ratio in ((8, 0.25), (11, 0.5), (1, 0.25)):
            hot = filter_hot_ids(entity_counts, relation_counts, capacity, ratio)
            entity_slots, relation_slots = split_slots(capacity, ratio)
            assert len(hot.entities) == entity_slots
            assert len(hot.relations) == relation_slots

    def test_serving_dynamic_capacity_one(self):
        """Regression (ISSUE 7): ServingCache.dynamic(1) allocated 2 slots."""
        cache = ServingCache.dynamic(capacity=1, policy="lru", entity_ratio=0.25)
        for _ in range(3):
            cache.lookup("entity", np.array([1, 2]))
            cache.lookup("relation", np.array([3, 4]))
            assert cache.size() <= 1
        assert (
            cache.table("entity").capacity + cache.table("relation").capacity
            == 1
        )

    @pytest.mark.parametrize("capacity", (1, 2, 5, 10))
    def test_serving_dynamic_tables_sum_to_capacity(self, capacity):
        cache = ServingCache.dynamic(capacity=capacity, policy="fifo")
        total = (
            cache.table("entity").capacity + cache.table("relation").capacity
        )
        assert total == capacity


# ------------------------------------------------------------ ARC regression


class RefARC:
    """Reference ARC following Megiddo & Modha's Fig. 4 pseudocode with
    the **exact** (float) target ``p`` in REPLACE — the comparison the
    pre-core implementation truncated with ``int(p)``."""

    def __init__(self, capacity: int) -> None:
        self.c = capacity
        self.t1: list[int] = []  # LRU at index 0
        self.t2: list[int] = []
        self.b1: list[int] = []
        self.b2: list[int] = []
        self.p = 0.0

    def _replace(self, in_b2: bool) -> None:
        if self.t1 and (len(self.t1) > self.p or (in_b2 and len(self.t1) >= self.p)):
            self.b1.append(self.t1.pop(0))
        elif self.t2:
            self.b2.append(self.t2.pop(0))
        elif self.t1:
            self.b1.append(self.t1.pop(0))

    def access(self, key: int) -> bool:
        if key in self.t1:
            self.t1.remove(key)
            self.t2.append(key)
            return True
        if key in self.t2:
            self.t2.remove(key)
            self.t2.append(key)
            return True
        if key in self.b1:
            self.p = min(
                float(self.c), self.p + max(1.0, len(self.b2) / max(1, len(self.b1)))
            )
            self.b1.remove(key)
            self._replace(in_b2=False)
            self.t2.append(key)
            return False
        if key in self.b2:
            self.p = max(
                0.0, self.p - max(1.0, len(self.b1) / max(1, len(self.b2)))
            )
            self.b2.remove(key)
            self._replace(in_b2=True)
            self.t2.append(key)
            return False
        if len(self.t1) + len(self.b1) == self.c:
            if len(self.t1) < self.c:
                self.b1.pop(0)
                self._replace(in_b2=False)
            else:
                self.t1.pop(0)
        elif len(self.t1) + len(self.b1) < self.c:
            total = len(self.t1) + len(self.t2) + len(self.b1) + len(self.b2)
            if total >= self.c:
                if total == 2 * self.c and self.b2:
                    self.b2.pop(0)
                self._replace(in_b2=False)
        self.t1.append(key)
        return False


class OldIntPARC(RefARC):
    """The pre-fix REPLACE: ``len(t1) == int(p)`` instead of ``>= p``."""

    def _replace(self, in_b2: bool) -> None:
        if self.t1 and (
            len(self.t1) > self.p or (in_b2 and len(self.t1) == int(self.p))
        ):
            self.b1.append(self.t1.pop(0))
        elif self.t2:
            self.b2.append(self.t2.pop(0))
        elif self.t1:
            self.b1.append(self.t1.pop(0))


#: A trace on which the int(p)-truncating ARC provably diverges from the
#: exact-p reference (found by randomized search; pinned for regression).
ARC_DIVERGENCE_CAPACITY = 5
ARC_DIVERGENCE_TRACE = [
    10, 14, 10, 5, 10, 2, 12, 4, 10, 1, 10, 11, 13, 4, 11, 10, 9, 6, 7,
    1, 5, 8, 3, 14, 7, 2, 14, 14, 6, 1, 2, 8, 3, 2, 13, 14, 13, 8,
]


class TestARCRegression:
    def test_pinned_trace_matches_exact_p_reference(self):
        """Regression (ISSUE 7): ARCCache must follow the exact-p REPLACE."""
        ref = RefARC(ARC_DIVERGENCE_CAPACITY)
        cache = ARCCache(ARC_DIVERGENCE_CAPACITY)
        ref_hits = [ref.access(k) for k in ARC_DIVERGENCE_TRACE]
        new_hits = [cache.access(k) for k in ARC_DIVERGENCE_TRACE]
        assert new_hits == ref_hits

    def test_pinned_trace_exposes_the_truncation_bug(self):
        """The same trace makes the old int(p) REPLACE pick a different
        victim — i.e. this trace genuinely fails before the fix."""
        old = OldIntPARC(ARC_DIVERGENCE_CAPACITY)
        ref = RefARC(ARC_DIVERGENCE_CAPACITY)
        old_hits = [old.access(k) for k in ARC_DIVERGENCE_TRACE]
        ref_hits = [ref.access(k) for k in ARC_DIVERGENCE_TRACE]
        assert old_hits != ref_hits

    @settings(max_examples=60, deadline=None)
    @given(trace=TRACES, capacity=CAPACITIES)
    def test_trace_equivalence_with_reference(self, trace, capacity):
        ref = RefARC(capacity)
        cache = ARCCache(capacity)
        for key in trace:
            assert cache.access(key) == ref.access(key)
            assert len(cache) <= capacity
        assert len(cache) == len(ref.t1) + len(ref.t2)

    def test_p_exposed_as_float(self):
        cache = ARCCache(4)
        assert isinstance(cache.p, float)


# --------------------------------------------- facade trace equivalence


class RefFIFO:
    """Reference FIFO (the pre-core implementation, verbatim semantics)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._queue: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> bool:
        if key in self._queue:
            return True
        if len(self._queue) >= self.capacity:
            self._queue.popitem(last=False)
        self._queue[key] = None
        return False


class RefLRU:
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._order: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> bool:
        if key in self._order:
            self._order.move_to_end(key)
            return True
        if len(self._order) >= self.capacity:
            self._order.popitem(last=False)
        self._order[key] = None
        return False


class RefClock:
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._keys: list[int] = []
        self._referenced: dict[int, bool] = {}
        self._hand = 0

    def access(self, key: int) -> bool:
        if key in self._referenced:
            self._referenced[key] = True
            return True
        if len(self._keys) < self.capacity:
            self._keys.append(key)
        else:
            while self._referenced[self._keys[self._hand]]:
                self._referenced[self._keys[self._hand]] = False
                self._hand = (self._hand + 1) % self.capacity
            victim = self._keys[self._hand]
            del self._referenced[victim]
            self._keys[self._hand] = key
            self._hand = (self._hand + 1) % self.capacity
        self._referenced[key] = False
        return False


class RefTwoQueue:
    """Pre-core 2Q for capacities >= 2, where its segment arithmetic was
    correct; the unified strategy must agree there exactly."""

    def __init__(self, capacity: int, probation_fraction: float = 0.25) -> None:
        self._probation_cap = max(1, int(capacity * probation_fraction))
        self._protected_cap = max(1, capacity - self._probation_cap)
        self._probation: OrderedDict[int, None] = OrderedDict()
        self._protected: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> bool:
        if key in self._protected:
            self._protected.move_to_end(key)
            return True
        if key in self._probation:
            del self._probation[key]
            if len(self._protected) >= self._protected_cap:
                self._protected.popitem(last=False)
            self._protected[key] = None
            return True
        if len(self._probation) >= self._probation_cap:
            self._probation.popitem(last=False)
        self._probation[key] = None
        return False


class TestFacadeTraceEquivalence:
    """The unified-core facades pick the same hits/victims as independent
    copies of the pre-core implementations (golden trace equivalence)."""

    @pytest.mark.parametrize(
        "make_new, make_ref",
        [
            (FIFOCache, RefFIFO),
            (LRUCache, RefLRU),
            (ClockCache, RefClock),
        ],
        ids=["fifo", "lru", "clock"],
    )
    @settings(max_examples=40, deadline=None)
    @given(trace=TRACES, capacity=CAPACITIES)
    def test_hit_sequences_identical(self, make_new, make_ref, trace, capacity):
        new = make_new(capacity)
        ref = make_ref(capacity)
        for key in trace:
            assert new.access(key) == ref.access(key)

    @settings(max_examples=40, deadline=None)
    @given(trace=TRACES, capacity=st.integers(min_value=2, max_value=12))
    def test_two_queue_identical_above_capacity_one(self, trace, capacity):
        new = TwoQueueCache(capacity)
        ref = RefTwoQueue(capacity)
        for key in trace:
            assert new.access(key) == ref.access(key)

    def test_importance_cache_semantics_preserved(self):
        importance = {0: 5.0, 1: 4.0, 2: 4.0, 3: 1.0}
        cache = ImportanceCache(3, importance)
        # Top 3 by (-importance, id): 0, 1, 2.  3 is never admitted.
        assert replay_trace(cache, [0, 1, 2, 3, 3, 3]) == pytest.approx(0.5)
        assert len(cache) == 3


# ------------------------------------------------------ membership replay


BATCH_TRACES = st.lists(
    st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=20),
    min_size=1,
    max_size=30,
)


class TestHotnessMembershipReplay:
    @settings(max_examples=30, deadline=None)
    @given(batches=BATCH_TRACES, capacity=st.integers(min_value=1, max_value=20))
    def test_dps_matches_hotness_window_exactly(self, batches, capacity):
        """The core-replayed DPS must agree bit-for-bit with the oracle
        window function Table VI uses."""
        arrays = [np.asarray(b, dtype=np.int64) for b in batches]
        expected = hotness_window_hit_ratio(arrays, capacity, window=4)
        replayed = replay_membership_trace(
            arrays, capacity, mode="dps", window=4
        )
        assert replayed == expected

    def test_cps_installs_once(self):
        batches = [np.array([1, 2, 3]), np.array([1, 2, 4])]
        cache = HotnessMembershipCache(2, mode="cps")
        cache.replay(batches)
        assert cache.rebuilds == 1
        assert cache.members() == {1, 2}

    def test_dps_rebuilds_per_window(self):
        batches = [np.array([i]) for i in range(8)]
        cache = HotnessMembershipCache(2, mode="dps", window=2)
        cache.replay(batches)
        assert cache.rebuilds == 4

    @settings(max_examples=20, deadline=None)
    @given(batches=BATCH_TRACES, capacity=st.integers(min_value=1, max_value=20))
    def test_adaptive_respects_capacity(self, batches, capacity):
        arrays = [np.asarray(b, dtype=np.int64) for b in batches]
        cache = HotnessMembershipCache(capacity, mode="adaptive", window=4)
        cache.replay(arrays)
        assert len(cache) <= capacity
        assert cache.rebuilds >= 1  # the first window always installs

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            HotnessMembershipCache(4, mode="belady")


# ------------------------------------------------------- pinned / serving


class TestPinnedStrategy:
    def test_install_past_capacity_raises(self):
        strategy = PinnedStrategy()
        CacheCore(2, strategy)
        with pytest.raises(CapacityError):
            strategy.install([1, 2, 3])

    def test_invalidate_rows_rewarns_on_access(self):
        strategy = PinnedStrategy()
        core = CacheCore(2, strategy)
        strategy.install([1, 2])
        assert core.access(1)
        strategy.invalidate_rows()
        assert len(core) == 0
        assert strategy.warming == {1, 2}
        # First access after the swap misses (re-pulls the fresh row)...
        assert not core.access(1)
        # ...then the key is resident again.
        assert core.access(1)
        assert strategy.members == {1}
        # Never-hot keys stay out.
        assert not core.access(9)
        assert not core.access(9)

    def test_install_replaces_warming(self):
        strategy = PinnedStrategy()
        CacheCore(2, strategy)
        strategy.install([1])
        strategy.invalidate_rows()
        strategy.install([2, 3])
        assert strategy.warming == set()
        assert strategy.members == {2, 3}


class TestCacheTableLedger:
    def test_install_overflow_raises_capacity_error(self):
        table = CacheTable(capacity=2, width=4)
        with pytest.raises(CapacityError, match="cannot install"):
            table.install(np.arange(3), np.zeros((3, 4)))

    def test_install_overflow_still_a_value_error(self):
        """Backward compatibility: pre-core callers caught ValueError."""
        table = CacheTable(capacity=2, width=4)
        with pytest.raises(ValueError):
            table.install(np.arange(3), np.zeros((3, 4)))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheTable(capacity=-1, width=4)


# ------------------------------------------------------------- LFU parity


class RefLFUCounts:
    """Min-scan LFU with historical counts (the pre-bucketing reference)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._counts: Counter[int] = Counter()
        self._members: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> bool:
        self._counts[key] += 1
        if key in self._members:
            self._members.move_to_end(key)
            return True
        if len(self._members) >= self.capacity:
            victim = min(self._members, key=lambda k: (self._counts[k], 0))
            del self._members[victim]
        self._members[key] = None
        return False


class TestLFUStrategyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(trace=TRACES, capacity=CAPACITIES)
    def test_matches_min_scan_reference(self, trace, capacity):
        new = make_cache("lfu", capacity)
        ref = RefLFUCounts(capacity)
        for key in trace:
            assert new.access(key) == ref.access(key)


# ---------------------------------------------------------------- shootout


class TestCacheShootout:
    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "cache-shootout" in EXPERIMENTS

    def test_parallel_identical_to_serial(self):
        """The --jobs grid must reproduce the serial report exactly."""
        from repro.experiments.cache_shootout import run_cache_shootout

        serial = run_cache_shootout(scale=0.02, jobs=1)
        parallel = run_cache_shootout(scale=0.02, jobs=2)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers
