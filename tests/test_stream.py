"""Tests for the streaming subsystem (repro.stream).

Covers the drift-generator determinism contract, the graph mutation API,
the drift detector and ADAPTIVE strategy, online ingestion bookkeeping,
checkpointing of grown tables, and — most importantly — the zero-drift
invariant: an ``OnlineTrainer`` fed an empty stream must reproduce the
static ``Trainer`` bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.kg.graph import KnowledgeGraph
from repro.stream import (
    AdaptiveStale,
    DriftDetector,
    DRIFT_PROFILES,
    EventStream,
    OnlineTrainer,
    PrequentialEvaluator,
    make_stream,
)
from repro.cache.filtering import HotSet


def quick_config(**overrides) -> TrainingConfig:
    defaults = dict(
        model="transe", dim=8, epochs=2, batch_size=32, num_negatives=4,
        num_machines=2, cache_capacity=64, sync_period=4, dps_window=8,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


# --------------------------------------------------------------- event streams


class TestEventStreams:
    def test_same_seed_same_fingerprint(self, small_graph):
        for profile in ("rotation", "zipf-shift", "burst"):
            a = make_stream(profile, small_graph, steps=64, seed=3)
            b = make_stream(profile, small_graph, steps=64, seed=3)
            assert a.fingerprint() == b.fingerprint(), profile
            assert len(a) == len(b) > 0

    def test_different_seed_different_stream(self, small_graph):
        a = make_stream("rotation", small_graph, steps=64, seed=3)
        b = make_stream("rotation", small_graph, steps=64, seed=4)
        assert a.fingerprint() != b.fingerprint()

    def test_none_profile_is_empty(self, small_graph):
        stream = make_stream("none", small_graph, steps=64, seed=0)
        assert len(stream) == 0
        assert stream.total_inserts == stream.total_deletes == 0

    def test_unknown_profile_raises(self, small_graph):
        with pytest.raises(KeyError, match="unknown drift profile"):
            make_stream("wobble", small_graph, steps=8)

    def test_all_profiles_registered(self):
        assert set(DRIFT_PROFILES) == {"none", "rotation", "zipf-shift", "burst"}

    def test_steps_monotone_and_vocab_nondecreasing(self, small_graph):
        for profile in ("rotation", "zipf-shift", "burst"):
            stream = make_stream(profile, small_graph, steps=96, seed=1)
            steps = [u.step for u in stream]
            assert steps == sorted(steps)
            ents = [u.num_entities for u in stream]
            rels = [u.num_relations for u in stream]
            assert ents == sorted(ents) and rels == sorted(rels)
            assert ents[0] >= small_graph.num_entities

    def test_updates_reference_valid_ids(self, small_graph):
        stream = make_stream("rotation", small_graph, steps=96, seed=1)
        for u in stream:
            for block in (u.inserts, u.deletes):
                if not len(block):
                    continue
                assert block[:, [0, 2]].max() < u.num_entities
                assert block[:, 1].max() < u.num_relations
                assert block.min() >= 0

    def test_rotation_mints_new_entities(self, small_graph):
        stream = make_stream("rotation", small_graph, steps=256, seed=1)
        assert stream.updates[-1].num_entities > small_graph.num_entities

    def test_burst_takes_shared_insert_knob(self, small_graph):
        stream = make_stream(
            "burst", small_graph, steps=64, seed=0,
            interval=8, inserts_per_update=32,
        )
        assert max(len(u.inserts) for u in stream) <= 32


# ------------------------------------------------------------- graph mutation


class TestGraphMutation:
    def test_mutated_sees_new_triples(self, tiny_graph):
        """Regression: the grown graph's probes must see appended triples."""
        # Warm the original's caches first, so stale-cache sharing would
        # be caught.
        assert not tiny_graph.triple_index().contains(5, 1, 2)
        grown = tiny_graph.mutated(inserts=np.array([[5, 1, 2]]))
        assert grown.triple_index().contains(5, 1, 2)
        assert bool(
            grown.triple_index().contains_batch(
                np.array([5]), np.array([1]), np.array([2])
            )[0]
        )
        # The original instance is untouched.
        assert not tiny_graph.triple_index().contains(5, 1, 2)
        assert tiny_graph.num_triples + 1 == grown.num_triples

    def test_mutated_removes_deletes_by_value(self, tiny_graph):
        grown = tiny_graph.mutated(deletes=np.array([[0, 0, 1], [9, 9, 9]]))
        assert not grown.triple_index().contains(0, 0, 1)
        assert grown.num_triples == tiny_graph.num_triples - 1

    def test_mutated_grows_vocab(self, tiny_graph):
        grown = tiny_graph.mutated(
            inserts=np.array([[6, 0, 7]]), num_entities=8
        )
        assert grown.num_entities == 8
        assert grown.entity_degrees()[6] == 1

    def test_mutated_noop_returns_self(self, tiny_graph):
        assert tiny_graph.mutated() is tiny_graph

    def test_mutated_rejects_shrink(self, tiny_graph):
        with pytest.raises(ValueError, match="cannot shrink"):
            tiny_graph.mutated(num_entities=3)

    def test_invalidate_caches_refreshes_derived_state(self, tiny_graph):
        g = KnowledgeGraph(
            tiny_graph.triples.copy(),
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
        )
        before = g.entity_degrees()
        assert g.triple_index().contains(0, 0, 1)
        g.triples[0] = (0, 0, 2)  # in-place edit
        g.invalidate_caches()
        assert g.triple_index().contains(0, 0, 2)
        assert not g.triple_index().contains(0, 0, 1)
        assert not np.array_equal(before, g.entity_degrees())


# ------------------------------------------------------------- drift detection


class TestDriftDetector:
    def _hot(self, ents, rels):
        return HotSet(
            entities=np.asarray(ents, dtype=np.int64),
            relations=np.asarray(rels, dtype=np.int64),
        )

    def test_identical_membership_no_trigger(self):
        det = DriftDetector(threshold=0.65)
        sig = det.observe(
            self._hot([1, 2, 3], [0]),
            np.array([1, 2, 3]), np.array([0]),
            coverage=1.0, candidate_coverage=1.0,
        )
        assert sig.jaccard == 1.0
        assert not sig.triggered

    def test_disjoint_membership_triggers(self):
        det = DriftDetector(threshold=0.65)
        sig = det.observe(
            self._hot([4, 5, 6], [1]),
            np.array([1, 2, 3]), np.array([0]),
            coverage=0.9, candidate_coverage=0.9,
        )
        assert sig.jaccard == 0.0
        assert sig.triggered

    def test_coverage_ewma_triggers_when_low(self):
        det = DriftDetector(threshold=0.65, ewma_alpha=1.0)
        sig = det.observe(
            self._hot([1], []), np.array([1]), np.array([]),
            coverage=0.2, candidate_coverage=0.2,
        )
        assert sig.coverage_ewma == pytest.approx(0.2)
        assert sig.triggered

    def test_gain_margin_triggers_on_slow_drift(self):
        """High absolute coverage, but a rebuild would still pay off."""
        det = DriftDetector(threshold=0.5, gain_margin=0.02)
        sig = det.observe(
            self._hot([1, 2], [0]), np.array([1, 2, 3]), np.array([0]),
            coverage=0.90, candidate_coverage=0.97,
        )
        assert sig.triggered

    def test_signals_recorded(self):
        det = DriftDetector()
        for _ in range(3):
            det.observe(
                self._hot([1], [0]), np.array([1]), np.array([0]),
                coverage=1.0, candidate_coverage=1.0,
            )
        assert len(det.signals) == 3


class TestAdaptiveStrategy:
    def test_config_accepts_adaptive(self):
        cfg = quick_config(cache_strategy="adaptive")
        assert cfg.cache_strategy == "adaptive"

    def test_config_validates_knobs(self):
        with pytest.raises(ValueError):
            quick_config(adaptive_threshold=1.5)
        with pytest.raises(ValueError):
            quick_config(adaptive_decay=-0.1)

    def test_make_trainer_hetkg_a(self):
        trainer = make_trainer("hetkg-a", quick_config())
        assert trainer.config.cache_strategy == "adaptive"

    def test_trains_and_counts_rebuilds(self, small_split):
        trainer = make_trainer("hetkg-a", quick_config(epochs=1))
        result = trainer.train(small_split.train)
        rebuilds = sum(
            w.strategy.rebuilds
            for w in trainer.workers
            if isinstance(w.strategy, AdaptiveStale)
        )
        assert rebuilds >= len(trainer.workers)  # the setup() rebuilds
        assert result.cache_hit_ratio > 0.0

    def test_observes_at_half_window(self):
        strategy = AdaptiveStale(capacity=16, window=8)
        assert strategy.window == 4


# ------------------------------------------------------- zero-drift invariant


class TestZeroDriftIdentity:
    """The golden contract: an empty stream reproduces static training."""

    @pytest.mark.parametrize("system", ["dglke", "hetkg-c", "hetkg-d", "hetkg-a"])
    def test_bit_identical_to_static(self, small_split, system):
        config = quick_config(epochs=1)
        static = make_trainer(system, config)
        static_result = static.train(small_split.train)

        online_trainer = make_trainer(system, config)
        online = OnlineTrainer(online_trainer, EventStream())
        online_result = online.train(small_split.train)

        for kind in ("entity", "relation"):
            np.testing.assert_array_equal(
                static.server.store.table(kind),
                online_trainer.server.store.table(kind),
                err_msg=f"{system}/{kind} tables diverged with empty stream",
            )
        assert online_result.sim_time == static_result.sim_time
        assert (
            online_result.comm_totals.remote_bytes
            == static_result.comm_totals.remote_bytes
        )
        assert online_result.cache_hit_ratio == static_result.cache_hit_ratio
        assert online_result.ingest_time == 0.0
        assert online_result.updates_applied == 0


# ------------------------------------------------------------ online training


class TestOnlineTraining:
    def _run(self, system="hetkg-d", profile="rotation", **stream_knobs):
        from repro.kg.datasets import generate_dataset

        graph = generate_dataset("fb15k", scale=0.012, seed=7)
        config = quick_config(epochs=1)
        stream = make_stream(
            profile, graph, steps=200, seed=5,
            **({"interval": 8, "inserts_per_update": 16} | stream_knobs),
        )
        trainer = make_trainer(system, config)
        online = OnlineTrainer(trainer, stream, eval_every=32)
        return trainer, online, online.train(graph), stream

    def test_counters_match_applied_updates(self):
        trainer, online, result, stream = self._run()
        assert 0 < result.updates_applied <= len(stream)
        applied = stream.updates[: result.updates_applied]
        assert result.triples_inserted == sum(len(u.inserts) for u in applied)
        from repro.kg.datasets import generate_dataset

        initial = generate_dataset("fb15k", scale=0.012, seed=7).num_entities
        assert result.entities_added == applied[-1].num_entities - initial
        assert result.entities_added > 0

    def test_store_grows_with_stream(self):
        trainer, online, result, stream = self._run()
        n_final = stream.updates[result.updates_applied - 1].num_entities
        assert len(trainer.server.store.table("entity")) == n_final
        assert online.graph.num_entities == n_final
        # Grown accumulators follow the table shape.
        acc = trainer.server.optimizer._accumulators["entity"]
        assert acc.shape == trainer.server.store.table("entity").shape

    def test_deletions_invalidate_cache_rows(self):
        _, _, result, _ = self._run(system="hetkg-c")
        assert result.triples_deleted > 0
        assert result.cache_rows_invalidated > 0

    def test_ingest_time_charged(self):
        _, _, result, _ = self._run()
        assert result.ingest_time > 0.0
        assert result.comm_totals.remote_bytes > 0

    def test_prequential_points_produced(self):
        _, _, result, _ = self._run()
        assert result.prequential.points
        assert 0.0 <= result.prequential.final_mrr <= 1.0

    def test_checkpoint_roundtrip_after_growth(self, tmp_path):
        """Grown tables (and their accumulators) survive a save/load."""
        trainer, online, result, _ = self._run()
        assert result.entities_added > 0
        path = tmp_path / "grown.npz"
        save_checkpoint(trainer, path)
        entity_before = trainer.server.store.table("entity").copy()
        acc_before = trainer.server.optimizer._accumulators["entity"].copy()
        for worker in trainer.workers:
            worker.step()
        load_checkpoint(trainer, path)
        np.testing.assert_array_equal(
            entity_before, trainer.server.store.table("entity")
        )
        np.testing.assert_array_equal(
            acc_before, trainer.server.optimizer._accumulators["entity"]
        )


# -------------------------------------------------------------------- wiring


class TestWiring:
    def test_experiment_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "streaming-drift" in EXPERIMENTS

    def test_report_settings_present(self):
        from repro.experiments.paper_reference import PAPER_REFERENCES
        from repro.experiments.report import REPORT_SETTINGS

        assert "streaming-drift" in REPORT_SETTINGS
        assert "streaming-drift" in PAPER_REFERENCES

    def test_cli_stream_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "stream", "--scale", "0.015", "--epochs", "1",
                "--profile", "rotation", "--system", "hetkg-a",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "profile=rotation" in out
        assert "hit ratio" in out
        assert "applied" in out

    def test_cli_stream_rejects_pbg(self, capsys):
        from repro.cli import main

        assert main(["stream", "--system", "pbg"]) == 2

    def test_serving_frontend_warm_from(self, small_split):
        from repro.serving.frontend import ServingFrontend
        from repro.serving.store import EmbeddingStore

        trainer = make_trainer("hetkg-d", quick_config(epochs=1))
        trainer.train(small_split.train)
        worker_cache = trainer.workers[0].cache
        store = EmbeddingStore(trainer.model, trainer.server.store)
        frontend = ServingFrontend(store)
        frontend.warm_from(worker_cache)
        assert frontend.cache is not None
        expected = len(worker_cache.cached_ids("entity")) + len(
            worker_cache.cached_ids("relation")
        )
        assert expected > 0


# ---------------------------------------------------------------- prequential


class TestPrequentialEvaluator:
    def test_window_slides(self, small_split):
        trainer = make_trainer("hetkg-d", quick_config(epochs=1))
        trainer.train(small_split.train)
        ev = PrequentialEvaluator(trainer.model, window=8, max_queries=4, seed=0)
        triples = small_split.train.triples[:20]
        ev.observe(triples)
        assert ev.holdout_size == 8  # deque cap
        store = trainer.server.store
        point = ev.evaluate(
            step=1,
            entity_table=store.table("entity"),
            relation_table=store.table("relation"),
            num_relations=small_split.train.num_relations,
        )
        assert 0.0 <= point.mrr <= 1.0
        assert ev.result.points[-1] is point

    def test_empty_holdout_result(self, small_split):
        trainer = make_trainer("hetkg-d", quick_config(epochs=1))
        trainer.setup(small_split.train)
        ev = PrequentialEvaluator(trainer.model)
        assert ev.holdout_size == 0
        assert ev.result.final_mrr == 0.0
        assert ev.result.points == []
