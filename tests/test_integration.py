"""End-to-end integration tests: real training runs on structured synthetic
graphs, checking that the system *learns* and that the paper's headline
relationships hold."""

import numpy as np
import pytest

from repro import (
    TrainingConfig,
    generate_dataset,
    make_trainer,
    split_triples,
)


@pytest.fixture(scope="module")
def bundle():
    graph = generate_dataset("fb15k", scale=0.02, seed=11)
    split = split_triples(graph, seed=11)
    return graph, split


def config(**overrides):
    defaults = dict(
        model="transe",
        dim=16,
        epochs=8,
        batch_size=64,
        num_negatives=8,
        num_machines=2,
        cache_capacity=256,
        dps_window=8,
        sync_period=8,
        seed=2,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestLearning:
    @pytest.mark.parametrize("system", ["dglke", "hetkg-c", "hetkg-d", "pbg"])
    def test_beats_chance_mrr(self, bundle, system):
        """Every system must learn: trained MRR well above the analytic
        chance level for full-candidate ranking."""
        graph, split = bundle
        trainer = make_trainer(system, config())
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=100,
            eval_candidates=None,
        )
        n = graph.num_entities
        chance = float((1.0 / np.arange(1, n + 1)).sum() / n)
        assert result.final_metrics["mrr"] > 3 * chance

    def test_distmult_also_learns(self, bundle):
        graph, split = bundle
        trainer = make_trainer("hetkg-d", config(model="distmult"))
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            eval_max_queries=100,
            eval_candidates=None,
        )
        n = graph.num_entities
        chance = float((1.0 / np.arange(1, n + 1)).sum() / n)
        assert result.final_metrics["mrr"] > 2 * chance

    def test_more_epochs_better_loss(self, bundle):
        graph, split = bundle
        result = make_trainer("hetkg-c", config(epochs=8)).train(split.train)
        losses = result.history.losses()
        assert losses[-1] < 0.8 * losses[0]


class TestPaperHeadlines:
    """Table III-V / Fig. 7 shapes at integration-test scale."""

    @pytest.fixture(scope="class")
    def results(self, bundle):
        graph, split = bundle
        out = {}
        for system in ("pbg", "dglke", "hetkg-c", "hetkg-d"):
            trainer = make_trainer(system, config(num_machines=4, epochs=4))
            out[system] = trainer.train(
                split.train,
                eval_graph=split.test,
                eval_max_queries=80,
                eval_candidates=None,
            )
        return out

    def test_speed_ordering(self, results):
        """HET-KG <= DGL-KE < PBG in simulated training time."""
        assert results["hetkg-c"].sim_time < results["dglke"].sim_time
        assert results["hetkg-d"].sim_time < results["dglke"].sim_time
        assert results["dglke"].sim_time < results["pbg"].sim_time

    def test_accuracy_comparable(self, results):
        """All systems land within a factor-2 MRR band (paper: comparable
        accuracy across systems)."""
        mrrs = [r.final_metrics["mrr"] for r in results.values()]
        assert max(mrrs) < 2.5 * min(mrrs)

    def test_communication_fraction_dominates_for_dglke(self, results):
        """Table I: with 1 Gbps networking, communication is the majority
        of DGL-KE's time."""
        assert results["dglke"].communication_fraction > 0.5

    def test_hetkg_reduces_comm_bytes(self, results):
        dglke_remote = results["dglke"].comm_totals.remote_bytes
        hetkg_remote = results["hetkg-d"].comm_totals.remote_bytes
        assert hetkg_remote < dglke_remote

    def test_cache_hit_ratios_meaningful(self, results):
        assert results["hetkg-c"].cache_hit_ratio > 0.2
        assert results["hetkg-d"].cache_hit_ratio > 0.2


class TestDeterminism:
    def test_full_run_bitwise_reproducible(self, bundle):
        graph, split = bundle
        a = make_trainer("hetkg-d", config(epochs=2)).train(split.train)
        b = make_trainer("hetkg-d", config(epochs=2)).train(split.train)
        assert a.history.losses() == b.history.losses()
        assert a.sim_time == b.sim_time
        assert a.cache_hit_ratio == b.cache_hit_ratio

    def test_seed_changes_run(self, bundle):
        graph, split = bundle
        a = make_trainer("hetkg-d", config(epochs=2, seed=1)).train(split.train)
        b = make_trainer("hetkg-d", config(epochs=2, seed=2)).train(split.train)
        assert a.history.losses() != b.history.losses()


class TestStalenessEffect:
    def test_very_stale_cache_does_not_diverge(self, bundle):
        """Even with P=128 the bounded synchronization must keep training
        stable (loss decreasing, finite metrics)."""
        graph, split = bundle
        result = make_trainer("hetkg-c", config(sync_period=128)).train(
            split.train,
            eval_graph=split.test,
            eval_max_queries=50,
            eval_candidates=None,
        )
        losses = result.history.losses()
        assert losses[-1] < losses[0]
        assert np.isfinite(result.final_metrics["mrr"])

    def test_tight_sync_costs_more_communication(self, bundle):
        graph, split = bundle
        tight = make_trainer("hetkg-c", config(sync_period=1, epochs=2)).train(split.train)
        loose = make_trainer("hetkg-c", config(sync_period=32, epochs=2)).train(split.train)
        assert tight.communication_time > loose.communication_time
