"""Tests for repro.kg.splits."""

import numpy as np
import pytest

from repro.kg.splits import split_triples


class TestSplitTriples:
    def test_sizes(self, small_graph):
        split = split_triples(small_graph, 0.8, 0.1, seed=0)
        n = small_graph.num_triples
        assert split.train.num_triples == round(n * 0.8)
        assert split.valid.num_triples == round(n * 0.1)
        total = (
            split.train.num_triples
            + split.valid.num_triples
            + split.test.num_triples
        )
        assert total == n

    def test_disjoint_and_covering(self, small_graph):
        split = split_triples(small_graph, seed=1)
        train = split.train.triple_set()
        valid = split.valid.triple_set()
        test = split.test.triple_set()
        assert not train & valid
        assert not train & test
        assert not valid & test
        # Union covers (duplicates impossible: generator dedupes).
        assert len(train | valid | test) == small_graph.num_triples

    def test_vocab_preserved(self, small_graph):
        split = split_triples(small_graph, seed=1)
        for sub in (split.train, split.valid, split.test):
            assert sub.num_entities == small_graph.num_entities
            assert sub.num_relations == small_graph.num_relations

    def test_deterministic(self, small_graph):
        a = split_triples(small_graph, seed=3)
        b = split_triples(small_graph, seed=3)
        assert np.array_equal(a.train.triples, b.train.triples)

    def test_all_triples_union(self, small_graph):
        split = split_triples(small_graph, seed=0)
        assert len(split.all_triples()) == small_graph.num_triples

    def test_invalid_fractions_rejected(self, small_graph):
        with pytest.raises(ValueError, match="exceed"):
            split_triples(small_graph, 0.9, 0.2)
        with pytest.raises(ValueError):
            split_triples(small_graph, -0.1, 0.1)
