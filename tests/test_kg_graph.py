"""Tests for repro.kg.graph."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph


class TestConstruction:
    def test_basic(self, tiny_graph):
        assert tiny_graph.num_entities == 6
        assert tiny_graph.num_relations == 2
        assert tiny_graph.num_triples == 8
        assert len(tiny_graph) == 8

    def test_infers_vocab_sizes(self):
        g = KnowledgeGraph([(0, 0, 3)])
        assert g.num_entities == 4
        assert g.num_relations == 1

    def test_empty_graph(self):
        g = KnowledgeGraph(np.empty((0, 3), dtype=np.int64))
        assert g.num_triples == 0
        assert g.num_entities == 0

    def test_explicit_vocab_larger_than_ids(self):
        g = KnowledgeGraph([(0, 0, 1)], num_entities=10, num_relations=5)
        assert g.num_entities == 10

    def test_vocab_smaller_than_ids_rejected(self):
        with pytest.raises(ValueError, match="num_entities"):
            KnowledgeGraph([(0, 0, 9)], num_entities=5)
        with pytest.raises(ValueError, match="num_relations"):
            KnowledgeGraph([(0, 7, 1)], num_relations=2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            KnowledgeGraph(np.zeros((3, 2), dtype=np.int64))

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            KnowledgeGraph([(-1, 0, 1)])

    def test_label_length_checked(self):
        with pytest.raises(ValueError, match="entity_labels"):
            KnowledgeGraph([(0, 0, 1)], entity_labels=["only-one"])

    def test_repr(self, tiny_graph):
        assert "entities=6" in repr(tiny_graph)


class TestAccess:
    def test_iter_yields_int_tuples(self, tiny_graph):
        first = next(iter(tiny_graph))
        assert first == (0, 0, 1)
        assert all(isinstance(x, int) for x in first)

    def test_contains(self, tiny_graph):
        assert (0, 0, 1) in tiny_graph
        assert (1, 1, 1) not in tiny_graph

    def test_triple_set_cached(self, tiny_graph):
        assert tiny_graph.triple_set() is tiny_graph.triple_set()


class TestStructure:
    def test_entity_degrees(self, tiny_graph):
        degrees = tiny_graph.entity_degrees()
        # Entity 0 appears in (0,0,1), (5,0,0), (0,1,3) -> degree 3.
        assert degrees[0] == 3
        assert degrees.sum() == 2 * tiny_graph.num_triples

    def test_relation_counts(self, tiny_graph):
        counts = tiny_graph.relation_counts()
        assert counts.sum() == tiny_graph.num_triples
        assert counts[0] == 5
        assert counts[1] == 3

    def test_adjacency_symmetric(self, tiny_graph):
        adj = tiny_graph.adjacency()
        for u, neighbors in adj.items():
            for v in neighbors:
                assert u in adj[v]

    def test_adjacency_skips_self_loops(self):
        g = KnowledgeGraph([(0, 0, 0), (0, 0, 1)])
        adj = g.adjacency()
        assert 0 not in adj[0]

    def test_subgraph_keeps_vocab(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 2]))
        assert sub.num_triples == 2
        assert sub.num_entities == tiny_graph.num_entities
        assert sub.num_relations == tiny_graph.num_relations

    def test_subgraph_rows_match(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([3]))
        assert tuple(sub.triples[0]) == (3, 0, 4)


class TestFromLabeled:
    def test_roundtrip_ids(self):
        g = KnowledgeGraph.from_labeled_triples(
            [("alice", "knows", "bob"), ("bob", "knows", "carol")]
        )
        assert g.num_entities == 3
        assert g.num_relations == 1
        assert g.entity_labels == ["alice", "bob", "carol"]

    def test_first_seen_order(self):
        g = KnowledgeGraph.from_labeled_triples([("x", "r", "y"), ("y", "r", "x")])
        assert g.entity_labels == ["x", "y"]
        assert g.num_triples == 2
