"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative("x", -1)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_inclusive_accepts_bounds(self, value):
        check_fraction("x", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_fraction("x", value)

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_exclusive_rejects_bounds(self, value):
        with pytest.raises(ValueError):
            check_fraction("x", value, inclusive=False)

    def test_exclusive_accepts_interior(self):
        check_fraction("x", 0.5, inclusive=False)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("mode", "a", ("a", "b"))

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_in("mode", "c", ("a", "b"))
