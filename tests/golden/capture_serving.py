"""Capture the serving-frontend golden fingerprint used by test_serving_scale.py.

Run from the repo root::

    PYTHONPATH=src python tests/golden/capture_serving.py

``serving_golden.json`` pins the *pre-overload-layer* outputs of a seeded
serve-bench scenario (report numbers, per-category sim clock, comm totals)
down to the last bit: floats are stored via ``float.hex()``.  The
overload-robust frontend (admission control, load shedding, fault channel,
versioned deployment) must reproduce every value exactly when all of those
features are disabled — ``faults=none``, no tenants, admission off.

Regenerate only when a PR *intentionally* changes the plain serving path.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.config import TrainingConfig  # noqa: E402
from repro.core.trainer import make_trainer  # noqa: E402
from repro.kg.datasets import generate_dataset  # noqa: E402
from repro.kg.splits import split_triples  # noqa: E402
from repro.serving.batcher import QueryBatcher  # noqa: E402
from repro.serving.cache import ServingCache  # noqa: E402
from repro.serving.frontend import ServingFrontend  # noqa: E402
from repro.serving.queries import QueryLog  # noqa: E402
from repro.serving.store import EmbeddingStore  # noqa: E402
from repro.serving.workload import WorkloadSpec, ZipfianWorkload  # noqa: E402

GOLDEN_PATH = pathlib.Path(__file__).parent / "serving_golden.json"


def golden_store() -> tuple[EmbeddingStore, ZipfianWorkload]:
    graph = generate_dataset("fb15k", scale=0.02, seed=3)
    split = split_triples(graph, seed=3)
    config = TrainingConfig(
        model="transe",
        dim=8,
        epochs=1,
        batch_size=32,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        sync_period=4,
        seed=0,
    )
    trainer = make_trainer("hetkg-d", config)
    trainer.train(split.train)
    store = EmbeddingStore.from_trainer(trainer)
    spec = WorkloadSpec(num_queries=600, arrival_rate=2000.0, seed=11)
    workload = ZipfianWorkload.from_graph(graph, spec)
    return store, workload


def serve_fingerprint(store, log, cache) -> dict:
    frontend = ServingFrontend(
        store,
        batcher=QueryBatcher(max_batch=16, max_wait=2e-3),
        cache=cache,
        byte_scale=25.0,
    )
    report = frontend.run(log.queries)
    answers = []
    for result in frontend.results[:50]:
        value = result.answer
        if hasattr(value, "tolist"):
            answers.append([int(v) for v in value.tolist()])
        else:
            answers.append(float(value).hex())
    return {
        "num_queries": report.num_queries,
        "duration": float(report.duration).hex(),
        "latency_mean": float(report.latency_mean).hex(),
        "latency_p50": float(report.latency_p50).hex(),
        "latency_p95": float(report.latency_p95).hex(),
        "latency_p99": float(report.latency_p99).hex(),
        "latency_max": float(report.latency_max).hex(),
        "hit_ratio": float(report.hit_ratio).hex(),
        "num_batches": report.num_batches,
        "mean_batch_size": float(report.mean_batch_size).hex(),
        "clock_elapsed": float(frontend.clock.elapsed).hex(),
        "clock_compute": float(frontend.clock.category("compute")).hex(),
        "clock_communication": float(
            frontend.clock.category("communication")
        ).hex(),
        "clock_idle": float(frontend.clock.category("idle")).hex(),
        "local_bytes": int(frontend.comm_totals.local_bytes),
        "remote_bytes": int(frontend.comm_totals.remote_bytes),
        "local_messages": int(frontend.comm_totals.local_messages),
        "remote_messages": int(frontend.comm_totals.remote_messages),
        "answers_head": answers,
    }


def capture() -> dict:
    store, workload = golden_store()
    log = workload.generate()
    cut = len(log) // 4
    warmup, measured = QueryLog(log.queries[:cut]), QueryLog(log.queries[cut:])
    capacity = max(2, int(0.1 * (store.num_entities + store.num_relations)))
    return {
        "config": "fb15k scale=0.02 seed=3, hetkg-d 1 epoch, 600 queries",
        "no-cache": serve_fingerprint(store, measured, None),
        "static": serve_fingerprint(
            store, measured, ServingCache.from_query_log(warmup, capacity)
        ),
        "lru": serve_fingerprint(
            store, measured, ServingCache.dynamic(capacity, policy="lru")
        ),
    }


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
