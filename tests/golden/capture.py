"""Capture the golden-run fingerprint used by test_perf_equivalence.py.

Run from the repo root::

    PYTHONPATH=src python tests/golden/capture.py

The resulting ``train_golden.json`` pins the *pre-refactor* outputs of
seeded HET-KG-C / HET-KG-D / DGL-KE runs (losses, comm totals, cache hit
counters, eval metrics) down to the last bit: floats are stored via
``float.hex()`` so the equivalence suite can assert bit-identity, not
approximate closeness.  The vectorized hot-path kernels (PR 4) must
reproduce every value exactly.

Regenerate only when a PR *intentionally* changes numerics (e.g. a new
optimizer default) — never to paper over an unintended kernel divergence.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.config import TrainingConfig  # noqa: E402
from repro.core.trainer import make_trainer  # noqa: E402
from repro.kg.datasets import generate_dataset  # noqa: E402
from repro.kg.splits import split_triples  # noqa: E402

GOLDEN_PATH = pathlib.Path(__file__).parent / "train_golden.json"

#: Systems whose kernels the perf pass touches (PBG has its own loop and
#: is covered by the tier-1 suite).
SYSTEMS = ("hetkg-c", "hetkg-d", "dglke")


def golden_config(**overrides) -> TrainingConfig:
    defaults = dict(
        model="transe",
        dim=8,
        epochs=2,
        batch_size=32,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        sync_period=4,
        dps_window=8,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def fingerprint(system: str, *, filtered_negatives: bool = False,
                eval_candidates: int | None = 40) -> dict:
    """Train one system on the seeded small graph and fingerprint the run."""
    graph = generate_dataset("fb15k", scale=0.02, seed=3)
    split = split_triples(graph, seed=3)
    config = golden_config(filter_false_negatives=filtered_negatives)
    trainer = make_trainer(system, config)
    result = trainer.train(
        split.train,
        eval_graph=split.test,
        filter_set=graph.triple_set(),
        eval_max_queries=30,
        eval_candidates=eval_candidates,
    )
    hits = miss = 0
    for worker in trainer.workers:
        if worker.cache is not None:
            stats = worker.cache.combined_stats()
            hits += stats.hits
            miss += stats.misses
    return {
        "losses": [float(p.loss).hex() for p in result.history.points],
        "sim_time": float(result.sim_time).hex(),
        "compute_time": float(result.compute_time).hex(),
        "communication_time": float(result.communication_time).hex(),
        "local_bytes": int(result.comm_totals.local_bytes),
        "remote_bytes": int(result.comm_totals.remote_bytes),
        "local_messages": int(result.comm_totals.local_messages),
        "remote_messages": int(result.comm_totals.remote_messages),
        "cache_hits": hits,
        "cache_misses": miss,
        "cache_hit_ratio": float(result.cache_hit_ratio).hex(),
        "metrics": {
            k: float(v).hex() for k, v in sorted(result.final_metrics.items())
        },
    }


def capture() -> dict:
    golden: dict = {"config": "golden_config() @ fb15k scale=0.02 seed=3"}
    for system in SYSTEMS:
        golden[system] = fingerprint(system)
    # RNG-sensitive satellites: the false-negative resampler (per-entry
    # retry draws) and the full-ranking evaluation path.
    golden["hetkg-d+filtered-negatives"] = fingerprint(
        "hetkg-d", filtered_negatives=True
    )
    golden["dglke+full-ranking-eval"] = fingerprint(
        "dglke", eval_candidates=None
    )
    return golden


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
