"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig8a" in out


class TestRun:
    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "0.015"]) == 0
        out = capsys.readouterr().out
        assert "[table2]" in out
        assert "fb15k" in out
        assert "wall time" in out

    def test_run_with_epochs_override(self, capsys):
        assert main(["run", "table1", "--scale", "0.015", "--epochs", "1"]) == 0
        assert "[table1]" in capsys.readouterr().out

    def test_unknown_experiment_exits_with_suggestions(self, capsys):
        assert main(["run", "table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'table99'" in err
        assert "did you mean" in err
        assert "table7" in err

    def test_unknown_experiment_lists_valid_ids(self, capsys):
        # A name nothing like any id still gets the full list.
        assert main(["run", "zzzzz"]) == 2
        err = capsys.readouterr().err
        assert "valid ids" in err
        assert "table2" in err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_epochs_ignored_when_not_accepted(self, capsys):
        # table2's runner takes no epochs parameter; the flag must not crash.
        assert main(["run", "table2", "--scale", "0.015", "--epochs", "3"]) == 0


class TestServeBench:
    def test_serve_bench_trains_and_serves(self, capsys):
        rc = main(
            [
                "serve-bench", "--dataset", "fb15k", "--scale", "0.015",
                "--epochs", "1", "--machines", "2", "--queries", "400",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no-cache" in out
        assert "p99" in out
        assert "hit" in out

    def test_serve_bench_from_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "serve.npz"
        assert main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.015",
                "--epochs", "1", "--machines", "2", "--eval-queries", "2",
                "--checkpoint", str(ckpt),
            ]
        ) == 0
        capsys.readouterr()
        rc = main(
            [
                "serve-bench", "--checkpoint", str(ckpt), "--machines", "2",
                "--queries", "400", "--cache-policy", "lru",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "lru" in out


class TestTrain:
    def test_train_builtin_dataset(self, capsys):
        rc = main(
            [
                "train", "--dataset", "wn18", "--scale", "0.02",
                "--epochs", "1", "--machines", "2", "--eval-queries", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HET-KG" in out
        assert "MRR" in out

    def test_train_tsv(self, tmp_path, capsys, tiny_graph):
        from repro.kg.datasets import save_tsv

        path = tmp_path / "g.tsv"
        save_tsv(tiny_graph, path)
        rc = main(
            [
                "train", "--tsv", str(path), "--epochs", "1",
                "--machines", "1", "--batch-size", "4", "--negatives", "2",
                "--eval-queries", "2",
            ]
        )
        assert rc == 0

    def test_train_with_checkpoint(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        rc = main(
            [
                "train", "--dataset", "wn18", "--scale", "0.02",
                "--epochs", "1", "--machines", "2", "--eval-queries", "2",
                "--checkpoint", str(ckpt),
            ]
        )
        assert rc == 0
        assert ckpt.exists()

    def test_train_pbg_rejects_checkpoint(self, tmp_path, capsys):
        rc = main(
            [
                "train", "--dataset", "wn18", "--scale", "0.02",
                "--system", "pbg", "--epochs", "1", "--eval-queries", "2",
                "--checkpoint", str(tmp_path / "x.npz"),
            ]
        )
        assert rc == 1


class TestBackendFlag:
    def test_unknown_backend_suggests_and_exits_2(self, capsys):
        rc = main(["train", "--backend", "mpp"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown backend 'mpp'" in err
        assert "did you mean: mp" in err
        assert "valid backends: sim, mp" in err

    def test_mp_flags_require_mp_backend(self, capsys):
        rc = main(["train", "--mp-schedule", "sync"])
        assert rc == 2
        assert "--mp-schedule" in capsys.readouterr().err

        rc = main(["serve-bench", "--mp-workers", "2"])
        assert rc == 2
        assert "--mp-workers" in capsys.readouterr().err

    def test_train_mp_rejects_faults(self, capsys):
        rc = main(["train", "--backend", "mp", "--faults", "drop=0.1"])
        assert rc == 2
        assert "--faults" in capsys.readouterr().err

    def test_train_mp_rejects_tiered_backing(self, capsys):
        rc = main(["train", "--backend", "mp", "--backing", "tiered"])
        assert rc == 2
        assert "tiered" in capsys.readouterr().err

    def test_train_mp_rejects_pbg(self, capsys):
        rc = main(["train", "--backend", "mp", "--system", "pbg"])
        assert rc == 2
        assert "pbg" in capsys.readouterr().err

    def test_serve_bench_mp_rejects_overload_flags(self, capsys):
        rc = main(["serve-bench", "--backend", "mp", "--slo", "0.01"])
        assert rc == 2
        assert "--slo" in capsys.readouterr().err

    def test_train_mp_sync_prints_reconciliation(self, capsys):
        rc = main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.015",
                "--epochs", "1", "--machines", "2", "--dim", "8",
                "--eval-queries", "2", "--backend", "mp",
                "--mp-schedule", "sync", "--mp-start", "fork",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "clock reconciliation (mp/sync)" in out
        assert "worker m0" in out

    def test_serve_bench_mp_merges_replicas(self, capsys):
        rc = main(
            [
                "serve-bench", "--dataset", "fb15k", "--scale", "0.015",
                "--epochs", "1", "--machines", "2", "--queries", "400",
                "--backend", "mp", "--mp-workers", "2", "--mp-start", "fork",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 frontend processes" in out
        assert "static#0" in out
        assert "static#1" in out
        assert "q/s wall" in out
