"""Tests for repro.core.compute — the shared batch gradient kernel."""

import numpy as np
import pytest

from repro.core.compute import compute_batch_gradients
from repro.models import TransE
from repro.models.losses import MarginRankingLoss
from repro.sampling.negative import MiniBatch
from repro.utils.rng import make_rng


@pytest.fixture
def setup():
    model = TransE(4, norm="l2")
    loss = MarginRankingLoss(margin=1.0)
    rng = make_rng(0)
    positives = np.array([[0, 0, 1], [2, 1, 3]])
    neg_entities = np.array([[4, 5], [1, 4]])
    corrupt_head = np.array([True, False])
    batch = MiniBatch(positives, neg_entities, corrupt_head)
    ent_ids = batch.unique_entities()
    rel_ids = batch.unique_relations()
    ent_rows = rng.normal(size=(len(ent_ids), 4))
    rel_rows = rng.normal(size=(len(rel_ids), 4))
    return model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows


class TestComputeBatchGradients:
    def test_loss_matches_manual(self, setup):
        model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows = setup
        grads = compute_batch_gradients(
            model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows
        )
        # Manual forward.
        lut = {int(e): ent_rows[i] for i, e in enumerate(ent_ids)}
        rlut = {int(r): rel_rows[i] for i, r in enumerate(rel_ids)}
        pos_scores = []
        neg_scores = []
        for i, (h, r, t) in enumerate(batch.positives):
            pos_scores.append(
                model.score(lut[int(h)][None], rlut[int(r)][None], lut[int(t)][None])[0]
            )
            row = []
            for e in batch.neg_entities[i]:
                if batch.corrupt_head[i]:
                    hh, tt = lut[int(e)], lut[int(t)]
                else:
                    hh, tt = lut[int(h)], lut[int(e)]
                row.append(model.score(hh[None], rlut[int(r)][None], tt[None])[0])
            neg_scores.append(row)
        manual = loss.compute(np.asarray(pos_scores), np.asarray(neg_scores))
        assert grads.loss == pytest.approx(manual.value, rel=1e-10)

    def test_num_scores(self, setup):
        model, loss, batch, *rest = setup
        grads = compute_batch_gradients(model, loss, batch, *rest)
        assert grads.num_scores == 2 * (1 + 2)

    def test_gradients_match_numerical(self, setup):
        """End-to-end finite differences through loss + scatter."""
        model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows = setup
        grads = compute_batch_gradients(
            model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows
        )
        eps = 1e-6

        def total(er, rr):
            return compute_batch_gradients(
                model, loss, batch, ent_ids, er, rel_ids, rr
            ).loss

        for i in range(len(ent_ids)):
            for j in range(4):
                er = ent_rows.copy()
                er[i, j] += eps
                plus = total(er, rel_rows)
                er[i, j] -= 2 * eps
                minus = total(er, rel_rows)
                num = (plus - minus) / (2 * eps)
                assert grads.entity_grads[i, j] == pytest.approx(num, abs=1e-4)

        for i in range(len(rel_ids)):
            for j in range(4):
                rr = rel_rows.copy()
                rr[i, j] += eps
                plus = total(ent_rows, rr)
                rr[i, j] -= 2 * eps
                minus = total(ent_rows, rr)
                num = (plus - minus) / (2 * eps)
                assert grads.relation_grads[i, j] == pytest.approx(num, abs=1e-4)

    def test_untouched_rows_zero_grad(self, setup):
        model, loss, batch, ent_ids, ent_rows, rel_ids, rel_rows = setup
        # Append an extra id/row that no triple references.
        ent_ids2 = np.append(ent_ids, 99)
        ent_rows2 = np.vstack([ent_rows, np.ones(4)])
        grads = compute_batch_gradients(
            model, loss, batch, ent_ids2, ent_rows2, rel_ids, rel_rows
        )
        assert np.all(grads.entity_grads[-1] == 0.0)

    def test_shared_negative_grads_accumulate(self):
        """When the same entity corrupts several positives (chunked
        sampling), its gradient must be the sum of all contributions."""
        model = TransE(2, norm="l2")
        loss = MarginRankingLoss(margin=10.0)  # everything active
        positives = np.array([[0, 0, 1], [2, 0, 1]])
        neg = np.array([[3], [3]])  # entity 3 corrupts both rows
        batch = MiniBatch(positives, neg, np.array([False, False]))
        ent_ids = np.array([0, 1, 2, 3])
        rng = make_rng(1)
        ent_rows = rng.normal(size=(4, 2))
        rel_rows = rng.normal(size=(1, 2))
        grads = compute_batch_gradients(
            model, loss, batch, ent_ids, ent_rows, np.array([0]), rel_rows
        )
        # Entity 3's gradient is the sum over two negative triples; compare
        # against computing each separately.
        single = []
        for h in (0, 2):
            b1 = MiniBatch(
                np.array([[h, 0, 1]]), np.array([[3]]), np.array([False])
            )
            g1 = compute_batch_gradients(
                model, loss, b1, ent_ids, ent_rows, np.array([0]), rel_rows
            )
            single.append(g1.entity_grads[3])
        np.testing.assert_allclose(grads.entity_grads[3], single[0] + single[1])
