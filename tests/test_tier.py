"""Tests for the tiered embedding store (repro.tier).

Covers the three contracts the subsystem promises:

* **exactness** — hot and warm reads are bit-identical to a dense table;
  a cold read is exactly one wire-codec round-trip of error; the default
  ``backing="resident"`` path is untouched.
* **budget** — resident bytes never exceed the configured slice after a
  rebalance pass, and the ledger's set-semantics cannot drift.
* **determinism** — identical traffic yields identical membership, and
  growth/checkpoint paths move exactly the bytes they claim to.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.telemetry import Telemetry
from repro.core.trainer import HETKGTrainer
from repro.ps.compression import get_compressor
from repro.ps.kvstore import ShardedKVStore
from repro.tier import (
    BudgetExceededError,
    MemoryBudget,
    TierConfig,
    TierCostModel,
    TierPolicy,
    TierRuntime,
    TieredTable,
    format_bytes,
    parse_bytes,
)
from repro.tier.policy import TierMeter
from repro.tier.quant import Fp16BlockCodec, Int8BlockCodec, get_block_codec
from repro.tier.store import COLD, HOT, WARM
from repro.utils.rng import make_rng
from repro.utils.simclock import SimClock


def make_table(
    tmp_path,
    array,
    slice_bytes=None,
    clock=None,
    **policy_overrides,
) -> TieredTable:
    policy = TierPolicy(**policy_overrides)
    return TieredTable(
        np.asarray(array, dtype=np.float64),
        name="t",
        path=tmp_path / "t.mmap",
        budget=MemoryBudget(None),
        slice_bytes=slice_bytes,
        policy=policy,
        meter=TierMeter(TierCostModel(), clock or SimClock()),
    )


def rand_table(rows, width, seed=0):
    return make_rng(seed).normal(0.0, 1.0, size=(rows, width))


# ---------------------------------------------------------------- budget math


class TestParseBytes:
    def test_plain_and_suffixed(self):
        assert parse_bytes(4096) == 4096
        assert parse_bytes("512") == 512
        assert parse_bytes("64M") == 64 * 1024**2
        assert parse_bytes("2GB") == 2 * 1024**3
        assert parse_bytes("1.5k") == 1536
        assert parse_bytes("8KiB".replace("i", "")) == 8192

    def test_none_passthrough(self):
        assert parse_bytes(None) is None

    def test_rejects_bad_values(self):
        for bad in ("64X", "junk", "-5M", "0", -1, 0, float("inf"), float("nan")):
            with pytest.raises((ValueError, TypeError)):
                parse_bytes(bad)
        with pytest.raises(TypeError):
            parse_bytes(True)

    def test_format(self):
        assert format_bytes(None) == "unlimited"
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024**2) == "3.0MiB"


class TestMemoryBudget:
    def test_charges_are_absolute(self):
        b = MemoryBudget(1000)
        b.charge("t.hot", 400)
        b.charge("t.hot", 300)  # replaces, does not accumulate
        assert b.used() == 300
        assert b.remaining() == 700

    def test_overflow_raises(self):
        b = MemoryBudget(1000)
        b.charge("t.hot", 900)
        with pytest.raises(BudgetExceededError):
            b.charge("t.cold", 200)
        # The failed charge must not corrupt the ledger.
        assert b.used() == 900

    def test_zero_charge_clears_key(self):
        b = MemoryBudget(1000)
        b.charge("t.hot", 100)
        b.charge("t.hot", 0)
        assert b.charges() == {}

    def test_unlimited(self):
        b = MemoryBudget(None)
        assert b.unlimited
        b.charge("t.hot", 10**15)
        assert b.fits(10**15)

    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)


# ---------------------------------------------------------------- cold codecs


class TestBlockCodecs:
    def test_int8_matches_wire_codec_bitwise(self):
        """Cold reads must cost exactly one wire round-trip of error —
        pinned by bit-equality with ``Int8Compression.roundtrip``."""
        rows = rand_table(16, 8, seed=3)
        rows[2] = 5.0  # degenerate row exercises the span guard
        codec = Int8BlockCodec()
        wire = get_compressor("int8")
        assert np.array_equal(codec.decode(codec.encode(rows)), wire.roundtrip(rows))

    def test_fp16_matches_wire_codec_bitwise(self):
        rows = rand_table(16, 8, seed=4)
        codec = Fp16BlockCodec()
        wire = get_compressor("fp16")
        assert np.array_equal(codec.decode(codec.encode(rows)), wire.roundtrip(rows))

    def test_nbytes_accounts_payload(self):
        rows = rand_table(8, 6)
        enc = Int8BlockCodec().encode(rows)
        assert enc.nbytes == 8 * 6 + 2 * 8 * 8  # q + lo + span
        assert Int8BlockCodec().bytes_per_row(6) == 6 + 16
        assert Fp16BlockCodec().bytes_per_row(6) == 12

    def test_none_codec(self):
        assert get_block_codec("none") is None
        with pytest.raises(KeyError):
            get_block_codec("zstd")


# ------------------------------------------------------------- table facade


class TestTieredTableFacade:
    def test_all_warm_reads_bit_identical(self, tmp_path):
        src = rand_table(100, 6, seed=1)
        t = make_table(tmp_path, src, block_rows=8)
        ids = np.asarray([0, 7, 8, 55, 99, 3])
        assert np.array_equal(t[ids], src[ids])
        assert np.array_equal(np.asarray(t), src)
        assert np.array_equal(t[10:20], src[10:20])

    def test_ndarray_idioms(self, tmp_path):
        src = rand_table(40, 4, seed=2)
        t = make_table(tmp_path, src, block_rows=8)
        assert t.shape == (40, 4)
        assert len(t) == 40
        assert t.ndim == 2
        assert t.dtype == np.float64
        assert t.nbytes == 40 * 4 * 8
        assert np.array_equal(t[-1], src[-1])  # negative index
        mask = np.zeros(40, dtype=bool)
        mask[[3, 17]] = True
        assert np.array_equal(t[mask], src[mask])
        assert np.zeros_like(t).shape == (40, 4)

    def test_optimizer_idiom_in_place_subtract(self, tmp_path):
        """``table[ids] -= step`` is the sparse-SGD hot path; it must land
        exactly (read-modify-write through whatever tier holds the row)."""
        src = rand_table(64, 4, seed=5)
        expect = src.copy()
        t = make_table(tmp_path, src, block_rows=8)
        ids = np.asarray([0, 9, 33, 63])
        step = np.full((4, 4), 0.125)
        t[ids] -= step
        expect[ids] -= step
        assert np.array_equal(np.asarray(t), expect)

    def test_out_of_range_raises(self, tmp_path):
        t = make_table(tmp_path, rand_table(10, 2), block_rows=8)
        with pytest.raises(IndexError):
            t[np.asarray([10])]
        with pytest.raises(IndexError):
            t[np.asarray([-11])]

    def test_full_slice_assign_restores(self, tmp_path):
        t = make_table(tmp_path, rand_table(32, 4, seed=6), block_rows=8)
        replacement = rand_table(32, 4, seed=7)
        t[:] = replacement
        assert np.array_equal(np.asarray(t), replacement)
        with pytest.raises(ValueError):
            t[:] = rand_table(31, 4)


# ------------------------------------------------------------ residency/budget


class TestResidency:
    def test_skewed_traffic_promotes_within_budget(self, tmp_path):
        src = rand_table(256, 4, seed=8)
        block_bytes = 8 * 4 * 8
        t = make_table(
            tmp_path,
            src,
            slice_bytes=4 * block_bytes,
            block_rows=8,
            pass_rows=64,
            target_hit_rate=1.0,
            cold_codec="none",
        )
        hot_ids = np.arange(32)  # blocks 0..3
        for _ in range(8):
            t.read(hot_ids)
        assert t.resident_bytes() <= 4 * block_bytes
        assert t.stats.promoted_blocks > 0
        assert t.hot_fraction() <= 32 / 256
        # Promoted reads stay exact.
        assert np.array_equal(t[hot_ids], src[hot_ids])

    def test_max_evict_per_pass_bounds_churn(self, tmp_path):
        src = rand_table(128, 4, seed=9)
        block_bytes = 8 * 4 * 8
        t = make_table(
            tmp_path,
            src,
            slice_bytes=4 * block_bytes,
            block_rows=8,
            pass_rows=10**9,  # rebalance manually
            target_hit_rate=1.0,
            max_evict_per_pass=2,
            cold_codec="none",
        )
        t.read(np.arange(32))  # blocks 0..3 hot
        t.rebalance()
        assert sorted(t._hot.ids.tolist()) == [0, 1, 2, 3]
        for _ in range(4):  # new hotness: blocks 8..11
            t.read(np.arange(64, 96))
        t.rebalance()
        assert t.stats.evicted_blocks == 2  # churn bounded below the 4 desired
        assert len(t._hot.ids) == 4

    def test_target_hit_rate_short_circuits_pass(self, tmp_path):
        t = make_table(
            tmp_path,
            rand_table(64, 4, seed=10),
            block_rows=8,
            pass_rows=10**9,
            target_hit_rate=0.0,  # any traffic satisfies the target
        )
        t.read(np.arange(16))
        t.rebalance()
        assert t.stats.skipped_passes == 1
        assert t.stats.promoted_blocks == 0  # skipped passes do no repack

    def test_rebalance_deterministic(self, tmp_path):
        traffic = [np.arange(24), np.arange(40, 64), np.arange(8)]
        members, snapshots = [], []
        for run in range(2):
            sub = tmp_path / f"run{run}"
            sub.mkdir()
            t = make_table(
                sub,
                rand_table(64, 4, seed=11),
                slice_bytes=3 * 8 * 4 * 8,
                block_rows=8,
                pass_rows=16,
                target_hit_rate=1.0,
                cold_codec="none",
            )
            for ids in traffic:
                t.read(ids)
            members.append(t._hot.ids.tolist())
            snapshots.append(np.asarray(t))
        assert members[0] == members[1]
        assert np.array_equal(snapshots[0], snapshots[1])


class TestColdTier:
    def _idle_table(self, tmp_path, src, **kw):
        t = make_table(
            tmp_path,
            src,
            block_rows=8,
            pass_rows=10**9,
            cold_after_passes=1,
            max_evict_per_pass=64,
            **kw,
        )
        # Empty-window passes age every block; the sweep then encodes them.
        t.rebalance()
        t.rebalance()
        return t

    def test_idle_blocks_quantize_and_read_lossy(self, tmp_path):
        src = rand_table(64, 4, seed=12)
        t = self._idle_table(tmp_path, src, cold_codec="int8")
        assert t.stats.encoded_blocks == 8
        assert np.all(t._state == COLD)
        wire = get_compressor("int8")
        got = t[np.arange(64)]
        assert np.array_equal(got, wire.roundtrip(src))
        assert t.stats.cold_rows == 64

    def test_write_revives_cold_block(self, tmp_path):
        src = rand_table(64, 4, seed=13)
        t = self._idle_table(tmp_path, src, cold_codec="int8")
        fresh = np.full((1, 4), 7.25)
        t[np.asarray([3])] = fresh
        assert t._state[0] == WARM  # block revived, payload dropped
        assert np.array_equal(t[np.asarray([3])], fresh)

    def test_codec_none_disables_sweep(self, tmp_path):
        t = self._idle_table(tmp_path, rand_table(64, 4), cold_codec="none")
        assert t.stats.encoded_blocks == 0
        assert np.all(t._state == WARM)

    def test_cold_blocks_count_against_budget(self, tmp_path):
        src = rand_table(256, 4, seed=14)
        enc_bytes = (4 + 16) * 8  # int8 bytes_per_row * block_rows
        t = make_table(
            tmp_path,
            src,
            slice_bytes=4 * enc_bytes,
            block_rows=8,
            pass_rows=10**9,
            cold_after_passes=1,
            max_evict_per_pass=64,
            cold_codec="int8",
        )
        t.rebalance()
        t.rebalance()
        assert t.stats.encoded_blocks == 4  # budget bound, not candidate count
        assert t.resident_bytes() <= 4 * enc_bytes


class TestGrow:
    def test_grow_extends_in_place(self, tmp_path):
        src = rand_table(20, 4, seed=15)
        t = make_table(tmp_path, src, block_rows=8)
        extra = rand_table(12, 4, seed=16)
        t.grow(extra)
        assert t.shape == (32, 4)
        assert np.array_equal(np.asarray(t), np.concatenate([src, extra]))
        # Only the appended rows were written — no whole-file copy.
        assert t.stats.grow_bytes_written == 12 * 4 * 8
        assert os.path.getsize(t._path) == 32 * 4 * 8

    def test_grow_with_hot_trailing_block(self, tmp_path):
        src = rand_table(20, 4, seed=17)
        t = make_table(
            tmp_path,
            src,
            block_rows=8,
            pass_rows=8,
            target_hit_rate=1.0,
            cold_codec="none",
        )
        t.read(np.asarray([16, 17, 18, 19] * 2))  # promote the partial block
        assert t._state[2] == HOT
        extra = rand_table(6, 4, seed=18)
        t.grow(extra)
        assert np.array_equal(np.asarray(t), np.concatenate([src, extra]))

    def test_grow_metered(self, tmp_path):
        clock = SimClock()
        t = make_table(tmp_path, rand_table(16, 4), clock=clock, block_rows=8)
        t.grow(rand_table(8, 4, seed=19))
        assert clock.elapsed > 0
        assert clock.category("tier.grow") > 0


# ------------------------------------------------------------------ runtime


class TestTierRuntime:
    def test_budget_split_proportional(self, tmp_path):
        rt = TierRuntime(
            {"entity": rand_table(96, 4), "relation": rand_table(32, 4)},
            TierConfig(budget=1024, directory=tmp_path / "tier"),
        )
        ent = rt.tables["entity"]._slice
        rel = rt.tables["relation"]._slice
        assert ent == 768 and rel == 256  # 3:1 logical split
        rt.close()

    def test_close_removes_shards_keeps_explicit_dir(self, tmp_path):
        scratch = tmp_path / "scratch"
        rt = TierRuntime({"entity": rand_table(16, 4)}, TierConfig(directory=scratch))
        shard = scratch / "entity.mmap"
        assert shard.exists()
        rt.close()
        assert not shard.exists()
        assert scratch.exists()  # caller's directory is preserved

    def test_owned_temp_dir_removed(self):
        rt = TierRuntime({"entity": rand_table(16, 4)}, TierConfig())
        directory = rt.directory
        assert os.path.isdir(directory)
        rt.close()
        assert not os.path.exists(directory)

    def test_memory_report_shape(self, tmp_path):
        rt = TierRuntime(
            {"entity": rand_table(64, 4), "relation": rand_table(16, 4)},
            TierConfig(budget="4K", directory=tmp_path / "tier"),
        )
        report = rt.memory_report()
        assert report["backing"] == "tiered"
        assert report["budget_bytes"] == 4096
        assert set(report["tables"]) == {"entity", "relation"}
        for t in report["tables"].values():
            for key in ("hot_blocks", "cold_blocks", "warm_blocks", "hit_ratio"):
                assert key in t
        rt.close()


# ------------------------------------------------------------ kvstore wiring


def tiered_store(num_entities=64, num_relations=8, width=4, **tier_kw):
    ent = rand_table(num_entities, width, seed=20)
    rel = rand_table(num_relations, width, seed=21)
    owner = np.arange(num_entities, dtype=np.int64) % 2
    cfg = TierConfig(**tier_kw) if tier_kw else None
    return (
        ShardedKVStore(ent.copy(), rel.copy(), owner, 2, backing="tiered", tier=cfg),
        ent,
        rel,
    )


class TestKVStoreTiered:
    def test_read_write_equivalence(self, tmp_path):
        store, ent, _ = tiered_store(directory=tmp_path / "kv")
        ids = np.asarray([0, 5, 63])
        assert np.array_equal(store.read("entity", ids), ent[ids])
        rows = np.full((3, 4), 2.5)
        store.write("entity", ids, rows)
        assert np.array_equal(store.read("entity", ids), rows)
        store.close()

    def test_grow_through_store(self, tmp_path):
        store, ent, _ = tiered_store(directory=tmp_path / "kv")
        new = rand_table(10, 4, seed=22)
        store.grow("entity", new)
        assert len(store.table("entity")) == 74
        assert np.array_equal(
            store.read("entity", np.arange(64, 74)), new
        )
        assert len(store.owners("entity", np.arange(74))) == 74
        store.close()

    def test_resident_report_matches_schema(self):
        ent, rel = rand_table(8, 4), rand_table(4, 4)
        store = ShardedKVStore(ent, rel, np.zeros(8, dtype=np.int64), 1)
        report = store.memory_report()
        assert report["backing"] == "resident"
        assert report["resident_bytes"] == report["logical_bytes"]
        assert set(report["tables"]) == {"entity", "relation"}
        store.close()  # no-op for resident

    def test_memory_bytes_is_logical_for_both_backings(self, tmp_path):
        store, ent, rel = tiered_store(directory=tmp_path / "kv")
        assert store.memory_bytes() == ent.nbytes + rel.nbytes
        store.close()


# --------------------------------------------------------- trainer integration


def tier_config(**overrides):
    defaults = dict(
        model="transe",
        dim=8,
        epochs=1,
        batch_size=16,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        dps_window=4,
        sync_period=4,
        cache_strategy="dps",
        seed=0,
        wire_dim=None,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestTrainerIntegration:
    def test_tiered_unlimited_is_bit_identical(self, small_split, tmp_path):
        """backing="tiered" with no budget and cold_codec="none" must be a
        pure representation change: same losses, same tables, same clock."""
        resident = HETKGTrainer(tier_config())
        res = resident.train(small_split.train)
        tiered = HETKGTrainer(
            tier_config(
                backing="tiered",
                tier_cold_codec="none",
                tier_block_rows=32,
                tier_dir=str(tmp_path / "tier"),
            )
        )
        tie = tiered.train(small_split.train)
        assert np.array_equal(
            np.asarray(resident.server.store.table("entity")),
            np.asarray(tiered.server.store.table("entity")),
        )
        assert np.array_equal(
            np.asarray(resident.server.store.table("relation")),
            np.asarray(tiered.server.store.table("relation")),
        )
        assert res.sim_time == tie.sim_time
        assert tie.tier_time > 0.0
        assert res.tier_time == 0.0
        tiered.server.store.close()

    def test_oversubscribed_checkpoint_roundtrip(self, small_split, tmp_path):
        """Save under memory pressure, load into a fresh oversubscribed
        trainer: every gathered row must be bit-identical to the saved
        logical table."""
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        overrides = dict(
            backing="tiered",
            memory_budget="24K",
            tier_block_rows=16,
            epochs=1,
        )
        trainer = HETKGTrainer(tier_config(**overrides, tier_dir=str(tmp_path / "a")))
        trainer.train(small_split.train)
        store = trainer.server.store
        assert store.resident_bytes() <= 24 * 1024
        snapshot = np.asarray(store.table("entity"))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)

        other = HETKGTrainer(tier_config(**overrides, tier_dir=str(tmp_path / "b")))
        other.setup(small_split.train)
        load_checkpoint(other, path)
        restored = other.server.store
        ids = np.arange(len(snapshot), dtype=np.int64)
        assert np.array_equal(restored.read("entity", ids), snapshot)
        assert restored.resident_bytes() <= 24 * 1024
        store.close()
        restored.close()

    def test_memory_report_reaches_telemetry(self, small_split, tmp_path):
        telemetry = Telemetry()
        trainer = HETKGTrainer(
            tier_config(
                backing="tiered",
                memory_budget="32K",
                tier_block_rows=16,
                tier_dir=str(tmp_path / "tier"),
            )
        )
        result = trainer.train(small_split.train, telemetry=telemetry)
        report = telemetry.latest_memory()
        assert report["backing"] == "tiered"
        assert report["budget_bytes"] == 32 * 1024
        assert report == result.memory_report
        assert result.memory_report["tables"]["entity"]["hit_ratio"] >= 0.0
        trainer.server.store.close()

    def test_config_rejects_budget_without_tiering(self):
        with pytest.raises(ValueError, match="memory_budget requires"):
            tier_config(memory_budget="64M")


# ------------------------------------------------------------------ serving


class TestServingTiered:
    def test_with_backing_gather_identical(self, small_split, tmp_path):
        from repro.serving.store import EmbeddingStore

        trainer = HETKGTrainer(tier_config())
        trainer.train(small_split.train)
        base = EmbeddingStore.from_trainer(trainer)
        tiered = base.with_backing(
            "tiered",
            TierConfig(
                policy=TierPolicy(cold_codec="none"),
                directory=tmp_path / "serve",
            ),
        )
        ids = np.arange(base.num_entities, dtype=np.int64)
        assert np.array_equal(tiered.gather("entity", ids), base.gather("entity", ids))
        assert tiered.memory_report()["backing"] == "tiered"
        tiered.store.close()


# ---------------------------------------------------------------------- CLI


class TestCLITiered:
    def test_train_tiered_smoke(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.012",
                "--epochs", "1", "--machines", "2", "--eval-queries", "2",
                "--backing", "tiered", "--memory-budget", "32K",
                "--tier-block-rows", "16", "--tier-dir", str(tmp_path / "tier"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory: resident" in out
        assert "tier time:" in out

    def test_train_rejects_tiered_pbg(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.012",
                "--system", "pbg", "--backing", "tiered", "--epochs", "1",
            ]
        )
        assert rc == 2
        assert "not supported" in capsys.readouterr().out

    def test_train_rejects_budget_without_tiering(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "train", "--dataset", "fb15k", "--scale", "0.012",
                "--memory-budget", "8M", "--epochs", "1",
            ]
        )
        assert rc == 2
        assert "requires --backing tiered" in capsys.readouterr().out
