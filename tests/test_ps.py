"""Tests for repro.ps (network cost models, KVStore, parameter server)."""

import numpy as np
import pytest

from repro.optim.sgd import SparseSGD
from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import BYTES_PER_ELEMENT, CommRecord, ComputeModel, NetworkModel
from repro.ps.server import ParameterServer


@pytest.fixture
def store():
    entity = np.arange(20, dtype=np.float64).reshape(10, 2)
    relation = np.arange(12, dtype=np.float64).reshape(4, 3)
    owner = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 0])
    return ShardedKVStore(entity, relation, owner, num_machines=3)


@pytest.fixture
def server(store):
    return ParameterServer(store, SparseSGD(lr=1.0))


class TestCommRecord:
    def test_merge(self):
        a = CommRecord(local_bytes=1, remote_bytes=2, local_messages=1, remote_messages=1)
        b = CommRecord(local_bytes=10, remote_bytes=20, remote_messages=3)
        a.merge(b)
        assert a.local_bytes == 11
        assert a.remote_bytes == 22
        assert a.remote_messages == 4
        assert a.total_bytes == 33
        assert a.total_messages == 5

    def test_total_messages(self):
        r = CommRecord(local_messages=3, remote_messages=7)
        assert r.total_messages == 10
        assert CommRecord().total_messages == 0


class TestNetworkModel:
    def test_remote_time(self):
        net = NetworkModel(bandwidth=100.0, latency=1.0, local_bandwidth=1e12, local_latency=0.0)
        t = net.cost(CommRecord(remote_bytes=200, remote_messages=2))
        assert t == pytest.approx(2 * 1.0 + 200 / 100.0)

    def test_local_cheaper_than_remote(self):
        net = NetworkModel()
        remote = net.cost(CommRecord(remote_bytes=10_000, remote_messages=1))
        local = net.cost(CommRecord(local_bytes=10_000, local_messages=1))
        assert local < remote / 10

    def test_cost_is_pure(self):
        """Estimating a transfer must not inflate the global byte tables.

        Regression: ``time_for`` accumulated totals as a side effect, so
        any caller that merely *estimated* a cost (or costed the same
        record twice) silently inflated the comm tables."""
        net = NetworkModel()
        record = CommRecord(remote_bytes=100, remote_messages=1)
        net.cost(record)
        net.cost(record)
        assert net.totals.total_bytes == 0
        assert net.totals.total_messages == 0

    def test_charge_accumulates_once(self):
        net = NetworkModel()
        record = CommRecord(remote_bytes=100)
        assert net.charge(record) == pytest.approx(net.cost(record))
        net.charge(CommRecord(remote_bytes=50))
        assert net.totals.remote_bytes == 150
        net.reset_totals()
        assert net.totals.remote_bytes == 0

    def test_time_for_deprecated_but_compatible(self):
        net = NetworkModel()
        with pytest.deprecated_call():
            t = net.time_for(CommRecord(remote_bytes=100))
        assert t == pytest.approx(net.cost(CommRecord(remote_bytes=100)))
        assert net.totals.remote_bytes == 100  # historic charging behaviour

    def test_comm_record_copy_and_difference(self):
        net = NetworkModel()
        net.charge(CommRecord(remote_bytes=100, local_bytes=10, remote_messages=2))
        snapshot = net.totals.copy()
        net.charge(CommRecord(remote_bytes=40, local_messages=1))
        delta = net.totals.difference(snapshot)
        assert delta.remote_bytes == 40
        assert delta.local_bytes == 0
        assert delta.local_messages == 1
        assert delta.remote_messages == 0
        # the snapshot is decoupled from the live totals
        assert snapshot.remote_bytes == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)


class TestComputeModel:
    def test_batch_time_scales_linearly(self):
        cm = ComputeModel(throughput=1e6)
        assert cm.batch_time(200, 8) == pytest.approx(2 * cm.batch_time(100, 8))
        assert cm.batch_time(100, 16) == pytest.approx(2 * cm.batch_time(100, 8))

    def test_forward_only_halves(self):
        cm = ComputeModel(throughput=1e6)
        assert cm.batch_time(100, 8, backward=False) == pytest.approx(
            cm.batch_time(100, 8) / 2
        )

    def test_overhead_time(self):
        cm = ComputeModel(throughput=1e6)
        assert cm.overhead_time(1000, per_item_ops=10) == pytest.approx(0.01)


class TestShardedKVStore:
    def test_read_returns_copy(self, store):
        rows = store.read("entity", np.array([0]))
        rows[0, 0] = 999.0
        assert store.table("entity")[0, 0] == 0.0

    def test_owners(self, store):
        assert list(store.owners("entity", np.array([0, 3, 6]))) == [0, 1, 2]

    def test_relation_round_robin(self, store):
        assert list(store.owners("relation", np.array([0, 1, 2, 3]))) == [0, 1, 2, 0]

    def test_split_local_remote(self, store):
        local, remote = store.split_local_remote("entity", np.array([0, 3, 9]), 0)
        assert list(local) == [0, 9]
        assert list(remote) == [3]

    def test_remote_machine_count(self, store):
        assert store.remote_machine_count("entity", np.array([0, 3, 6]), 0) == 2
        assert store.remote_machine_count("entity", np.array([0, 1]), 0) == 0

    def test_write(self, store):
        store.write("entity", np.array([2]), np.array([[7.0, 8.0]]))
        assert store.table("entity")[2].tolist() == [7.0, 8.0]

    def test_unknown_kind(self, store):
        with pytest.raises(KeyError):
            store.table("edges")

    def test_owner_length_checked(self):
        with pytest.raises(ValueError, match="entity_owner"):
            ShardedKVStore(np.zeros((3, 2)), np.zeros((1, 2)), np.array([0]), 1)

    def test_owner_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            ShardedKVStore(np.zeros((2, 2)), np.zeros((1, 2)), np.array([0, 5]), 2)

    def test_memory_bytes(self, store):
        assert store.memory_bytes() == 20 * 8 + 12 * 8


class TestParameterServerPull:
    def test_rows_in_request_order(self, server):
        rows, _ = server.pull("entity", np.array([3, 0]), machine=0)
        assert rows[0].tolist() == [6.0, 7.0]
        assert rows[1].tolist() == [0.0, 1.0]

    def test_comm_split(self, server):
        _, comm = server.pull("entity", np.array([0, 1, 3, 6]), machine=0)
        width_bytes = 2 * BYTES_PER_ELEMENT
        assert comm.local_bytes == 2 * width_bytes
        assert comm.remote_bytes == 2 * width_bytes
        assert comm.remote_messages == 2  # machines 1 and 2
        assert comm.local_messages == 1

    def test_all_local_no_remote_messages(self, server):
        _, comm = server.pull("entity", np.array([0, 1, 2]), machine=0)
        assert comm.remote_bytes == 0
        assert comm.remote_messages == 0

    def test_byte_scale(self, store):
        server = ParameterServer(store, SparseSGD(lr=1.0), byte_scale=25.0)
        _, comm = server.pull("entity", np.array([3]), machine=0)
        assert comm.remote_bytes == 2 * BYTES_PER_ELEMENT * 25

    def test_invalid_byte_scale(self, store):
        with pytest.raises(ValueError):
            ParameterServer(store, SparseSGD(lr=1.0), byte_scale=0)


class TestParameterServerPush:
    def test_applies_optimizer(self, server):
        before = server.store.table("entity")[1].copy()
        server.push("entity", np.array([1]), np.array([[1.0, 1.0]]), machine=0)
        after = server.store.table("entity")[1]
        np.testing.assert_allclose(after, before - 1.0)  # SGD lr=1

    def test_version_bumps(self, server):
        v = server.version
        server.push("entity", np.array([0]), np.array([[0.0, 0.0]]), machine=0)
        assert server.version == v + 1

    def test_mismatched_grads_rejected(self, server):
        with pytest.raises(ValueError, match="gradient rows"):
            server.push("entity", np.array([0, 1]), np.array([[0.0, 0.0]]), machine=0)

    def test_push_metered_like_pull(self, server):
        comm = server.push("entity", np.array([3]), np.array([[0.0, 0.0]]), machine=0)
        assert comm.remote_bytes > 0
        assert comm.remote_messages == 1
