"""Test suite for the HET-KG reproduction (see README.md # Testing)."""
