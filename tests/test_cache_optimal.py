"""Tests for Belady's optimal replacement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.optimal import belady_hit_ratio
from repro.cache.policies import (
    ARCCache,
    FIFOCache,
    LFUCache,
    LRUCache,
    replay_trace,
)


class TestBelady:
    def test_textbook_example(self):
        """The classic OS-course reference string, capacity 3: Belady's
        MIN incurs exactly 6 misses on this 12-access string (bypass
        variant matches since every key recurs)."""
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        ratio = belady_hit_ratio(trace, capacity=3)
        # Misses: 1,2,3,4 (cold), 5, then 3 and 4 at the end -> 7 misses
        # under MIN with bypass; hits = 5.
        assert ratio == pytest.approx(1 - 7 / 12)

    def test_all_hits_when_capacity_covers(self):
        trace = [1, 2, 1, 2, 1, 2]
        assert belady_hit_ratio(trace, 2) == pytest.approx(4 / 6)

    def test_empty_trace(self):
        assert belady_hit_ratio([], 4) == 0.0

    def test_single_key(self):
        assert belady_hit_ratio([7] * 10, 1) == pytest.approx(0.9)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            belady_hit_ratio([1], 0)

    @given(
        trace=st.lists(st.integers(0, 20), min_size=1, max_size=150),
        capacity=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_dominates_every_online_policy(self, trace, capacity):
        """Belady's ratio must be >= every implementable policy's ratio on
        every trace — the defining optimality property."""
        optimal = belady_hit_ratio(trace, capacity)
        for cls in (FIFOCache, LRUCache, LFUCache, ARCCache):
            online = replay_trace(cls(capacity), trace)
            assert optimal >= online - 1e-12

    def test_upper_bounds_hotness_window(self, rng):
        """HET-KG's windowed oracle approximates Belady from below."""
        from repro.cache.policies import hotness_window_hit_ratio

        keys = rng.zipf(1.4, size=3000) % 120
        batches = [keys[i : i + 30] for i in range(0, len(keys), 30)]
        window = hotness_window_hit_ratio(batches, capacity=12, window=8)
        optimal = belady_hit_ratio(keys.tolist(), capacity=12)
        assert optimal >= window - 1e-12
