"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng, spawn_rngs


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(1), np.random.Generator)

    def test_same_seed_same_stream(self):
        a, b = make_rng(5), make_rng(5)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_different_seeds_diverge(self):
        a, b = make_rng(1), make_rng(2)
        draws_a = a.integers(0, 10**9, size=8)
        draws_b = b.integers(0, 10**9, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(make_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn_rngs(make_rng(0), 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = spawn_rngs(make_rng(0), 3)
        b = spawn_rngs(make_rng(0), 3)
        for x, y in zip(a, b):
            assert x.integers(0, 10**6) == y.integers(0, 10**6)

    def test_zero_count(self):
        assert spawn_rngs(make_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(make_rng(0), -1)


class TestSplitWorkerStreams:
    def test_integer_seeds(self):
        from repro.utils.rng import split_worker_streams

        seeds = split_worker_streams(make_rng(0), 4)
        assert len(seeds) == 4
        assert all(isinstance(s, int) for s in seeds)

    def test_deterministic(self):
        from repro.utils.rng import split_worker_streams

        assert split_worker_streams(make_rng(7), 6) == split_worker_streams(
            make_rng(7), 6
        )

    def test_matches_spawn_rngs_streams(self):
        # spawn_rngs must be exactly "seed each stream from the split" —
        # the mp backend ships the integer seeds to child processes and
        # the simulator consumes the generators, and both must agree.
        from repro.utils.rng import split_worker_streams

        seeds = split_worker_streams(make_rng(3), 4)
        gens = spawn_rngs(make_rng(3), 4)
        for seed, gen in zip(seeds, gens):
            expect = np.random.default_rng(seed).integers(0, 10**9, size=8)
            assert np.array_equal(gen.integers(0, 10**9, size=8), expect)

    def test_zero_count(self):
        from repro.utils.rng import split_worker_streams

        assert split_worker_streams(make_rng(0), 0) == []

    def test_negative_count_rejected(self):
        from repro.utils.rng import split_worker_streams

        with pytest.raises(ValueError, match="non-negative"):
            split_worker_streams(make_rng(0), -2)

    def test_prefix_stability_property(self):
        # Drawing k streams is a prefix of drawing k+m streams from the
        # same parent state: growing the worker count must not reshuffle
        # the seeds existing workers get.
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.utils.rng import split_worker_streams

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(0, 2**31 - 1),
            k=st.integers(1, 8),
            extra=st.integers(0, 8),
        )
        def check(seed, k, extra):
            small = split_worker_streams(make_rng(seed), k)
            large = split_worker_streams(make_rng(seed), k + extra)
            assert large[:k] == small

        check()

    def test_distinct_seeds_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.utils.rng import split_worker_streams

        @settings(max_examples=25, deadline=None)
        @given(seed=st.integers(0, 2**31 - 1), count=st.integers(2, 16))
        def check(seed, count):
            seeds = split_worker_streams(make_rng(seed), count)
            assert len(set(seeds)) == count

        check()


class TestWorkerStream:
    def test_deterministic_per_machine(self):
        from repro.utils.rng import worker_stream

        a = worker_stream(5, 2).integers(0, 10**9, size=8)
        b = worker_stream(5, 2).integers(0, 10**9, size=8)
        assert np.array_equal(a, b)

    def test_machines_diverge(self):
        from repro.utils.rng import worker_stream

        a = worker_stream(5, 0).integers(0, 10**9, size=8)
        b = worker_stream(5, 1).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)


class TestDeriveStream:
    def test_salted_offset(self):
        from repro.utils.rng import derive_stream

        a = derive_stream(3, 100)
        b = make_rng(103)
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_salts_diverge(self):
        from repro.utils.rng import derive_stream

        a = derive_stream(3, 1).integers(0, 10**9, size=8)
        b = derive_stream(3, 2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)
