"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng, spawn_rngs


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(1), np.random.Generator)

    def test_same_seed_same_stream(self):
        a, b = make_rng(5), make_rng(5)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_different_seeds_diverge(self):
        a, b = make_rng(1), make_rng(2)
        draws_a = a.integers(0, 10**9, size=8)
        draws_b = b.integers(0, 10**9, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(make_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn_rngs(make_rng(0), 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = spawn_rngs(make_rng(0), 3)
        b = spawn_rngs(make_rng(0), 3)
        for x, y in zip(a, b):
            assert x.integers(0, 10**6) == y.integers(0, 10**6)

    def test_zero_count(self):
        assert spawn_rngs(make_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(make_rng(0), -1)
