"""Tests for the §IV-C convergence-theory module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence_theory import (
    StalenessBound,
    convergence_rate_bound,
    minimum_iterations,
    staleness_from_config,
)


def make_bound(**overrides):
    defaults = dict(
        initial_gap=10.0, lipschitz=1.0, sigma=2.0, staleness=4, batch_size=32
    )
    defaults.update(overrides)
    return StalenessBound(**defaults)


class TestMinimumIterations:
    def test_quadratic_in_staleness(self):
        t1 = minimum_iterations(make_bound(staleness=1))
        t2 = minimum_iterations(make_bound(staleness=3))
        # (K+1)^2: 4 vs 16 -> exactly 4x.
        assert t2 == pytest.approx(4 * t1, rel=0.01)

    def test_positive(self):
        assert minimum_iterations(make_bound()) >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_bound(sigma=0.0)
        with pytest.raises(ValueError):
            make_bound(staleness=0)


class TestConvergenceRateBound:
    def test_rate_is_one_over_sqrt_mT(self):
        bound = make_bound(staleness=1)
        t0 = minimum_iterations(bound)
        r1 = convergence_rate_bound(bound, t0 * 4)
        r2 = convergence_rate_bound(bound, t0 * 16)
        assert r2 == pytest.approx(r1 / 2, rel=0.01)

    def test_larger_batch_smaller_bound(self):
        t = 10**6
        small = convergence_rate_bound(make_bound(batch_size=16), t)
        large = convergence_rate_bound(make_bound(batch_size=64), t)
        assert large < small

    def test_pre_burn_in_penalty(self):
        bound = make_bound(staleness=8)
        t0 = minimum_iterations(bound)
        before = convergence_rate_bound(bound, max(1, t0 // 2))
        after = convergence_rate_bound(bound, t0)
        # Pre-burn-in carries the (K+1) factor.
        assert before > after

    def test_staleness_does_not_hurt_asymptotically(self):
        """The paper's headline: past T = O(K^2), the rate matches
        synchronous SGD regardless of K."""
        t = 10**9  # far past both burn-ins
        fresh = convergence_rate_bound(make_bound(staleness=1), t)
        stale = convergence_rate_bound(make_bound(staleness=16), t)
        assert stale == pytest.approx(fresh, rel=1e-9)

    @given(
        staleness=st.integers(1, 32),
        batch=st.integers(1, 512),
        t_mult=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_always_positive_and_finite(self, staleness, batch, t_mult):
        bound = make_bound(staleness=staleness, batch_size=batch)
        value = convergence_rate_bound(bound, t_mult * 100)
        assert value > 0
        assert value < float("inf")


class TestStalenessFromConfig:
    def test_sync_every_iteration_is_minimal(self):
        assert staleness_from_config(sync_period=1, num_workers=4) == 1

    def test_single_worker_is_minimal(self):
        assert staleness_from_config(sync_period=128, num_workers=1) == 1

    def test_grows_with_period_and_workers(self):
        a = staleness_from_config(4, 4)
        b = staleness_from_config(8, 4)
        c = staleness_from_config(8, 8)
        assert a < b < c
