"""Tests for repro.kg.stats."""

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.stats import (
    access_frequencies,
    frequency_skew_report,
    gini,
    top_fraction_share,
)


class TestAccessFrequencies:
    def test_positive_counts(self, tiny_graph):
        ent, rel = access_frequencies(tiny_graph)
        assert ent.sum() == 2 * tiny_graph.num_triples
        assert rel.sum() == tiny_graph.num_triples

    def test_with_negatives(self, tiny_graph, rng):
        ent, rel = access_frequencies(tiny_graph, negatives_per_positive=3, rng=rng)
        assert ent.sum() == 2 * tiny_graph.num_triples + 3 * tiny_graph.num_triples
        assert rel.sum() == 4 * tiny_graph.num_triples

    def test_negatives_require_rng(self, tiny_graph):
        with pytest.raises(ValueError, match="rng"):
            access_frequencies(tiny_graph, negatives_per_positive=2)

    def test_empty_graph(self):
        g = KnowledgeGraph(np.empty((0, 3), dtype=np.int64))
        ent, rel = access_frequencies(g)
        assert ent.size == 0 and rel.size == 0


class TestTopFractionShare:
    def test_uniform(self):
        counts = np.ones(100, dtype=np.int64)
        assert top_fraction_share(counts, 0.1) == pytest.approx(0.1)

    def test_fully_concentrated(self):
        counts = np.zeros(100, dtype=np.int64)
        counts[0] = 50
        assert top_fraction_share(counts, 0.01) == 1.0

    def test_zero_counts(self):
        assert top_fraction_share(np.zeros(10, dtype=np.int64), 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_share(np.ones(5), 0.0)
        with pytest.raises(ValueError):
            top_fraction_share(np.ones(5), 1.5)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(50, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini(counts) > 0.9

    def test_empty(self):
        assert gini(np.array([])) == 0.0

    def test_between_zero_and_one(self, rng):
        counts = rng.integers(0, 1000, size=200)
        assert 0.0 <= gini(counts) <= 1.0


class TestSkewReport:
    def test_report_shape(self, small_graph, rng):
        report = frequency_skew_report(small_graph, "small", 2, rng)
        row = report.as_row()
        assert row[0] == "small"
        assert all(0.0 <= v <= 1.0 for v in row[1:])

    def test_relations_more_skewed_than_entities(self, small_graph, rng):
        """The node-heterogeneity observation behind Fig. 2: the hottest
        relations cover a larger share than the hottest entities."""
        report = frequency_skew_report(small_graph, "small", 2, rng)
        assert report.relation_top1pct_share > report.entity_top1pct_share
