"""Tests for the serving subsystem (repro.serving)."""

import numpy as np
import pytest

from repro.core.checkpoint import save_checkpoint
from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.serving.batcher import QueryBatcher
from repro.serving.cache import ServingCache
from repro.serving.frontend import ServingFrontend
from repro.serving.metrics import latency_percentile
from repro.serving.queries import Query, QueryLog
from repro.serving.store import EmbeddingStore
from repro.serving.workload import WorkloadSpec, ZipfianWorkload, zipf_probabilities


def score_query(qid, head=0, relation=0, tail=1, arrival=0.0):
    return Query(
        qid=qid, kind="score", head=head, relation=relation, tail=tail,
        arrival=arrival,
    )


# --------------------------------------------------------------------- queries


class TestQuery:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            Query(qid=0, kind="bogus", head=0, relation=0, tail=1, arrival=0.0)

    def test_score_touches_head_tail_relation(self):
        q = score_query(0, head=3, relation=1, tail=5)
        assert q.entity_ids().tolist() == [3, 5]
        assert q.relation_ids().tolist() == [1]
        assert q.num_scores == 1

    def test_prediction_touches_anchor_plus_candidates(self):
        q = Query(
            qid=0, kind="tail", head=3, relation=1, tail=-1, arrival=0.0,
            candidates=(7, 8, 9),
        )
        assert q.entity_ids().tolist() == [3, 7, 8, 9]
        assert q.num_scores == 3

    def test_log_access_counts(self):
        log = QueryLog([score_query(0, head=1, tail=2), score_query(1, head=1, tail=3)])
        ent, rel = log.access_counts()
        assert ent == {1: 2, 2: 1, 3: 1}
        assert rel == {0: 2}


# --------------------------------------------------------------------- batcher


class TestQueryBatcher:
    def test_flush_on_full(self):
        batcher = QueryBatcher(max_batch=3, max_wait=1.0)
        assert batcher.offer(score_query(0, arrival=0.0)) is None
        assert batcher.offer(score_query(1, arrival=0.1)) is None
        batch = batcher.offer(score_query(2, arrival=0.2))
        assert batch is not None and [q.qid for q in batch] == [0, 1, 2]
        assert len(batcher) == 0
        assert batcher.full_flushes == 1

    def test_flush_on_timeout(self):
        batcher = QueryBatcher(max_batch=100, max_wait=0.5)
        batcher.offer(score_query(0, arrival=1.0))
        batcher.offer(score_query(1, arrival=1.2))
        assert batcher.deadline() == pytest.approx(1.5)
        assert batcher.poll(1.4) is None  # not due yet
        batch = batcher.poll(1.5)
        assert batch is not None and len(batch) == 2
        assert batcher.deadline() is None
        assert batcher.timeout_flushes == 1

    def test_drain_flushes_remainder(self):
        batcher = QueryBatcher(max_batch=10, max_wait=1.0)
        batcher.offer(score_query(0))
        assert [q.qid for q in batcher.drain()] == [0]
        assert batcher.drain() == []

    def test_rejects_out_of_order_arrivals(self):
        batcher = QueryBatcher(max_batch=10, max_wait=1.0)
        batcher.offer(score_query(0, arrival=2.0))
        with pytest.raises(ValueError, match="arrival order"):
            batcher.offer(score_query(1, arrival=1.0))

    def test_mean_batch_size(self):
        batcher = QueryBatcher(max_batch=2, max_wait=1.0)
        batcher.offer(score_query(0))
        batcher.offer(score_query(1))  # full flush of 2
        batcher.offer(score_query(2))
        batcher.drain()  # flush of 1
        assert batcher.mean_batch_size == pytest.approx(1.5)

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            QueryBatcher(max_batch=0)
        with pytest.raises(ValueError):
            QueryBatcher(max_wait=-1.0)


# ----------------------------------------------------------------------- cache


class TestServingCache:
    def test_static_pins_hot_set(self):
        log = QueryLog(
            [score_query(i, head=1, relation=0, tail=2) for i in range(10)]
            + [score_query(10, head=8, relation=1, tail=9)]
        )
        cache = ServingCache.from_query_log(log, capacity=3, entity_ratio=2 / 3)
        # Hot ids (entities 1, 2 and relation 0) always hit...
        for _ in range(3):
            assert cache.lookup("entity", np.array([1, 2])).all()
            assert cache.lookup("relation", np.array([0])).all()
        # ...cold ids never get admitted (static cache never evicts/admits).
        for _ in range(3):
            assert not cache.lookup("entity", np.array([8, 9])).any()
        assert cache.hits == 9
        assert cache.misses == 6
        assert cache.hit_ratio == pytest.approx(9 / 15)

    def test_dynamic_lru_admits_on_miss(self):
        cache = ServingCache.dynamic(capacity=4, policy="lru", entity_ratio=0.5)
        assert not cache.lookup("entity", np.array([5])).any()  # cold miss
        assert cache.lookup("entity", np.array([5])).all()  # now resident
        assert cache.label == "lru"

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            ServingCache.dynamic(capacity=4, policy="belady")

    def test_invalidate_empties(self):
        log = QueryLog([score_query(0, head=1, tail=2)])
        cache = ServingCache.from_query_log(log, capacity=4)
        assert cache.size() > 0
        cache.invalidate()
        assert cache.size() == 0
        assert not cache.lookup("entity", np.array([1])).any()

    def test_invalidate_rewarms_static_membership(self):
        """Regression (ISSUE 7): invalidate() used to clear the pinned
        membership permanently, flatlining the hit ratio at 0 after a
        checkpoint swap.  The membership must survive as warming: each
        hot id misses once (re-pulling the fresh row), then hits again."""
        log = QueryLog([score_query(0, head=1, tail=2)])
        cache = ServingCache.from_query_log(log, capacity=4)
        cache.invalidate()
        # One warming miss per hot id, then resident again.
        assert not cache.lookup("entity", np.array([1])).any()
        assert cache.lookup("entity", np.array([1])).all()
        assert cache.size() > 0
        # Ids that were never hot still never get admitted.
        assert not cache.lookup("entity", np.array([9])).any()
        assert not cache.lookup("entity", np.array([9])).any()

    def test_invalidate_dynamic_restarts_cold(self):
        cache = ServingCache.dynamic(capacity=4, policy="lru", entity_ratio=0.5)
        cache.lookup("entity", np.array([5]))
        assert cache.lookup("entity", np.array([5])).all()
        cache.invalidate()
        assert cache.size() == 0
        # Reactive caches re-learn from scratch: miss, then admit.
        assert not cache.lookup("entity", np.array([5])).any()
        assert cache.lookup("entity", np.array([5])).all()

    @pytest.mark.parametrize("policy", ["clock", "2q"])
    def test_new_core_policies_available(self, policy):
        cache = ServingCache.dynamic(capacity=4, policy=policy, entity_ratio=0.5)
        assert not cache.lookup("entity", np.array([5])).any()
        assert cache.lookup("entity", np.array([5])).all()
        assert cache.label == policy


# -------------------------------------------------------------------- workload


class TestZipfianWorkload:
    def test_zipf_probabilities_normalised_and_skewed(self):
        p = zipf_probabilities(100, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[1] > p[50]
        uniform = zipf_probabilities(100, 0.0)
        assert uniform[0] == pytest.approx(uniform[99])

    def test_deterministic_under_fixed_seed(self):
        spec = WorkloadSpec(num_queries=200, seed=5)
        a = ZipfianWorkload(50, 7, spec).generate()
        b = ZipfianWorkload(50, 7, spec).generate()
        assert [q.head for q in a] == [q.head for q in b]
        assert [q.arrival for q in a] == [q.arrival for q in b]
        assert [q.kind for q in a] == [q.kind for q in b]
        assert [q.candidates for q in a] == [q.candidates for q in b]

    def test_different_seeds_differ(self):
        a = ZipfianWorkload(50, 7, WorkloadSpec(num_queries=200, seed=1)).generate()
        b = ZipfianWorkload(50, 7, WorkloadSpec(num_queries=200, seed=2)).generate()
        assert [q.head for q in a] != [q.head for q in b]

    def test_arrivals_monotone_nonnegative(self):
        log = ZipfianWorkload(50, 7, WorkloadSpec(num_queries=100, seed=0)).generate()
        arrivals = [q.arrival for q in log]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0.0

    def test_hot_entities_dominate_accesses(self):
        workload = ZipfianWorkload(
            200, 5, WorkloadSpec(num_queries=500, zipf_exponent=1.2, seed=3)
        )
        log = workload.generate()
        ent_counts, _ = log.access_counts()
        hot = set(workload.hot_entities(0.1).tolist())
        hot_accesses = sum(c for e, c in ent_counts.items() if e in hot)
        assert hot_accesses / sum(ent_counts.values()) > 0.5

    def test_from_graph_calibrates_to_graph_hotness(self, small_graph):
        from repro.kg.stats import access_frequencies

        workload = ZipfianWorkload.from_graph(
            small_graph, WorkloadSpec(num_queries=10, seed=0)
        )
        ent_counts, _ = access_frequencies(small_graph)
        assert workload.entity_order[0] == int(np.argmax(ent_counts))


# ----------------------------------------------------- checkpoint -> store


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    config = TrainingConfig(
        model="transe", dim=8, epochs=1, batch_size=32, num_negatives=4,
        num_machines=2, cache_strategy="dps", cache_capacity=64, seed=0,
    )
    from repro.kg.datasets import generate_dataset
    from repro.kg.splits import split_triples

    graph = generate_dataset("fb15k", scale=0.015, seed=7)
    split = split_triples(graph, seed=7)
    trainer = make_trainer("hetkg-d", config)
    trainer.train(split.train)
    path = tmp_path_factory.mktemp("ckpt") / "model.npz"
    save_checkpoint(trainer, path)
    return trainer, graph, path


class TestEmbeddingStore:
    def test_checkpoint_roundtrip_scores_identical(self, trained, rng):
        trainer, graph, path = trained
        store = EmbeddingStore.from_checkpoint(path, num_machines=3)
        assert store.num_entities == graph.num_entities
        assert store.num_relations == graph.num_relations

        heads = rng.integers(0, graph.num_entities, size=32)
        rels = rng.integers(0, graph.num_relations, size=32)
        tails = rng.integers(0, graph.num_entities, size=32)
        served = store.score_triples(heads, rels, tails)

        ent = trainer.server.store.table("entity")
        rel = trainer.server.store.table("relation")
        expected = trainer.model.score(ent[heads], rel[rels], ent[tails])
        np.testing.assert_allclose(served, expected)

    def test_from_trainer_shares_tables(self, trained):
        trainer, _, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        assert store.store is trainer.server.store
        assert store.model is trainer.model

    def test_geometry_mismatch_rejected(self, trained):
        _, _, path = trained
        from repro.models.base import get_model
        from repro.ps.kvstore import ShardedKVStore

        wrong = get_model("transe", 4)
        store = EmbeddingStore.from_checkpoint(path)
        with pytest.raises(ValueError, match="geometry"):
            EmbeddingStore(wrong, store.store)

    def test_rank_candidates_orders_by_score(self, trained):
        trainer, graph, path = trained
        store = EmbeddingStore.from_checkpoint(path)
        candidates = np.arange(min(20, graph.num_entities))
        top = store.rank_candidates(0, 0, None, candidates, k=5)
        scores = store.score_triples(
            np.full(len(candidates), 0), np.full(len(candidates), 0), candidates
        )
        best = candidates[np.lexsort((candidates, -scores))][:5]
        assert top.tolist() == best.tolist()


# ------------------------------------------------------------------- frontend


class TestServingFrontend:
    def test_latency_percentile_helpers(self):
        assert latency_percentile([], 99) == 0.0
        assert latency_percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            latency_percentile([1.0], 150)

    def test_single_query_latency_accounts_wait_and_service(self, trained):
        trainer, _, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        frontend = ServingFrontend(
            store, batcher=QueryBatcher(max_batch=8, max_wait=0.01)
        )
        report = frontend.run([score_query(0, arrival=0.0)])
        assert report.num_queries == 1
        result = frontend.results[0]
        # A lone query waits out the full max_wait before dispatch.
        assert result.latency >= 0.01
        assert result.completion == pytest.approx(frontend.clock.elapsed)

    def test_answers_match_store_scores(self, trained):
        trainer, _, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        frontend = ServingFrontend(store)
        frontend.run([score_query(0, head=1, relation=0, tail=2)])
        expected = store.score_triples(
            np.array([1]), np.array([0]), np.array([2])
        )[0]
        assert frontend.results[0].answer == pytest.approx(expected)

    def test_cache_does_not_change_answers(self, trained):
        trainer, graph, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        log = ZipfianWorkload.from_graph(
            graph, WorkloadSpec(num_queries=60, seed=2)
        ).generate()
        cached = ServingFrontend(
            store, cache=ServingCache.dynamic(64, policy="lru")
        )
        plain = ServingFrontend(store)
        cached.run(log.queries)
        plain.run(log.queries)
        for a, b in zip(cached.results, plain.results):
            assert a.qid == b.qid
            if a.kind == "score":
                assert a.answer == pytest.approx(b.answer)
            else:
                assert np.array_equal(a.answer, b.answer)

    def test_hot_cache_beats_no_cache_on_zipf_stream(self, trained):
        """Acceptance: a 10%-of-entities hot set yields a measurably higher
        hit ratio and lower p99 than serving without a cache."""
        trainer, graph, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        workload = ZipfianWorkload.from_graph(
            graph,
            WorkloadSpec(num_queries=1200, zipf_exponent=1.1, seed=4),
        )
        stream = workload.generate()
        warmup = QueryLog(stream.queries[:300])
        measured = stream.queries[300:]
        capacity = max(2, int(0.1 * (store.num_entities + store.num_relations)))

        def run(cache):
            frontend = ServingFrontend(
                store,
                batcher=QueryBatcher(max_batch=32, max_wait=2e-3),
                cache=cache,
                byte_scale=25.0,
            )
            return frontend.run(measured)

        baseline = run(None)
        cached = run(ServingCache.from_query_log(warmup, capacity))
        assert baseline.hit_ratio == 0.0
        assert cached.hit_ratio > 0.2  # measurable
        assert cached.latency_p99 < baseline.latency_p99
        assert cached.comm.remote_bytes < baseline.comm.remote_bytes
        assert cached.num_queries == baseline.num_queries == len(measured)

    def test_comm_metering_matches_ownership(self, trained):
        trainer, _, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        frontend = ServingFrontend(store, machine=0)
        frontend.run([score_query(0, head=1, relation=0, tail=2)])
        comm = frontend.comm_totals
        assert comm.total_bytes > 0
        assert comm.total_messages >= 1

    def test_clock_categories_cover_elapsed(self, trained):
        trainer, graph, _ = trained
        store = EmbeddingStore.from_trainer(trainer)
        log = ZipfianWorkload.from_graph(
            graph, WorkloadSpec(num_queries=100, seed=6)
        ).generate()
        frontend = ServingFrontend(store)
        frontend.run(log.queries)
        clock = frontend.clock
        total = sum(clock.by_category.values())
        assert total == pytest.approx(clock.elapsed)
