"""Tests for the eviction-policy baselines (Table VI machinery)."""

import numpy as np
import pytest

from repro.cache.policies import (
    FIFOCache,
    ImportanceCache,
    LFUCache,
    LRUCache,
    hotness_window_hit_ratio,
    replay_trace,
)


class TestFIFO:
    def test_admits_until_full(self):
        cache = FIFOCache(2)
        assert not cache.access(1)
        assert not cache.access(2)
        assert cache.access(1)
        assert len(cache) == 2

    def test_evicts_oldest(self):
        cache = FIFOCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert not cache.access(1)
        assert cache.access(3)

    def test_hit_does_not_refresh_position(self):
        cache = FIFOCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # hit; FIFO ignores recency
        cache.access(3)  # still evicts 1
        assert not cache.access(1)


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # refresh 1
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_lru_beats_fifo_on_looping_trace(self):
        """A trace with a popular recurring key: LRU keeps it, FIFO cycles
        it out."""
        trace = []
        for i in range(100):
            trace.extend([0, 100 + i, 200 + i])  # key 0 recurs every 3 steps
        lru = replay_trace(LRUCache(3), trace)
        fifo = replay_trace(FIFOCache(3), trace)
        assert lru >= fifo


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 2 (freq 1 < freq 2 of key 1)
        assert cache.access(1)
        assert not cache.access(2)

    def test_keeps_heavy_hitters(self):
        cache = LFUCache(1)
        for _ in range(5):
            cache.access(7)
        cache.access(8)  # evicts 7? No: 8 admitted, 7 evicted (only slot)
        # either way the heavy hitter returns as a miss at most once
        cache.access(7)
        assert cache.access(7)


class TestImportance:
    def test_static_membership(self):
        cache = ImportanceCache(2, {1: 10.0, 2: 5.0, 3: 1.0})
        assert cache.access(1)
        assert cache.access(2)
        assert not cache.access(3)
        assert not cache.access(3)  # never admitted

    def test_capacity_respected(self):
        cache = ImportanceCache(1, {1: 2.0, 2: 1.0})
        assert len(cache) == 1
        assert cache.access(1)
        assert not cache.access(2)

    def test_deterministic_tie_break(self):
        a = ImportanceCache(1, {5: 1.0, 3: 1.0})
        assert a.access(3)


class TestHitRatioAccounting:
    def test_ratio(self):
        cache = LRUCache(4)
        replay_trace(cache, [1, 1, 1, 2])
        assert cache.hit_ratio == 0.5
        assert cache.hits == 2 and cache.misses == 2

    def test_empty_trace(self):
        cache = LRUCache(4)
        assert replay_trace(cache, []) == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FIFOCache(0)


class TestHotnessWindow:
    def test_perfect_when_capacity_covers_window(self):
        batches = [np.array([1, 2]), np.array([2, 3])]
        assert hotness_window_hit_ratio(batches, capacity=4, window=2) == 1.0

    def test_partial_coverage(self):
        # Window of one batch with 4 distinct keys, capacity 2 -> 50%.
        batches = [np.array([1, 2, 3, 4])]
        assert hotness_window_hit_ratio(batches, capacity=2, window=1) == 0.5

    def test_prefers_frequent_keys(self):
        batches = [np.array([7, 7, 7, 1, 2, 3])]
        ratio = hotness_window_hit_ratio(batches, capacity=1, window=1)
        assert ratio == 0.5  # the three 7s hit

    def test_windows_are_independent(self):
        batches = [np.array([1, 1]), np.array([2, 2])]
        assert hotness_window_hit_ratio(batches, capacity=1, window=1) == 1.0

    def test_empty(self):
        assert hotness_window_hit_ratio([], 4, 2) == 0.0

    def test_beats_lru_on_skewed_trace(self, rng):
        """The Table VI headline: hotness windows beat recency eviction on
        Zipf-skewed pull streams."""
        keys = rng.zipf(1.5, size=4000) % 200
        batches = [keys[i : i + 40] for i in range(0, len(keys), 40)]
        hot = hotness_window_hit_ratio(batches, capacity=20, window=8)
        lru = replay_trace(LRUCache(20), keys)
        assert hot > lru


from repro.cache.policies import ARCCache, ClockCache, TwoQueueCache


class TestClock:
    def test_second_chance(self):
        cache = ClockCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # sets 1's reference bit
        cache.access(3)  # hand skips 1 (clears bit), evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_capacity(self):
        cache = ClockCache(3)
        for k in range(10):
            cache.access(k)
        assert len(cache) == 3

    def test_behaves_between_fifo_and_lru(self, rng):
        keys = (rng.zipf(1.3, size=3000) % 100).tolist()
        fifo = replay_trace(FIFOCache(10), keys)
        clock = replay_trace(ClockCache(10), keys)
        assert clock >= fifo - 0.02


class TestTwoQueue:
    def test_promotion_on_second_access(self):
        cache = TwoQueueCache(4, probation_fraction=0.5)
        cache.access(1)  # probation
        assert cache.access(1)  # promoted
        # Flood the probation queue; 1 must survive in protected.
        for k in range(10, 16):
            cache.access(k)
        assert cache.access(1)

    def test_one_hit_wonders_do_not_evict_protected(self):
        cache = TwoQueueCache(4, probation_fraction=0.25)
        cache.access(1)
        cache.access(1)  # protected
        for k in range(100, 140):
            cache.access(k)  # scan of cold keys
        assert cache.access(1)

    def test_capacity(self):
        cache = TwoQueueCache(4)
        for k in range(50):
            cache.access(k % 7)
        assert len(cache) <= 4

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TwoQueueCache(4, probation_fraction=1.0)


class TestARC:
    def test_frequent_keys_survive_scan(self):
        cache = ARCCache(4)
        for _ in range(5):
            cache.access(1)
            cache.access(2)
        for k in range(100, 120):  # sequential scan
            cache.access(k)
        # ARC's frequency segment should have protected 1 and 2 better
        # than plain LRU would.
        lru = LRUCache(4)
        for _ in range(5):
            lru.access(1)
            lru.access(2)
        for k in range(100, 120):
            lru.access(k)
        arc_hits = int(cache.access(1)) + int(cache.access(2))
        lru_hits = int(lru.access(1)) + int(lru.access(2))
        assert arc_hits >= lru_hits

    def test_capacity_bound(self, rng):
        cache = ARCCache(8)
        for k in (rng.integers(0, 50, size=2000)).tolist():
            cache.access(k)
        assert len(cache) <= 8

    def test_hit_accounting(self):
        cache = ARCCache(4)
        assert not cache.access(1)
        assert cache.access(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_at_least_lru_on_skewed_trace(self, rng):
        keys = (rng.zipf(1.4, size=4000) % 150).tolist()
        arc = replay_trace(ARCCache(15), keys)
        lru = replay_trace(LRUCache(15), keys)
        assert arc >= lru - 0.03
