"""Trace quickstart: record and inspect a Chrome trace of a training run.

Trains HET-KG-D on a small synthetic FB15k with the `repro.obs` tracer
attached, prints the per-worker span/clock reconciliation (they must
agree — the spans are driven by the same simulated clocks the cost
models charge), dumps the aggregated counters, and writes a
`trace.json` that opens directly in chrome://tracing or
https://ui.perfetto.dev.

Run:  python examples/trace_quickstart.py
"""

from repro import TrainingConfig, Tracer, generate_dataset, make_trainer, split_triples
from repro.obs.export import validate_chrome_trace
from repro.utils.tables import format_table


def main() -> None:
    # 1. A small workload: 2%-scale synthetic FB15k, 2 simulated machines.
    graph = generate_dataset("fb15k", scale=0.02, seed=0)
    split = split_triples(graph, seed=0)
    config = TrainingConfig(
        model="transe",
        dim=16,
        epochs=2,
        batch_size=64,
        num_negatives=8,
        num_machines=2,
        cache_strategy="dps",
        cache_capacity=256,
        sync_period=8,
        seed=0,
    )

    # 2. Attach a tracer explicitly.  (The CLI equivalent is
    #    `python -m repro train ... --trace trace.json`, which installs a
    #    process-wide tracer via repro.obs.set_tracer.)
    tracer = Tracer()
    trainer = make_trainer("hetkg-d", config)
    result = trainer.train(split.train, tracer=tracer)

    # 3. Reconciliation: per-category span totals equal each worker's
    #    SimClock breakdown — the trace is the cost model, not a sample.
    rows = []
    for worker in trainer.workers:
        totals = tracer.sink.category_totals(f"worker{worker.machine}")
        for category in ("compute", "communication"):
            rows.append(
                [
                    f"worker{worker.machine}",
                    category,
                    totals[category],
                    worker.clock.category(category),
                ]
            )
    print(
        format_table(
            ["track", "category", "span total (s)", "clock total (s)"], rows
        )
    )

    # 4. Aggregated counters, independent of the span stream.
    snapshot = tracer.metrics.snapshot()
    for name in sorted(snapshot):
        print(f"{name:24s} {snapshot[name]:,.0f}")

    # 5. Export and validate the Chrome trace.
    trace = tracer.chrome_trace()
    summary = validate_chrome_trace(trace)
    tracer.export("trace.json")
    print(
        f"\nwrote trace.json: {summary['spans']:.0f} spans, "
        f"{summary['counters']:.0f} counter samples, "
        f"{summary['seconds[communication]']:.3f}s simulated communication "
        f"(sim_time {result.sim_time:.3f}s)"
    )
    print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
