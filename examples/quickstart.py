"""Quickstart: train HET-KG on a synthetic FB15k and evaluate it.

Trains the TransE model with the DPS hot-embedding cache on a 4-machine
simulated cluster, prints the communication/computation breakdown and the
filtered link-prediction metrics, and compares against the cache-less
DGL-KE baseline on the identical workload.

Run:  python examples/quickstart.py
"""

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.utils.tables import format_table


def main() -> None:
    # 1. Data: a 5%-scale synthetic FB15k with its published skew shape,
    #    split 90/5/5 like the paper's Freebase evaluation.
    graph = generate_dataset("fb15k", scale=0.05, seed=0)
    split = split_triples(graph, seed=0)
    print(f"dataset: {graph}")

    # 2. Shared hyperparameters (Table II of the paper, simulation scale).
    config = TrainingConfig(
        model="transe",
        dim=16,
        lr=0.1,
        batch_size=128,
        num_negatives=16,
        epochs=6,
        num_machines=4,
        cache_strategy="dps",  # overridden per system below
        cache_capacity=1024,
        entity_ratio=0.25,  # 25% entities / 75% relations (Fig. 8c)
        sync_period=8,  # staleness bound P (Fig. 8b)
        dps_window=16,  # DPS prefetch window D
        seed=0,
    )

    # 3. Train HET-KG-D and DGL-KE on the identical workload.
    rows = []
    for system in ("dglke", "hetkg-d"):
        trainer = make_trainer(system, config)
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=200,
            eval_candidates=None,
        )
        rows.append(
            [
                result.system,
                result.final_metrics["mrr"],
                result.final_metrics["hits@10"],
                result.sim_time,
                result.communication_time,
                result.cache_hit_ratio,
            ]
        )

    print()
    print(
        format_table(
            ["system", "MRR", "Hits@10", "time (s)", "comm (s)", "cache hits"],
            rows,
            title="HET-KG vs DGL-KE (simulated 4-machine cluster, 1 Gbps)",
        )
    )
    speedup = rows[0][3] / rows[1][3]
    print(f"\nHET-KG-D speedup over DGL-KE: {speedup:.2f}x")


if __name__ == "__main__":
    main()
