"""Serving quickstart: train, checkpoint, and serve link-prediction queries.

End-to-end tour of ``repro.serving``:

1. train HET-KG-D briefly on a synthetic FB15k and write a checkpoint,
2. reload the checkpoint into an :class:`EmbeddingStore` sharded over
   4 simulated machines,
3. generate a Zipfian query stream calibrated to the graph's hotness
   skew,
4. profile a warmup prefix into a static hot set (the training-side
   filtering algorithm, reused),
5. replay the measured stream under no cache / static hot set / LRU and
   compare throughput, latency percentiles, and hit ratio.

Run:  python examples/serving_quickstart.py
"""

import tempfile

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.core.checkpoint import save_checkpoint
from repro.serving import (
    EmbeddingStore,
    QueryBatcher,
    ServingCache,
    ServingFrontend,
    ServingReport,
    WorkloadSpec,
    ZipfianWorkload,
)
from repro.utils.tables import format_table


def main() -> None:
    # 1. Train a small model and checkpoint it.
    graph = generate_dataset("fb15k", scale=0.05, seed=0)
    split = split_triples(graph, seed=0)
    trainer = make_trainer(
        "hetkg-d",
        TrainingConfig(model="transe", dim=16, epochs=3, num_machines=4, seed=0),
    )
    trainer.train(split.train)
    checkpoint = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
    save_checkpoint(trainer, checkpoint.name)
    print(f"trained and checkpointed: {graph}")

    # 2. Reload into a serving store (4 shards, round-robin ownership).
    store = EmbeddingStore.from_checkpoint(checkpoint.name, num_machines=4)
    print(f"serving store: {store}")

    # 3. A Zipfian stream whose hot entities are the graph's hot entities.
    spec = WorkloadSpec(
        num_queries=6000, arrival_rate=2000.0, zipf_exponent=1.1, seed=1
    )
    workload = ZipfianWorkload.from_graph(graph, spec)
    stream = workload.generate()
    warmup, measured = stream.queries[:1500], stream.queries[1500:]

    # 4. Pin a hot set covering ~10% of all embedding rows, profiled from
    #    the warmup log with the paper's filtering algorithm.
    capacity = max(2, int(0.1 * (store.num_entities + store.num_relations)))
    from repro.serving.queries import QueryLog

    static = ServingCache.from_query_log(QueryLog(warmup), capacity)

    # 5. Compare cache-off, static hot set, and reactive LRU.
    rows = []
    for label, cache in (
        ("no-cache", None),
        ("static hot set", static),
        ("lru", ServingCache.dynamic(capacity, policy="lru")),
    ):
        frontend = ServingFrontend(
            store,
            batcher=QueryBatcher(max_batch=32, max_wait=2e-3),
            cache=cache,
            byte_scale=25.0,  # charge wire bytes at the paper's d=400
        )
        report = frontend.run(measured, label=label)
        rows.append(report.as_row())
    print(format_table(ServingReport.headers(), rows, title="serving comparison"))
    print(
        "\nThe static hot set (profiled once, never evicted) matches or "
        "beats LRU here\nbecause the Zipf head is stable — the same "
        "observation HET-KG exploits in training."
    )


if __name__ == "__main__":
    main()
