"""Cache tuning walkthrough: the three knobs of the hot-embedding cache.

Reproduces the spirit of the paper's Fig. 8 on a small synthetic
Freebase-86m: sweep (a) cache capacity, (b) the staleness bound ``P``, and
(c) the entity/relation split, and print how hit ratio, training time, and
accuracy respond.  Use this to pick cache settings for your own graphs.

Run:  python examples/cache_tuning.py
"""

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.utils.tables import format_table


def train_with(split, graph, **overrides):
    config = TrainingConfig(
        model="transe",
        dim=16,
        epochs=3,
        batch_size=128,
        num_negatives=16,
        num_machines=4,
        cache_strategy="dps",
        cache_capacity=1024,
        entity_ratio=0.25,
        sync_period=8,
        dps_window=16,
        seed=0,
    ).with_overrides(**overrides)
    trainer = make_trainer("hetkg-d", config)
    result = trainer.train(
        split.train,
        eval_graph=split.valid,
        eval_max_queries=100,
        eval_candidates=500,
    )
    return result


def main() -> None:
    graph = generate_dataset("freebase86m-mini", scale=0.05, seed=0)
    split = split_triples(graph, seed=0)
    print(f"dataset: {graph}\n")

    # (a) Cache capacity: bigger caches hit more, with diminishing returns.
    rows = []
    for capacity in (64, 256, 1024, 4096):
        r = train_with(split, graph, cache_capacity=capacity)
        rows.append([capacity, r.cache_hit_ratio, r.sim_time, r.final_metrics["mrr"]])
    print(format_table(
        ["capacity", "hit ratio", "time (s)", "MRR"], rows,
        title="(a) cache capacity",
    ))

    # (b) Staleness bound P: fewer syncs -> faster, but stale reads grow.
    rows = []
    for period in (1, 4, 8, 32, 128):
        r = train_with(split, graph, sync_period=period)
        rows.append([period, r.communication_time, r.sim_time, r.final_metrics["mrr"]])
    print()
    print(format_table(
        ["P", "comm (s)", "time (s)", "MRR"], rows,
        title="(b) staleness bound P",
    ))

    # (c) Entity share of the cache: relations are denser, so a low entity
    # ratio wins (the paper fixes 25/75).  Capacity is held below the
    # relation vocabulary so the trade-off binds.
    rows = []
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        r = train_with(
            split, graph,
            entity_ratio=ratio,
            cache_capacity=max(16, graph.num_relations // 2),
        )
        rows.append([ratio, r.cache_hit_ratio, r.sim_time])
    print()
    print(format_table(
        ["entity ratio", "hit ratio", "time (s)"], rows,
        title="(c) entity/relation split",
    ))


if __name__ == "__main__":
    main()
