"""Staleness in theory and practice (§IV-C of the paper).

The hot-embedding cache trades consistency for communication: cached rows
may be up to ``P`` iterations stale.  The paper's analysis says this is
asymptotically free — once training runs past ``T = Omega(K^2)``
iterations (where ``K`` is the bounded version delay), the convergence
rate matches fully-synchronous training at ``O(1/sqrt(mT))``.

This example puts theory and simulation side by side: for several
synchronization periods it reports the analysis' delay bound ``K``, the
theoretical burn-in ``T``, and the *measured* final MRR and training time
of HET-KG-C on a synthetic Freebase slice.

Run:  python examples/staleness_analysis.py
"""

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.analysis.convergence_theory import (
    StalenessBound,
    minimum_iterations,
    staleness_from_config,
)
from repro.utils.tables import format_table

WORKERS = 4
PERIODS = (1, 4, 8, 32, 128)


def main() -> None:
    graph = generate_dataset("freebase86m-mini", scale=0.05, seed=0)
    split = split_triples(graph, seed=0)
    print(f"dataset: {graph}\n")

    rows = []
    for period in PERIODS:
        config = TrainingConfig(
            model="transe",
            dim=16,
            epochs=6,
            batch_size=128,
            num_negatives=16,
            num_machines=WORKERS,
            cache_strategy="cps",
            cache_capacity=1024,
            sync_period=period,
            seed=0,
        )
        # Theory: map (P, workers) onto the delay bound K and compute the
        # burn-in after which staleness is provably harmless.  The problem
        # constants are placeholders at a realistic order of magnitude —
        # the point is how the burn-in scales with K.
        k = staleness_from_config(period, WORKERS)
        bound = StalenessBound(
            initial_gap=10.0,
            lipschitz=1.0,
            sigma=2.0,
            staleness=k,
            batch_size=config.batch_size,
        )
        burn_in = minimum_iterations(bound)

        trainer = make_trainer("hetkg-c", config)
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=150,
            eval_candidates=500,
        )
        rows.append(
            [
                period,
                k,
                burn_in,
                result.final_metrics["mrr"],
                result.sim_time,
                result.communication_time,
            ]
        )

    print(
        format_table(
            ["P", "delay bound K", "theory burn-in T", "MRR", "time (s)", "comm (s)"],
            rows,
            title=f"Bounded staleness with {WORKERS} workers (HET-KG-C)",
        )
    )
    print(
        "\nReading: time and communication fall as P grows; the theory's"
        "\nburn-in grows ~K^2, and once training exceeds it, accuracy is"
        "\nessentially unaffected — which the MRR column shows for small P."
        "\nVery large P (K in the hundreds) would need far more iterations"
        "\nthan we run, and the MRR indeed drifts down there (Fig. 9)."
    )


if __name__ == "__main__":
    main()
