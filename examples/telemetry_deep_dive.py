"""Telemetry deep dive: watch the cache work, iteration by iteration.

Attaches a :class:`repro.core.telemetry.Telemetry` recorder to a HET-KG-D
run and inspects what epoch-level summaries hide:

* remote bytes per iteration before vs after the cache warms up;
* the periodic spikes caused by the bounded-staleness synchronization;
* the analytic hit-ratio ceiling from the access distribution
  (:func:`repro.kg.analytics.hot_set_coverage`) next to the measured ratio.

Also exports the full per-iteration log to CSV for external analysis.

Run:  python examples/telemetry_deep_dive.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.core.telemetry import Telemetry
from repro.kg.analytics import hot_set_coverage
from repro.kg.stats import access_frequencies
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    graph = generate_dataset("fb15k", scale=0.05, seed=0)
    split = split_triples(graph, seed=0)
    print(f"dataset: {graph}\n")

    config = TrainingConfig(
        model="transe",
        dim=16,
        epochs=4,
        batch_size=128,
        num_negatives=16,
        num_machines=4,
        cache_strategy="dps",
        cache_capacity=1024,
        sync_period=8,
        dps_window=16,
        seed=0,
    )
    telemetry = Telemetry()
    trainer = make_trainer("hetkg-d", config)
    trainer.train(split.train, telemetry=telemetry)

    # 1. Warm-up: compare the first and last quartile of each worker's run.
    rows = []
    for worker in trainer.workers:
        records = telemetry.for_worker(worker.machine)
        quarter = max(1, len(records) // 4)
        early = np.mean([r.remote_bytes for r in records[:quarter]])
        late = np.mean([r.remote_bytes for r in records[-quarter:]])
        rows.append([worker.machine, len(records), early / 1e3, late / 1e3])
    print(
        format_table(
            ["worker", "steps", "early remote KB/step", "late remote KB/step"],
            rows,
            title="Cache warm-up: remote traffic per step",
        )
    )

    # 2. Synchronization spikes: steps moving the most remote bytes.
    records = telemetry.for_worker(0)
    spikes = sorted(records, key=lambda r: -r.remote_bytes)[:5]
    print("\nworker 0's five heaviest steps (cache sync / rebuild points):")
    for r in spikes:
        print(
            f"  iteration {r.iteration:4d}: {r.remote_bytes / 1e3:8.1f} KB, "
            f"{r.cache_hits} hits / {r.cache_misses} misses"
        )

    # 3. Analytic ceiling vs measured hit ratio.
    ent_counts, rel_counts = access_frequencies(
        split.train, negatives_per_positive=2, rng=make_rng(0)
    )
    combined = np.concatenate([ent_counts, rel_counts])
    (_, ceiling), = hot_set_coverage(combined, (config.cache_capacity,))
    measured = telemetry.summary()["hit_ratio"]
    print(f"\nanalytic top-{config.cache_capacity} coverage ceiling: {ceiling:.3f}")
    print(f"measured hit ratio:                        {measured:.3f}")

    # 4. CSV export.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "telemetry.csv"
        telemetry.to_csv(path)
        lines = path.read_text().splitlines()
        print(f"\nCSV export: {len(lines) - 1} rows, header: {lines[0]}")


if __name__ == "__main__":
    main()
