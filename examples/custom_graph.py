"""Bring your own knowledge graph: TSV loading, model zoo, and evaluation.

Shows the library as a downstream user would adopt it:

1. write a small hand-authored knowledge graph to TSV and load it back
   (the format DGL-KE distributes datasets in);
2. train three different scoring models (TransE, DistMult, ComplEx) on it
   with the HET-KG cache;
3. evaluate with filtered ranking and inspect per-model behaviour;
4. query the trained embeddings directly for tail prediction.

Run:  python examples/custom_graph.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    TrainingConfig,
    load_tsv,
    make_trainer,
    save_tsv,
    split_triples,
)
from repro.kg.graph import KnowledgeGraph
from repro.utils.tables import format_table

#: A toy family/geography graph with clear regularities to learn.
FAMILIES = ["smith", "jones", "garcia", "chen", "patel", "okafor"]
CITIES = ["springfield", "rivertown", "lakeside"]


def build_graph() -> KnowledgeGraph:
    triples = []
    rng = np.random.default_rng(0)
    for f, family in enumerate(FAMILIES):
        city = CITIES[f % len(CITIES)]
        members = [f"{family}_{i}" for i in range(6)]
        for i, person in enumerate(members):
            triples.append((person, "lives_in", city))
            triples.append((person, "member_of", f"house_{family}"))
            if i > 0:
                triples.append((members[0], "parent_of", person))
        for i in range(1, 6):
            for j in range(i + 1, 6):
                triples.append((members[i], "sibling_of", members[j]))
    for city in CITIES:
        triples.append((city, "located_in", "the_valley"))
    return KnowledgeGraph.from_labeled_triples(triples)


def main() -> None:
    graph = build_graph()

    # Round-trip through the TSV interchange format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "family.tsv"
        save_tsv(graph, path)
        graph = load_tsv(path)
    print(f"loaded: {graph}")

    split = split_triples(graph, train_fraction=0.85, valid_fraction=0.05, seed=1)

    rows = []
    trained = {}
    for model_name in ("transe", "distmult", "complex"):
        config = TrainingConfig(
            model=model_name,
            dim=16,
            epochs=30,
            batch_size=32,
            num_negatives=8,
            num_machines=2,
            cache_strategy="cps",
            cache_capacity=64,
            sync_period=4,
            seed=1,
        )
        trainer = make_trainer("hetkg-c", config)
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=None,
            eval_candidates=None,
        )
        trained[model_name] = trainer
        rows.append(
            [
                model_name,
                result.final_metrics["mrr"],
                result.final_metrics["hits@1"],
                result.final_metrics["hits@10"],
            ]
        )
    print()
    print(format_table(["model", "MRR", "Hits@1", "Hits@10"], rows,
                       title="Filtered link prediction on the family graph"))

    # Query: who does smith_0 parent? Rank all entities as tails.
    trainer = trained["transe"]
    entity = trainer.server.store.table("entity")
    relation = trainer.server.store.table("relation")
    ent_id = {label: i for i, label in enumerate(graph.entity_labels)}
    rel_id = {label: i for i, label in enumerate(graph.relation_labels)}
    h = ent_id["smith_0"]
    r = rel_id["parent_of"]
    n = graph.num_entities
    scores = trainer.model.score(
        np.repeat(entity[h][None, :], n, axis=0),
        np.repeat(relation[r][None, :], n, axis=0),
        entity,
    )
    top = np.argsort(scores)[::-1][:5]
    print("\ntop predicted tails for (smith_0, parent_of, ?):")
    for t in top:
        print(f"  {graph.entity_labels[int(t)]:18s} score={scores[int(t)]:.3f}")


if __name__ == "__main__":
    main()
