"""Scalability study: how each system scales with cluster size.

Reproduces the paper's Fig. 6 scenario on a synthetic Freebase-86m slice:
train PBG, DGL-KE, and HET-KG-D with 1, 2, 4, and 8 simulated machines and
report the speedup over the single-machine run, plus where the time goes.

The paper's findings this demonstrates:
* PBG scales worst — its dense relation traffic grows with batch
  throughput, not with locality;
* HET-KG's speedup stays ~30% above DGL-KE's because the hot-embedding
  cache removes most of the *extra* cross-machine pulls that appear as the
  entity table spreads over more machines.

Run:  python examples/scalability_study.py
"""

from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
from repro.utils.tables import format_table

WORKER_COUNTS = (1, 2, 4, 8)
SYSTEMS = ("pbg", "dglke", "hetkg-d")


def main() -> None:
    graph = generate_dataset("freebase86m-mini", scale=0.1, seed=0)
    split = split_triples(graph, seed=0)
    print(f"dataset: {graph}\n")

    rows = []
    for system in SYSTEMS:
        times = {}
        comm = {}
        for k in WORKER_COUNTS:
            config = TrainingConfig(
                model="transe",
                dim=16,
                epochs=2,
                batch_size=128,
                num_negatives=16,
                num_machines=k,
                cache_strategy="dps",
                cache_capacity=1024,
                dps_window=32,
                sync_period=16,
                # The paper's scalability regime is CPU-bound TransE at
                # d = 400: per-batch compute is substantial.  With compute
                # nearly free, no ingress-limited PS system scales and the
                # sweep degenerates (see docs/simulation.md).
                compute_throughput=4e8,
                seed=0,
            )
            trainer = make_trainer(system, config)
            result = trainer.train(split.train)
            times[k] = result.sim_time
            comm[k] = result.communication_fraction
        base = times[WORKER_COUNTS[0]]
        rows.append(
            [trainer.system_name]
            + [base / times[k] for k in WORKER_COUNTS]
            + [comm[WORKER_COUNTS[-1]]]
        )

    headers = (
        ["system"]
        + [f"speedup @{k}w" for k in WORKER_COUNTS]
        + [f"comm frac @{WORKER_COUNTS[-1]}w"]
    )
    print(format_table(headers, rows, title="Scalability (Fig. 6 scenario)"))
    print(
        "\nExpected shape: PBG flattest; HET-KG-D's speedups track ~30% "
        "above DGL-KE's as workers increase."
    )


if __name__ == "__main__":
    main()
