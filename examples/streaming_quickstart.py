"""Streaming quickstart: train online through a drifting update stream.

End-to-end tour of ``repro.stream``:

1. generate a synthetic FB15k and a seeded hot-set-rotation event stream
   (inserts concentrate on a rotating hot subset; stale hot triples are
   deleted; new entities are minted mid-run),
2. train HET-KG-D *online* through it — PS shards grow for new ids,
   stale cache rows are evicted, ingestion traffic is metered,
3. do the same with the drift-adaptive ADAPTIVE strategy (hetkg-a) and
   compare cache hit ratio, simulated time, and prequential MRR.

Run:  python examples/streaming_quickstart.py
"""

import math

from repro import TrainingConfig, generate_dataset, make_trainer
from repro.stream import OnlineTrainer, make_stream
from repro.utils.tables import format_table


def main() -> None:
    # 1. A graph plus a drifting update stream over it (same seed =>
    #    byte-identical stream; print the fingerprint to prove it).
    graph = generate_dataset("fb15k", scale=0.05, seed=0)
    config = TrainingConfig(model="transe", dim=16, epochs=3, num_machines=4, seed=0)
    steps = config.epochs * math.ceil(graph.num_triples / config.batch_size)
    stream = make_stream(
        "rotation", graph, steps=steps, seed=17, interval=8, inserts_per_update=64
    )
    print(f"graph: {graph}")
    print(
        f"stream: {len(stream)} updates, +{stream.total_inserts}/"
        f"-{stream.total_deletes} triples, fingerprint {stream.fingerprint()[:12]}"
    )

    # 2./3. Train DPS and ADAPTIVE online through the *same* stream.
    rows = []
    for system in ("hetkg-d", "hetkg-a"):
        online = OnlineTrainer(make_trainer(system, config), stream, eval_every=32)
        r = online.train(graph)
        rows.append(
            [system, r.cache_hit_ratio, r.sim_time, r.ingest_time,
             r.prequential.final_mrr, r.adaptive_rebuilds]
        )
        print(
            f"{system}: applied {r.updates_applied} updates, "
            f"+{r.entities_added} entities, "
            f"{r.cache_rows_invalidated} cache rows invalidated"
        )
    print(
        format_table(
            ["system", "hit ratio", "time (s)", "ingest (s)", "preq. MRR", "rebuilds"],
            rows,
            title="online training under hot-set rotation",
        )
    )


if __name__ == "__main__":
    main()
