"""Tiered-store microbenchmarks + warm-path perf-regression gate.

Times the tiered table's access paths against the dense ndarray gather
they stand in for, on the same machine in the same process — so the
**overhead factors are machine-independent** and CI can gate on them
(same discipline as ``bench_hotpath.py``: relative ratios, not absolute
nanoseconds).

Gated paths:

* ``hot_gather``   — all blocks hot: CacheTable lookup + block-offset
  indexing.  This is the common case once the hot set converges.
* ``warm_gather``  — nothing hot: memmap fancy-index + residency
  bookkeeping.  The oversubscription miss path.
* ``mixed_gather`` — a skewed 90/10 hot/warm mix, the steady-state shape.
* ``rebalance``    — one full promotion pass over the block counters.

The gate fails when a path's overhead factor (tiered ns / dense ns)
exceeds the committed factor times ``REGRESSION_FACTOR``.

The bench also replays a Zipf workload under shrinking budgets and
reports the hit-rate vs resident-fraction curve (informational — the
``memory-tiering`` experiment is the asserted version).

Usage::

    PYTHONPATH=src python benchmarks/bench_tiered_store.py            # write BENCH_tier.json
    PYTHONPATH=src python benchmarks/bench_tiered_store.py --check    # CI gate
    PYTHONPATH=src python benchmarks/bench_tiered_store.py --quick    # fewer reps
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.tier import (  # noqa: E402
    MemoryBudget,
    TierCostModel,
    TierPolicy,
    TieredTable,
)
from repro.tier.policy import TierMeter  # noqa: E402
from repro.utils.simclock import SimClock  # noqa: E402

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_tier.json"

#: CI fails when a path's overhead factor grows past committed * this.
REGRESSION_FACTOR = 1.5

ROWS, WIDTH, BLOCK = 100_000, 16, 8
BATCH = 4096


def best_ns(fn, reps: int, repeats: int = 5) -> float:
    """Best-of-``repeats`` mean ns/op over ``reps`` calls of ``fn``."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter_ns() - t0) / reps)
    return best


def make_table(
    src: np.ndarray, directory: str, slice_bytes: int | None, **policy_kw
) -> TieredTable:
    policy = TierPolicy(block_rows=BLOCK, cold_codec="none", **policy_kw)
    return TieredTable(
        src,
        name="bench",
        path=pathlib.Path(directory) / "bench.mmap",
        budget=MemoryBudget(None),
        slice_bytes=slice_bytes,
        policy=policy,
        meter=TierMeter(TierCostModel(), SimClock()),
    )


def bench_paths(directory: str, quick: bool) -> dict:
    rng = np.random.default_rng(7)
    src = rng.standard_normal((ROWS, WIDTH))
    ids = rng.integers(0, ROWS, size=BATCH).astype(np.int64)
    reps = 30 if quick else 200
    dense_ns = best_ns(lambda: src[ids], reps)

    paths: dict[str, dict] = {}

    def record(name: str, tiered_ns: float) -> None:
        paths[name] = {
            "ns_per_op": round(tiered_ns, 1),
            "dense_ns_per_op": round(dense_ns, 1),
            "overhead_factor": round(tiered_ns / dense_ns, 2),
        }

    # Hot path: everything promoted (unlimited slice, one forced pass).
    hot = make_table(src, directory, None, pass_rows=10**9, target_hit_rate=1.0)
    hot.read(np.arange(ROWS, dtype=np.int64))
    hot.rebalance()
    assert hot.hot_fraction() == 1.0
    assert np.array_equal(hot._fetch(ids, count=False), src[ids])
    record("hot_gather", best_ns(lambda: hot._fetch(ids, count=False), reps))
    record("hot_gather_counted", best_ns(lambda: hot.read(ids), reps))
    hot.close()

    # Warm path: a 1-block slice keeps essentially everything on disk.
    warm = make_table(
        src, directory, BLOCK * WIDTH * 8, pass_rows=10**9, target_hit_rate=1.0
    )
    assert np.array_equal(warm._fetch(ids, count=False), src[ids])
    record("warm_gather", best_ns(lambda: warm.read(ids), reps))
    warm.close()

    # Mixed steady state: hot set sized for ~90% of a Zipf batch.
    mixed = make_table(
        src,
        directory,
        ROWS * WIDTH * 8 // 4,
        pass_rows=10**9,
        target_hit_rate=1.0,
        max_evict_per_pass=4096,
    )
    zipf_ids = (rng.zipf(1.1, size=64 * BATCH) - 1) % ROWS
    for lo in range(0, len(zipf_ids), BATCH):
        mixed.read(zipf_ids[lo : lo + BATCH])
    mixed.rebalance()
    batch = zipf_ids[:BATCH]
    record("mixed_gather", best_ns(lambda: mixed.read(batch), reps))

    # Rebalance pass cost (counter decay + repack over ROWS/BLOCK blocks).
    def one_pass():
        mixed.read(batch)
        mixed.rebalance()

    record("rebalance", best_ns(one_pass, max(3, reps // 10)))
    mixed.close()
    return paths


def bench_curve(directory: str, quick: bool) -> list[dict]:
    """Hit-rate vs resident-fraction under a Zipf replay (informational)."""
    rng = np.random.default_rng(11)
    rows = 20_000 if quick else ROWS
    src = rng.standard_normal((rows, WIDTH))
    perm = rng.permutation(rows)  # decouple hotness from id order
    traffic = perm[(rng.zipf(1.05, size=(16 if quick else 64) * BATCH) - 1) % rows]
    curve = []
    for fraction in (0.05, 0.10, 0.25):
        table = make_table(
            src,
            directory,
            max(1, int(fraction * src.nbytes)),
            pass_rows=max(1024, len(traffic) // 8),
            target_hit_rate=1.0,
            max_evict_per_pass=4096,
        )
        for lo in range(0, len(traffic), BATCH):
            table.read(traffic[lo : lo + BATCH])
        table.rebalance()
        h0, a0 = table.stats.hot_rows, table.stats.accesses
        for lo in range(0, len(traffic), BATCH):
            table.read(traffic[lo : lo + BATCH])
        hit = (table.stats.hot_rows - h0) / max(1, table.stats.accesses - a0)
        curve.append({"fraction": fraction, "steady_hit": round(hit, 3)})
        table.close()
    return curve


def render(report: dict) -> str:
    lines = [
        f"{'path':20s} {'ns/op':>12s} {'dense ns/op':>12s} {'overhead':>9s}"
    ]
    for name, entry in report["paths"].items():
        lines.append(
            f"{name:20s} {entry['ns_per_op']:>12,.0f} "
            f"{entry['dense_ns_per_op']:>12,.0f} "
            f"{entry['overhead_factor']:>8.2f}x"
        )
    curve = ", ".join(
        f"({p['fraction']:.2f}, {p['steady_hit']:.3f})" for p in report["curve"]
    )
    lines.append(f"hit-rate vs resident fraction: {curve}")
    return "\n".join(lines)


def check(report: dict) -> int:
    """Gate measured overhead factors against the committed baseline."""
    if not BENCH_PATH.exists():
        print(f"no committed baseline at {BENCH_PATH}; run without --check first")
        return 1
    committed = json.loads(BENCH_PATH.read_text())
    failures = []
    for name, entry in committed["paths"].items():
        measured = report["paths"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from measured report")
            continue
        ceiling = entry["overhead_factor"] * REGRESSION_FACTOR
        if measured["overhead_factor"] > ceiling:
            failures.append(
                f"{name}: overhead {measured['overhead_factor']:.2f}x "
                f"exceeds ceiling {ceiling:.2f}x "
                f"(committed {entry['overhead_factor']:.2f}x * "
                f"{REGRESSION_FACTOR})"
            )
    if failures:
        print("PERF REGRESSION:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"perf gate OK: {len(committed['paths'])} tier paths within "
        f"{REGRESSION_FACTOR}x of committed overhead factors"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed BENCH_tier.json instead of rewriting it",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps, smaller curve replay"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-tier-") as directory:
        report = {
            "workload": {
                "rows": ROWS,
                "width": WIDTH,
                "block_rows": BLOCK,
                "batch": BATCH,
            },
            "paths": bench_paths(directory, args.quick),
            "curve": bench_curve(directory, args.quick),
        }
    print(render(report))
    if args.check:
        return check(report)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
