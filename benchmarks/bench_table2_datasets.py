"""Bench for Table II: dataset statistics (full-scale generation)."""

from repro.experiments.microbench import run_table2
from repro.kg.datasets import FB15K_SPEC, FREEBASE86M_SPEC, WN18_SPEC


def test_table2_dataset_stats(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_table2(scale=1.0), rounds=1, iterations=1)
    record_result(result)
    stats = {row[0]: row[1:] for row in result.rows}
    for spec in (FB15K_SPEC, WN18_SPEC, FREEBASE86M_SPEC):
        vertices, relations, edges = stats[spec.name]
        assert vertices == spec.num_entities
        assert relations == spec.num_relations
        assert edges == spec.num_triples
