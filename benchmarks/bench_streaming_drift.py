"""Bench for the streaming-drift study: cache strategies under hotness drift.

The acceptance shape: ADAPTIVE >= DPS >= CPS on hit ratio under hot-set
rotation, with CPS degrading visibly vs its own stationary run (the
runner itself asserts both — see repro/experiments/streaming_drift.py).
"""

from repro.experiments.streaming_drift import run_streaming_drift


def test_streaming_drift(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_streaming_drift(scale=0.02, epochs=2),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    hit = {
        (profile, system): ratio
        for profile, system, ratio, *_ in result.rows
    }
    # DGL-KE has no cache at all; every HET-KG variant beats it everywhere.
    for profile in ("none", "rotation", "zipf-shift", "burst"):
        assert hit[(profile, "DGL-KE")] == 0.0
        for system in ("HET-KG-C", "HET-KG-D", "HET-KG-A"):
            assert hit[(profile, system)] > 0.0
    # Rotation is where the strategies separate (asserted in the runner
    # too; restated here so the bench fails loudly on its own).
    assert (
        hit[("rotation", "HET-KG-A")]
        >= hit[("rotation", "HET-KG-D")]
        >= hit[("rotation", "HET-KG-C")]
    )
    assert hit[("none", "HET-KG-C")] - hit[("rotation", "HET-KG-C")] > 0.02
