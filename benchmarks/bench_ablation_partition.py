"""Ablation bench: METIS vs random partitioning."""

from repro.experiments.ablations import run_ablation_partition


def test_ablation_partition(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_partition(scale=0.05, epochs=2), rounds=1, iterations=1
    )
    record_result(result)
    for dataset in {row[0] for row in result.rows}:
        rows = {r[1]: r for r in result.rows if r[0] == dataset}
        assert rows["metis"][2] < rows["random"][2]  # cut fraction
        assert rows["metis"][4] <= rows["random"][4] * 1.05  # comm time
