"""Ablation bench: adaptive reactive policies vs the prefetch cache."""

from repro.experiments.cache_study import run_policies_extended


def test_ablation_policies_extended(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_policies_extended(scale=0.05), rounds=1, iterations=1
    )
    record_result(result)
    for dataset, clock, twoq, arc, hetkg, belady in result.rows:
        # Foresight beats every reactive policy...
        assert hetkg > clock
        assert hetkg > twoq
        assert hetkg > arc
        # ...and Belady bounds the reactive ones (prefetching may exceed
        # it by avoiding cold misses, so HET-KG is not constrained).
        assert belady >= arc - 1e-9
        assert belady >= clock - 1e-9
