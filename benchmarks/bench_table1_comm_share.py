"""Bench for Table I: DGL-KE's communication share of training time."""

from repro.experiments.microbench import run_table1


def test_table1_comm_share(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table1(scale=0.05, epochs=2), rounds=1, iterations=1
    )
    record_result(result)
    # Shape: with 1 Gbps networking, communication dominates (paper: >70%
    # on Freebase-86m).
    fractions = {row[0]: row[3] for row in result.rows}
    assert fractions["freebase86m-mini"] > 0.5
    assert all(0.0 < f < 1.0 for f in fractions.values())
