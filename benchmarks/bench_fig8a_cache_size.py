"""Bench for Fig. 8(a): cache size vs hit ratio and MRR."""

from repro.experiments.cache_study import run_fig8a


def test_fig8a_cache_size(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig8a(scale=0.05, epochs=2, capacities=(64, 256, 1024, 4096)),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    hits = [row[1] for row in result.rows]
    # Shape: hit ratio rises with cache size (then saturates).
    assert hits == sorted(hits)
    assert hits[-1] > hits[0]
    # MRR essentially unaffected by cache size.
    mrrs = [row[2] for row in result.rows]
    assert max(mrrs) - min(mrrs) < 0.15
