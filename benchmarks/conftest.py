"""Benchmark harness plumbing.

Every bench regenerates one paper table/figure via its experiment runner,
prints the rows (visible with ``pytest -s`` / in the benchmark name), and
writes them to ``benchmarks/results/<experiment>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated paper
results on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Save an ExperimentResult to benchmarks/results/ and echo it."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.to_text()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _record
