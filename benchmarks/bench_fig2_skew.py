"""Bench for Fig. 2: skew of embedding access frequencies."""

from repro.experiments.microbench import run_fig2


def test_fig2_access_skew(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_fig2(scale=0.1), rounds=1, iterations=1)
    record_result(result)
    for dataset, ent_share, rel_share, ent_gini, rel_gini in result.rows:
        # The paper's motivating observation: relation accesses are far
        # more concentrated than entity accesses.
        assert rel_share > ent_share
        # And the top 1% of relations covers a large share (paper: ~36%
        # on FB15k).
        assert rel_share > 0.1
