"""mp-backend scaling benchmark + core-aware regression gate.

Trains HET-KG-D through ``train_mp(schedule="async")`` at 1/2/4/8 worker
processes on the same seeded dataset and records real wall-clock seconds,
speedup over the single-worker run, and protocol stall shares.  A sync-
schedule run at 2 workers is timed alongside, so the cost of the
bit-identical oracle schedule (full serialization) is visible next to the
hogwild fast path.

Honesty rules, because parallel speedup is a property of the *host*:

* ``host_cpus`` (the scheduler affinity count) is recorded in the
  committed ``BENCH_mp.json``; absolute seconds and speedups measured on
  an N-core runner are meaningless on an M-core one.
* the ``--check`` gate is therefore **core-aware**: at ``w`` workers the
  speedup floor is ``SCALING_FLOOR * min(w, cpus_now)`` — on a 4-core
  host 4 workers must beat ~2.2x, while on a 1-core container (where
  parallel speedup is physically impossible) the gate only asserts the
  mp machinery is not catastrophically slower than one process.

Usage::

    PYTHONPATH=src python benchmarks/bench_mp_scaling.py           # bench + write BENCH_mp.json
    PYTHONPATH=src python benchmarks/bench_mp_scaling.py --check   # CI gate (relative, core-aware)
    PYTHONPATH=src python benchmarks/bench_mp_scaling.py --quick   # smaller run (CI mode)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import TrainingConfig  # noqa: E402
from repro.core.trainer import make_trainer  # noqa: E402
from repro.kg.datasets import generate_dataset  # noqa: E402
from repro.kg.splits import split_triples  # noqa: E402
from repro.mp.pool import default_jobs  # noqa: E402
from repro.mp.shm import shm_segments  # noqa: E402

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_mp.json"

#: Per-effective-core fraction of ideal speedup the gate demands when the
#: host actually has cores to scale over (0.55 * 4 cores = 2.2x at 4
#: workers, satisfying the nominal >=2x target on real hardware).
SCALING_FLOOR = 0.55

#: On a single-core host the only enforceable claim is "mp is not
#: pathologically slower than one process" (turn/stall overhead bounded).
SINGLE_CORE_FLOOR = 0.15

WORKER_COUNTS = (1, 2, 4, 8)
QUICK_WORKER_COUNTS = (1, 2)


def _config(workers: int, quick: bool) -> TrainingConfig:
    return TrainingConfig(
        model="transe",
        dim=16,
        epochs=1 if quick else 2,
        batch_size=64,
        num_negatives=8,
        num_machines=workers,
        cache_capacity=256,
        sync_period=8,
        seed=0,
    )


def _run(workers: int, quick: bool, schedule: str = "async") -> dict:
    graph = generate_dataset("fb15k", scale=0.02 if quick else 0.05, seed=3)
    split = split_triples(graph, seed=3)
    trainer = make_trainer("hetkg-d", _config(workers, quick))
    result = trainer.train_mp(
        split.train, schedule=schedule, start_method="fork"
    )
    spans = result.worker_wall.values()
    wall = result.wall_time_s
    stall = sum(s["stall_s"] for s in spans)
    busy = sum(max(0.0, s["wall_s"] - s["stall_s"]) for s in spans)
    return {
        "workers": workers,
        "schedule": schedule,
        "wall_s": round(wall, 3),
        "steps": sum(s["steps"] for s in spans),
        "stall_fraction": round(stall / (stall + busy), 3)
        if (stall + busy) > 0
        else 0.0,
    }


def bench(quick: bool) -> dict:
    counts = QUICK_WORKER_COUNTS if quick else WORKER_COUNTS
    before = shm_segments()
    scaling = []
    for workers in counts:
        entry = _run(workers, quick)
        base = scaling[0]["wall_s"] if scaling else entry["wall_s"]
        entry["speedup_vs_1"] = round(base / entry["wall_s"], 2)
        scaling.append(entry)
        print(
            f"async w={workers}: {entry['wall_s']:.2f}s "
            f"({entry['speedup_vs_1']:.2f}x, "
            f"stall {entry['stall_fraction']:.0%})"
        )
    sync = _run(2, quick, schedule="sync")
    async2 = next(e for e in scaling if e["workers"] == 2)
    sync["slowdown_vs_async"] = round(sync["wall_s"] / async2["wall_s"], 2)
    print(
        f"sync w=2: {sync['wall_s']:.2f}s "
        f"({sync['slowdown_vs_async']:.2f}x the async wall — the price of "
        f"bit-identity)"
    )
    leaked = [s for s in shm_segments() if s not in before]
    if leaked:
        raise RuntimeError(f"benchmark leaked shm segments: {leaked}")
    return {
        "schema": 1,
        "host_cpus": default_jobs(),
        "quick": quick,
        "scaling": scaling,
        "sync_oracle": sync,
    }


def check(report: dict) -> int:
    """Core-aware gate: measured speedups vs what this host can deliver."""
    if not BENCH_PATH.exists():
        print(f"no committed baseline at {BENCH_PATH}; run without --check first")
        return 2
    committed = json.loads(BENCH_PATH.read_text())
    cpus = report["host_cpus"]
    failures = []
    for entry in report["scaling"]:
        workers = entry["workers"]
        effective = min(workers, cpus)
        floor = (
            SCALING_FLOOR * effective if effective > 1 else SINGLE_CORE_FLOOR
        )
        if entry["speedup_vs_1"] < floor:
            failures.append(
                f"w={workers}: speedup {entry['speedup_vs_1']:.2f}x < floor "
                f"{floor:.2f}x ({cpus} cpus -> {effective} effective)"
            )
    if failures:
        print("MP SCALING REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    committed_cpus = committed.get("host_cpus")
    print(
        f"mp scaling OK on {cpus} cpus "
        f"(committed baseline measured on {committed_cpus}): "
        + ", ".join(
            f"w={e['workers']} {e['speedup_vs_1']:.2f}x"
            for e in report["scaling"]
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate against the host's core count instead of rewriting "
        "BENCH_mp.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller dataset, 1 epoch, workers 1-2 only (CI mode)",
    )
    args = parser.parse_args(argv)

    report = bench(quick=args.quick)
    if args.check:
        return check(report)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
