"""Bench for Table IV: link prediction on WN18 (TransE + DistMult)."""

from repro.experiments.accuracy import run_table4


def test_table4_wn18(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table4(scale=0.05, epochs=4), rounds=1, iterations=1
    )
    record_result(result)
    for model in ("transe", "distmult"):
        rows = {r[0]: r for r in result.rows if r[1] == model}
        assert rows["HET-KG-C"][5] <= rows["DGL-KE"][5] * 1.05
        assert rows["PBG"][5] > rows["HET-KG-C"][5]
