"""Bench for Table III: link prediction on FB15k (TransE + DistMult)."""

from repro.experiments.accuracy import run_table3


def test_table3_fb15k(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table3(scale=0.05, epochs=4), rounds=1, iterations=1
    )
    record_result(result)
    by_system = {}
    for system, model, mrr, h1, h10, time_s in result.rows:
        by_system.setdefault(model, {})[system] = (mrr, time_s)
    for model, rows in by_system.items():
        # Shape: HET-KG variants are not slower than DGL-KE; PBG slowest.
        assert rows["HET-KG-C"][1] <= rows["DGL-KE"][1] * 1.05
        assert rows["PBG"][1] > rows["HET-KG-D"][1]
        # Accuracy comparable across systems (within a wide band).
        mrrs = [v[0] for v in rows.values()]
        assert max(mrrs) < 3 * min(mrrs) + 0.05
