"""Bench for Table VI: hit ratio of HET-KG's cache vs simple policies."""

from repro.experiments.cache_study import run_table6


def test_table6_policies(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_table6(scale=0.05), rounds=1, iterations=1)
    record_result(result)
    for dataset, fifo, lru, lfu, importance, hetkg in result.rows:
        # The paper's ordering on every dataset.
        assert hetkg > importance - 0.02
        assert importance > lru
        assert lru >= fifo
        assert hetkg > fifo
