"""Ablation bench: the full model registry through the cached stack."""

import numpy as np

from repro.experiments.ablations import run_model_zoo
from repro.models.base import MODEL_REGISTRY


def test_ablation_model_zoo(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_model_zoo(scale=0.03, epochs=3), rounds=1, iterations=1
    )
    record_result(result)
    assert len(result.rows) == len(MODEL_REGISTRY)
    for model, mrr, h10, hit, time_s in result.rows:
        assert np.isfinite(mrr) and 0.0 <= mrr <= 1.0
        assert hit > 0.0  # the cache engages for every geometry
        assert time_s > 0.0
