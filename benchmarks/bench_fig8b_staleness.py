"""Bench for Fig. 8(b): staleness bound P vs time and MRR."""

from repro.experiments.cache_study import run_fig8b


def test_fig8b_staleness(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig8b(scale=0.05, epochs=3, staleness=(1, 2, 8, 32, 128), seeds=1),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    times = [row[2] for row in result.rows]
    # Shape: training time falls monotonically as synchronization relaxes.
    assert times == sorted(times, reverse=True)
    # MRR stays finite and in a sane band across the sweep.
    mrrs = [row[1] for row in result.rows]
    assert all(0.0 <= m <= 1.0 for m in mrrs)
