"""Ablation bench: chunked vs independent negative sampling."""

from repro.experiments.ablations import run_ablation_negatives


def test_ablation_negatives(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_negatives(scale=0.05), rounds=1, iterations=1
    )
    record_result(result)
    uniques = {row[0]: row[1] for row in result.rows}
    assert uniques["chunked"] < uniques["independent"]
