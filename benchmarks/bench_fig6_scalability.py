"""Bench for Fig. 6: speedup vs number of workers."""

from repro.experiments.efficiency import run_fig6


def test_fig6_scalability(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig6(scale=0.05, epochs=1, worker_counts=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    speedups = {row[0]: row[1:] for row in result.rows}
    # Shape: every system speeds up with more workers...
    for system, s in speedups.items():
        assert s[-1] > s[0]
    # ...and HET-KG's average speedup beats PBG's (paper: PBG flattest,
    # HET-KG ~30% above DGL-KE).
    avg = {k: sum(v) / len(v) for k, v in speedups.items()}
    assert avg["HET-KG-D"] > avg["PBG"]
    assert avg["HET-KG-D"] >= avg["DGL-KE"] * 0.95
