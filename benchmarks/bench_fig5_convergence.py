"""Bench for Fig. 5: MRR-vs-time convergence curves."""

from repro.experiments.efficiency import run_fig5


def test_fig5_convergence(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig5(scale=0.05, epochs=6), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r[0]: r for r in result.rows}
    # Shape: HET-KG reaches its near-final accuracy earlier than PBG.
    assert rows["HET-KG-D"][3] < rows["PBG"][3]
    # All systems converge to similar final MRR.
    finals = [r[2] for r in result.rows]
    assert max(finals) < 3 * min(finals) + 0.05
