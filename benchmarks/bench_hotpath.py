"""Hot-path kernel microbenchmarks + perf-regression gate.

Measures the vectorized kernels against *reference implementations* that
replicate the pre-vectorization code (dict slot maps, Python sort loops,
``np.add.at`` scatters, O(capacity) LFU eviction scans).  Because the
reference and the kernel run back-to-back in the same process, the
**speedup ratio is machine-independent** — which is what the CI gate
checks, rather than absolute nanoseconds that vary across runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # bench + write BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check    # CI gate vs committed BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # fewer reps, skip end-to-end

The gate fails when any kernel's measured speedup drops below the
committed speedup divided by ``REGRESSION_FACTOR`` (1.5x), i.e. a >1.5x
relative regression of the kernel against its own reference.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.cache.filtering import filter_hot_ids  # noqa: E402
from repro.cache.policies import EvictionPolicy, LFUCache  # noqa: E402
from repro.cache.prefetch import _fold_counts  # noqa: E402
from repro.cache.table import CacheTable  # noqa: E402
from repro.utils.kernels import scatter_add_rows  # noqa: E402

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_core.json"

#: CI fails when a kernel's speedup falls below committed / this factor.
REGRESSION_FACTOR = 1.5

#: Pre-vectorization end-to-end wall-clock (measured on the commit before
#: this pass, same workloads as ``_end_to_end`` below).  Informational:
#: absolute seconds are machine-dependent, so the CI gate uses the
#: in-process kernel speedups instead.
END_TO_END_BASELINE = {"table6_seconds": 1.550, "train_seconds": 2.787}


# ----------------------------------------------------------------- timing


def best_ns(fn, reps: int, repeats: int = 5) -> float:
    """Best-of-``repeats`` mean ns/op over ``reps`` calls of ``fn``."""
    fn()  # warm-up (allocations, caches, lazy imports)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter_ns() - t0) / reps)
    return best


# ------------------------------------------- reference (pre-change) kernels


class RefCacheTable:
    """The former dict-slot-map cache table (per-id Python loops)."""

    def __init__(self, capacity: int, width: int) -> None:
        self.capacity = capacity
        self.width = width
        self._slot_of: dict[int, int] = {}
        self._rows = np.zeros((capacity, width))

    def install(self, ids: np.ndarray, rows: np.ndarray) -> None:
        self._slot_of = {int(e): i for i, e in enumerate(ids)}
        self._rows[: len(ids)] = rows

    def partition_hits(self, ids: np.ndarray):
        mask = np.fromiter(
            (int(e) in self._slot_of for e in ids), dtype=bool, count=len(ids)
        )
        return mask, ids[mask], ids[~mask]

    def get(self, ids: np.ndarray) -> np.ndarray:
        slots = np.fromiter(
            (self._slot_of[int(e)] for e in ids), dtype=np.int64, count=len(ids)
        )
        return self._rows[slots]


def ref_top_ids(counts: dict[int, int], k: int) -> np.ndarray:
    """The former Python-sorted frequency top-k."""
    if k <= 0 or not counts:
        return np.empty(0, dtype=np.int64)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return np.asarray([key for key, _ in ranked[:k]], dtype=np.int64)


def ref_fold_counts(chunks: list[np.ndarray]) -> dict[int, int]:
    """The former per-chunk dict-merge access counter."""
    out: dict[int, int] = {}
    for chunk in chunks:
        ids, counts = np.unique(chunk, return_counts=True)
        for e, c in zip(ids.tolist(), counts.tolist()):
            out[e] = out.get(e, 0) + c
    return out


def ref_scatter_add(indices: np.ndarray, rows: np.ndarray, n_out: int):
    """The former ``np.add.at`` gradient scatter."""
    out = np.zeros((n_out, rows.shape[1]))
    np.add.at(out, indices, rows)
    return out


class RefLFUCache(EvictionPolicy):
    """The former LFU with an O(capacity) ``min`` scan per eviction."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        from collections import Counter, OrderedDict

        self._counts: "dict[int, int]" = Counter()
        self._members: "OrderedDict[int, None]" = OrderedDict()

    def _access(self, key: int) -> bool:
        self._counts[key] += 1
        if key in self._members:
            self._members.move_to_end(key)
            return True
        if len(self._members) >= self.capacity:
            victim = min(self._members, key=lambda k: (self._counts[k], 0))
            del self._members[victim]
        self._members[key] = None
        return False

    def __len__(self) -> int:
        return len(self._members)


# ----------------------------------------------------------- micro benches


def bench_micro(quick: bool) -> dict[str, dict[str, float]]:
    rng = np.random.default_rng(0)
    reps = 20 if quick else 100
    ops: dict[str, dict[str, float]] = {}

    def record(name, vec_fn, ref_fn, vec_reps=reps, ref_reps=None):
        vec_ns = best_ns(vec_fn, vec_reps)
        ref_ns = best_ns(ref_fn, ref_reps or max(3, vec_reps // 10))
        ops[name] = {
            "ns_per_op": round(vec_ns, 1),
            "ref_ns_per_op": round(ref_ns, 1),
            "speedup_vs_ref": round(ref_ns / vec_ns, 2),
        }

    # cache fetch: membership + gather for a mixed hit/miss batch.
    capacity, width, batch = 1024, 32, 512
    cached_ids = rng.choice(100_000, size=capacity, replace=False).astype(np.int64)
    rows = rng.standard_normal((capacity, width))
    query = np.concatenate(
        [rng.choice(cached_ids, size=batch // 2), rng.integers(100_000, 200_000, size=batch // 2)]
    ).astype(np.int64)
    vec_table = CacheTable(capacity, width)
    vec_table.install(cached_ids, rows)
    ref_table = RefCacheTable(capacity, width)
    ref_table.install(cached_ids, rows)

    def vec_fetch():
        mask, hit_ids, _ = vec_table.partition_hits(query)
        vec_table.get(hit_ids)

    def ref_fetch():
        mask, hit_ids, _ = ref_table.partition_hits(query)
        ref_table.get(hit_ids)

    record("cache_fetch", vec_fetch, ref_fetch)

    # cache install: rebuild the table membership from scratch.
    record(
        "cache_install",
        lambda: CacheTable(capacity, width).install(cached_ids, rows),
        lambda: RefCacheTable(capacity, width).install(cached_ids, rows),
    )

    # hot-id filtering: frequency top-k with the heterogeneity split.
    n_ids = 20_000
    ent_counts = dict(
        zip(range(n_ids), rng.zipf(1.3, size=n_ids).astype(int).tolist())
    )
    rel_counts = dict(
        zip(range(400), rng.zipf(1.2, size=400).astype(int).tolist())
    )

    def ref_filter():
        k = 1024
        e_slots = int(round(k * 0.25))
        ref_top_ids(ent_counts, e_slots)
        ref_top_ids(rel_counts, k - e_slots)

    record(
        "topk_filter",
        lambda: filter_hot_ids(ent_counts, rel_counts, 1024, 0.25),
        ref_filter,
    )

    # prefetch access counting over a window of batch id chunks.
    chunks = [rng.integers(0, 5_000, size=640).astype(np.int64) for _ in range(50)]
    record(
        "prefetch_count",
        lambda: _fold_counts(chunks),
        lambda: ref_fold_counts(chunks),
    )

    # gradient scatter-add (the backward pass + optimizer coalesce core).
    n_rows, dim, n_contrib = 600, 16, 4_000
    idx = rng.integers(0, n_rows, size=n_contrib)
    grads = rng.standard_normal((n_contrib, dim))
    vec = scatter_add_rows(idx, grads, n_rows)
    ref = ref_scatter_add(idx, grads, n_rows)
    assert np.array_equal(vec, ref), "scatter_add_rows diverged from np.add.at"
    record(
        "scatter_add",
        lambda: scatter_add_rows(idx, grads, n_rows),
        lambda: ref_scatter_add(idx, grads, n_rows),
    )

    # LFU policy replay (Table VI trace simulation).
    trace = (rng.zipf(1.2, size=4_000 if quick else 20_000) % 3_000).tolist()

    def replay(policy_cls):
        policy = policy_cls(256)
        for key in trace:
            policy.access(key)
        return policy.hit_ratio

    hr_vec, hr_ref = replay(LFUCache), replay(RefLFUCache)
    assert hr_vec == hr_ref, "LFUCache diverged from min-scan reference"
    record(
        "lfu_replay",
        lambda: replay(LFUCache),
        lambda: replay(RefLFUCache),
        vec_reps=3,
        ref_reps=2,
    )
    return ops


# ------------------------------------------------------------- end to end


def bench_end_to_end() -> dict[str, float]:
    """Wall-clock of two representative workloads (absolute seconds —
    informational, machine-dependent; compare on one machine only)."""
    from repro.core.config import TrainingConfig
    from repro.core.trainer import make_trainer
    from repro.experiments.cache_study import run_table6
    from repro.kg.datasets import generate_dataset
    from repro.kg.splits import split_triples

    # Single run: run_table6 memoises its dataset bundle per process, so a
    # best-of-N here would unfairly exclude dataset generation from every
    # rep after the first (the committed baseline timed a cold run).
    t0 = time.perf_counter()
    run_table6(scale=0.03)
    table6_s = time.perf_counter() - t0

    graph = generate_dataset("fb15k", scale=0.05, seed=11)
    split = split_triples(graph, seed=11)
    config = TrainingConfig(
        model="transe", dim=16, epochs=3, batch_size=64, num_negatives=8,
        num_machines=4, cache_capacity=256, sync_period=4, dps_window=16,
        seed=0,
    )
    train_s = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        trainer = make_trainer("hetkg-d", config)
        trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=200,
            eval_candidates=100,
        )
        train_s = min(train_s, time.perf_counter() - t0)
    return {
        "table6_seconds": round(table6_s, 3),
        "table6_baseline_seconds": END_TO_END_BASELINE["table6_seconds"],
        "table6_speedup": round(END_TO_END_BASELINE["table6_seconds"] / table6_s, 2),
        "train_seconds": round(train_s, 3),
        "train_baseline_seconds": END_TO_END_BASELINE["train_seconds"],
        "train_speedup": round(END_TO_END_BASELINE["train_seconds"] / train_s, 2),
    }


# ------------------------------------------------------------------- main


def render(report: dict) -> str:
    lines = [f"{'op':16s} {'ns/op':>12s} {'ref ns/op':>12s} {'speedup':>8s}"]
    for name, entry in report["ops"].items():
        lines.append(
            f"{name:16s} {entry['ns_per_op']:>12,.0f} "
            f"{entry['ref_ns_per_op']:>12,.0f} {entry['speedup_vs_ref']:>7.2f}x"
        )
    e2e = report.get("end_to_end")
    if e2e:
        lines.append(
            f"{'table6 e2e':16s} {e2e['table6_seconds']:.2f}s vs "
            f"{e2e['table6_baseline_seconds']:.2f}s baseline "
            f"({e2e['table6_speedup']:.2f}x)"
        )
        lines.append(
            f"{'train e2e':16s} {e2e['train_seconds']:.2f}s vs "
            f"{e2e['train_baseline_seconds']:.2f}s baseline "
            f"({e2e['train_speedup']:.2f}x)"
        )
    return "\n".join(lines)


def check(report: dict) -> int:
    """Gate the measured kernel speedups against the committed baseline."""
    if not BENCH_PATH.exists():
        print(f"no committed baseline at {BENCH_PATH}; run without --check first")
        return 2
    committed = json.loads(BENCH_PATH.read_text())
    failures = []
    for name, entry in committed["ops"].items():
        measured = report["ops"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from this run")
            continue
        floor = entry["speedup_vs_ref"] / REGRESSION_FACTOR
        if measured["speedup_vs_ref"] < floor:
            failures.append(
                f"{name}: speedup {measured['speedup_vs_ref']:.2f}x "
                f"< floor {floor:.2f}x "
                f"(committed {entry['speedup_vs_ref']:.2f}x / {REGRESSION_FACTOR})"
            )
    if failures:
        print("PERF REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"perf check OK: all {len(committed['ops'])} kernels within "
          f"{REGRESSION_FACTOR}x of committed speedups")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed BENCH_core.json instead of rewriting it",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions and no end-to-end timing (CI mode)",
    )
    args = parser.parse_args(argv)

    report: dict = {"schema": 1, "ops": bench_micro(quick=args.quick)}
    if not args.quick:
        report["end_to_end"] = bench_end_to_end()
    print(render(report))

    if args.check:
        return check(report)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
