"""Bench for the serving subsystem: latency SLOs under the hot-set cache.

Not a paper table — the serving tier is this repository's first
post-reproduction workload.  The bench regenerates the ``serving-cache``
sweep and asserts its headline shape: a log-profiled static hot set
raises the hit ratio, cuts remote traffic, and lowers tail latency
versus serving without a cache.
"""

from repro.experiments.serving_study import run_serving_cache

#: Column indices of ServingReport.as_row().
QPS, P50, P95, P99, HIT, REMOTE_MB = 2, 3, 4, 5, 6, 7


def test_serving_cache_latency(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_serving_cache(
            scale=0.05, epochs=1, num_queries=3000, fractions=(0.05, 0.2)
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    by_label = {row[0]: row for row in result.rows}
    baseline = by_label["no-cache"]
    small, large = by_label["static@5%"], by_label["static@20%"]

    # Hit ratio grows with the hot set and is zero without a cache.
    assert baseline[HIT] == 0.0
    assert 0.0 < small[HIT] < large[HIT] <= 1.0

    # The cache pays for itself: less remote traffic, lower tail latency.
    assert large[REMOTE_MB] < baseline[REMOTE_MB]
    assert large[P99] < baseline[P99]
    assert large[P50] <= baseline[P50]
