"""Ablation bench: DPS prefetch window D."""

from repro.experiments.ablations import run_ablation_dps_window


def test_ablation_dps_window(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_dps_window(scale=0.05, epochs=2), rounds=1, iterations=1
    )
    record_result(result)
    assert all(0.0 <= row[1] <= 1.0 for row in result.rows)
