"""Bench for Fig. 9: epoch-MRR curves under staleness 1 vs 128."""

from repro.experiments.cache_study import run_fig9


def test_fig9_staleness_curves(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig9(scale=0.05, epochs=6, seeds=2), rounds=1, iterations=1
    )
    record_result(result)
    finals = {row[0]: row[1] for row in result.rows}
    # Shape: tight consistency converges at least as well as very loose
    # consistency (paper: 0.67 vs 0.59); at bench scale we allow noise.
    assert finals[1] >= finals[128] - 0.02
    assert len(result.series) == 2
