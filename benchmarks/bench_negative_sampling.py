"""Bench: uniform vs self-adversarial vs cached negative sampling."""

from repro.experiments.negative_sampling import run_negative_sampling


def test_negative_sampling(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_negative_sampling(scale=0.05, epochs=6),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    scored = {(row[0], row[1]): row[4] for row in result.rows}
    for model in ("transe", "distmult", "rotate"):
        assert scored[(model, "nscaching")] < scored[(model, "uniform")]
        assert scored[(model, "auto")] < scored[(model, "uniform")]
