"""Ablation bench: lossy wire compression of remote PS traffic."""

from repro.experiments.ablations import run_ablation_compression


def test_ablation_compression(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_compression(scale=0.05, epochs=2),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    by_codec = {row[0]: row for row in result.rows}
    # Remote bytes halve under fp16 and quarter under int8.
    assert by_codec["fp16"][1] < 0.6 * by_codec["none"][1]
    assert by_codec["int8"][1] < 0.35 * by_codec["none"][1]
    # Training still works under compression.
    assert all(0.0 <= row[4] <= 1.0 for row in result.rows)
