"""Bench for Fig. 8(c): entity share of the cache vs hit ratio."""

from repro.experiments.cache_study import run_fig8c


def test_fig8c_entity_ratio(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig8c(scale=0.1, epochs=2), rounds=1, iterations=1
    )
    record_result(result)
    hits = {row[0]: row[1] for row in result.rows}
    # Shape: interior ratio beats both extremes (paper: peak near 25%).
    best_interior = max(v for k, v in hits.items() if 0.0 < k < 1.0)
    assert best_interior >= hits[0.0]
    assert best_interior > hits[1.0]
