"""Bench for Table V: link prediction on Freebase-86m (TransE)."""

from repro.experiments.accuracy import run_table5


def test_table5_freebase(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table5(scale=0.05, epochs=3), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r[0]: r for r in result.rows}
    # Shape: HET-KG trains faster than the baselines on the large skewed
    # graph while keeping comparable accuracy.
    assert rows["HET-KG-D"][5] <= rows["DGL-KE"][5] * 1.05
    assert rows["PBG"][5] > rows["DGL-KE"][5]
