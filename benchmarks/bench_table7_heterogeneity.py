"""Bench for Table VII: heterogeneity-aware filtering on/off."""

from repro.experiments.cache_study import run_table7


def test_table7_heterogeneity(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_table7(scale=0.05, epochs=4), rounds=1, iterations=1
    )
    record_result(result)
    for dataset in {row[0] for row in result.rows}:
        rows = {r[1]: r for r in result.rows if r[0] == dataset}
        het, hetn = rows["HET-KG"], rows["HET-KG-N"]
        # Both variants produce sane accuracy and positive hit ratios.
        assert 0.0 <= het[2] <= 1.0 and 0.0 <= hetn[2] <= 1.0
        assert het[5] > 0.0 and hetn[5] > 0.0
