"""Bench for Fig. 7: computation vs communication breakdown."""

from repro.experiments.efficiency import run_fig7


def test_fig7_breakdown(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig7(scale=0.05, epochs=2), rounds=1, iterations=1
    )
    record_result(result)
    for dataset in {row[0] for row in result.rows}:
        rows = {r[1]: r for r in result.rows if r[0] == dataset}
        # Compute time nearly identical for DGL-KE vs HET-KG (the cache
        # does not slow the math down).
        ratio = rows["HET-KG-C"][2] / rows["DGL-KE"][2]
        assert 0.9 < ratio < 1.15
        # HET-KG communicates less than DGL-KE.
        assert rows["HET-KG-C"][3] < rows["DGL-KE"][3]
        # PBG's communication is the largest.
        assert rows["PBG"][3] > rows["HET-KG-D"][3]
