"""SimplE [Kazemi & Poole, NeurIPS 2018].

A fully-expressive refinement of canonical polyadic decomposition: each
entity has a *head-role* and a *tail-role* embedding, and each relation a
forward and an inverse vector.  The score averages the two directions:

    score = 1/2 ( <h_head, r, t_tail> + <t_head, r_inv, h_tail> )

Entity rows store ``[head_role, tail_role]`` and relation rows
``[r, r_inv]`` (both width ``2d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model


@register_model("simple")
class SimplE(KGEModel):
    """Dual-role trilinear model."""

    @property
    def entity_dim(self) -> int:
        return 2 * self.dim

    @property
    def relation_dim(self) -> int:
        return 2 * self.dim

    def _split(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return x[:, : self.dim], x[:, self.dim :]

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        hh, ht = self._split(h)
        rf, ri = self._split(r)
        th, tt = self._split(t)
        forward = (hh * rf * tt).sum(axis=1)
        inverse = (th * ri * ht).sum(axis=1)
        return 0.5 * (forward + inverse)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        hh, ht = self._split(h)
        rf, ri = self._split(r)
        th, tt = self._split(t)
        up = 0.5 * upstream[:, None]

        ghh = rf * tt * up
        ght = th * ri * up
        gth = ri * ht * up
        gtt = hh * rf * up
        grf = hh * tt * up
        gri = th * ht * up

        gh = np.concatenate([ghh, ght], axis=1)
        gr = np.concatenate([grf, gri], axis=1)
        gt = np.concatenate([gth, gtt], axis=1)
        return gh, gr, gt
