"""DistMult [Yang et al., ICLR 2015].

RESCAL restricted to diagonal relation matrices: the score is the trilinear
product ``sum(h * r * t)``.  Cheap and effective, but inherently symmetric
in head/tail.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model


@register_model("distmult")
class DistMult(KGEModel):
    """Diagonal bilinear scoring ``<h, diag(r), t>``."""

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        return (h * r * t).sum(axis=1)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        up = upstream[:, None]
        return (r * t) * up, (h * t) * up, (h * r) * up
