"""Base class and registry for KGE score functions.

A :class:`KGEModel` is stateless: it maps batches of embedding *rows* to
scalar plausibility scores and, for training, to analytic gradients with
respect to those rows.  Embedding storage lives in the parameter server
(:mod:`repro.ps`) — the model only defines the geometry.

Score convention: **higher score = more plausible triple**, for every model
(distances are negated).  This keeps losses and evaluation model-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import make_rng


class KGEModel(ABC):
    """Scoring function ``f_r(h, t)`` with analytic gradients.

    Subclasses define ``entity_dim`` and ``relation_dim`` — the row widths
    of entity and relation embeddings (which differ for models like TransR,
    where a relation carries a projection matrix).

    Parameters
    ----------
    dim:
        The model's base embedding dimension ``d``.
    """

    #: Registry name, set by :func:`register_model`.
    name: str = "base"

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim

    # -------------------------------------------------------------- geometry

    @property
    def entity_dim(self) -> int:
        """Width of one entity embedding row."""
        return self.dim

    @property
    def relation_dim(self) -> int:
        """Width of one relation embedding row."""
        return self.dim

    # --------------------------------------------------------------- scoring

    @abstractmethod
    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Plausibility score for each row of the batch.

        ``h``/``t`` have shape ``(batch, entity_dim)`` and ``r`` has shape
        ``(batch, relation_dim)``; returns shape ``(batch,)``.
        """

    @abstractmethod
    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gradients of ``sum(upstream * score)`` w.r.t. ``h``, ``r``, ``t``.

        ``upstream`` has shape ``(batch,)`` — the loss gradient flowing into
        each score.  Returns gradients with the same shapes as the inputs.
        """

    # ---------------------------------------------------------------- params

    def init_entities(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Initial entity embedding matrix ``(count, entity_dim)``.

        The default is the uniform Xavier-style init of the TransE paper:
        ``U(-6/sqrt(d), 6/sqrt(d))``.
        """
        rng = make_rng(rng)
        bound = 6.0 / np.sqrt(self.dim)
        return rng.uniform(-bound, bound, size=(count, self.entity_dim))

    def init_relations(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Initial relation embedding matrix ``(count, relation_dim)``."""
        rng = make_rng(rng)
        bound = 6.0 / np.sqrt(self.dim)
        return rng.uniform(-bound, bound, size=(count, self.relation_dim))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dim={self.dim})"


#: name -> model class, filled by :func:`register_model`.
MODEL_REGISTRY: dict[str, type[KGEModel]] = {}


def register_model(name: str):
    """Class decorator adding a model to :data:`MODEL_REGISTRY`."""

    def decorator(cls: type[KGEModel]) -> type[KGEModel]:
        if name in MODEL_REGISTRY:
            raise ValueError(f"model {name!r} is already registered")
        cls.name = name
        MODEL_REGISTRY[name] = cls
        return cls

    return decorator


def get_model(name: str, dim: int, **kwargs) -> KGEModel:
    """Instantiate a registered model by name (e.g. ``"transe"``)."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return cls(dim, **kwargs)


def check_batch_shapes(
    model: KGEModel, h: np.ndarray, r: np.ndarray, t: np.ndarray
) -> None:
    """Validate that a batch matches the model's row widths."""
    if h.ndim != 2 or r.ndim != 2 or t.ndim != 2:
        raise ValueError("h, r, t must be 2-D (batch, dim) arrays")
    if not (len(h) == len(r) == len(t)):
        raise ValueError(
            f"batch sizes differ: h={len(h)}, r={len(r)}, t={len(t)}"
        )
    if h.shape[1] != model.entity_dim or t.shape[1] != model.entity_dim:
        raise ValueError(
            f"entity rows must have width {model.entity_dim}, "
            f"got h={h.shape[1]}, t={t.shape[1]}"
        )
    if r.shape[1] != model.relation_dim:
        raise ValueError(
            f"relation rows must have width {model.relation_dim}, got {r.shape[1]}"
        )
