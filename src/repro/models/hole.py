"""HolE [Nickel et al., AAAI 2016].

Holographic embeddings compress RESCAL's pairwise interactions with
circular correlation:

    score = r . (h * t)        where (h * t)_k = sum_i h_i t_{(k+i) mod d}

Computed via FFT: ``corr(h, t) = ifft( conj(fft(h)) * fft(t) ).real``.

Gradient identities (derivable by reindexing the triple sum):

    d score / d r = corr(h, t)
    d score / d h = corr(r, t)
    d score / d t = conv(r, h)   (circular convolution)
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model


def circular_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise circular correlation ``a * b`` via FFT."""
    return np.fft.ifft(np.conj(np.fft.fft(a, axis=1)) * np.fft.fft(b, axis=1), axis=1).real


def circular_convolution(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise circular convolution via FFT."""
    return np.fft.ifft(np.fft.fft(a, axis=1) * np.fft.fft(b, axis=1), axis=1).real


@register_model("hole")
class HolE(KGEModel):
    """Holographic embedding model."""

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        return (r * circular_correlation(h, t)).sum(axis=1)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        up = upstream[:, None]
        gr = circular_correlation(h, t) * up
        gh = circular_correlation(r, t) * up
        gt = circular_convolution(r, h) * up
        return gh, gr, gt
