"""Knowledge graph embedding models.

Translational-distance family: TransE, TransH, TransR, TransD.
Semantic-matching family: RESCAL, DistMult, ComplEx, HolE, SimplE.
Rotation family: RotatE, QuatE (quaternion).

All models implement :class:`repro.models.base.KGEModel`: a score function
over ``(head, relation, tail)`` embedding rows plus analytic gradients, so
trainers never need autodiff.
"""

from repro.models.base import KGEModel, get_model, register_model, MODEL_REGISTRY
from repro.models.transe import TransE
from repro.models.transh import TransH
from repro.models.transr import TransR
from repro.models.transd import TransD
from repro.models.distmult import DistMult
from repro.models.rescal import RESCAL
from repro.models.complex_ import ComplEx
from repro.models.hole import HolE
from repro.models.rotate import RotatE
from repro.models.simple_ import SimplE
from repro.models.quate import QuatE
from repro.models.losses import (
    LogisticLoss,
    MarginRankingLoss,
    SelfAdversarialLoss,
    get_loss,
)

__all__ = [
    "KGEModel",
    "get_model",
    "register_model",
    "MODEL_REGISTRY",
    "TransE",
    "TransH",
    "TransR",
    "TransD",
    "DistMult",
    "RESCAL",
    "ComplEx",
    "HolE",
    "RotatE",
    "SimplE",
    "QuatE",
    "LogisticLoss",
    "MarginRankingLoss",
    "SelfAdversarialLoss",
    "get_loss",
]
