"""QuatE [Zhang et al., NeurIPS 2019].

Quaternion embeddings: each dimension of an entity/relation is a
quaternion ``a + b i + c j + d k``.  The relation quaternion is normalised
to unit length (a pure rotation, like RotatE but in 4-D algebra) and
applied to the head by the Hamilton product; the score is the inner
product with the tail:

    score = < h (x) r/|r| , t >

Rows store the four components concatenated: ``[a | b | c | d]`` (width
``4d``).

Gradient identities used (with ``q* = (a, -b, -c, -d)`` the conjugate):

    d score / d t = h (x) r_hat
    d score / d h = t (x) r_hat*
    d score / d r_hat = h* (x) t
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model

_EPS = 1e-12


def _split(x: np.ndarray, dim: int) -> tuple[np.ndarray, ...]:
    return x[:, :dim], x[:, dim : 2 * dim], x[:, 2 * dim : 3 * dim], x[:, 3 * dim :]


def hamilton(p: tuple[np.ndarray, ...], q: tuple[np.ndarray, ...]):
    """Component-wise Hamilton product of two batched quaternion arrays."""
    pa, pb, pc, pd = p
    qa, qb, qc, qd = q
    return (
        pa * qa - pb * qb - pc * qc - pd * qd,
        pa * qb + pb * qa + pc * qd - pd * qc,
        pa * qc - pb * qd + pc * qa + pd * qb,
        pa * qd + pb * qc - pc * qb + pd * qa,
    )


def conjugate(q: tuple[np.ndarray, ...]):
    qa, qb, qc, qd = q
    return qa, -qb, -qc, -qd


def _dot(p, q) -> np.ndarray:
    return sum((pi * qi).sum(axis=1) for pi, qi in zip(p, q))


@register_model("quate")
class QuatE(KGEModel):
    """Quaternion rotation model."""

    @property
    def entity_dim(self) -> int:
        return 4 * self.dim

    @property
    def relation_dim(self) -> int:
        return 4 * self.dim

    def _normalize(self, r: np.ndarray):
        """Unit-normalise each quaternion component; returns the parts and
        the per-component norm for backprop."""
        ra, rb, rc, rd = _split(r, self.dim)
        norm = np.sqrt(ra**2 + rb**2 + rc**2 + rd**2 + _EPS)
        return (ra / norm, rb / norm, rc / norm, rd / norm), norm

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        hq = _split(h, self.dim)
        tq = _split(t, self.dim)
        r_hat, _ = self._normalize(r)
        rotated = hamilton(hq, r_hat)
        return _dot(rotated, tq)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        hq = _split(h, self.dim)
        tq = _split(t, self.dim)
        r_hat, norm = self._normalize(r)
        up = upstream[:, None]

        # d score / d t = h (x) r_hat
        gt_parts = hamilton(hq, r_hat)
        gt = np.concatenate([g * up for g in gt_parts], axis=1)

        # d score / d h = t (x) r_hat*
        gh_parts = hamilton(tq, conjugate(r_hat))
        gh = np.concatenate([g * up for g in gh_parts], axis=1)

        # d score / d r_hat = h* (x) t, then back through the unit
        # normalisation: g_raw = (g - (r_hat . g) r_hat) / norm, where the
        # dot product is per quaternion component.
        gr_hat = hamilton(conjugate(hq), tq)
        dot = sum(rh * g for rh, g in zip(r_hat, gr_hat))
        gr_parts = [(g - dot * rh) / norm for g, rh in zip(gr_hat, r_hat)]
        gr = np.concatenate([g * up for g in gr_parts], axis=1)
        return gh, gr, gt
