"""ComplEx [Trouillon et al., ICML 2016].

DistMult with complex-valued embeddings, scoring with

    score = Re( <h, r, conj(t)> )

which breaks DistMult's head/tail symmetry.  Rows store the real and
imaginary halves concatenated: ``[Re(x), Im(x)]`` (width ``2d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model


@register_model("complex")
class ComplEx(KGEModel):
    """Complex-valued trilinear scoring."""

    @property
    def entity_dim(self) -> int:
        return 2 * self.dim

    @property
    def relation_dim(self) -> int:
        return 2 * self.dim

    def _split(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return x[:, : self.dim], x[:, self.dim :]

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        hr, hi = self._split(h)
        rr, ri = self._split(r)
        tr, ti = self._split(t)
        # Re(<h, r, conj(t)>) expands to four real trilinear terms.
        return (
            (hr * rr * tr).sum(axis=1)
            + (hi * rr * ti).sum(axis=1)
            + (hr * ri * ti).sum(axis=1)
            - (hi * ri * tr).sum(axis=1)
        )

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        hr, hi = self._split(h)
        rr, ri = self._split(r)
        tr, ti = self._split(t)
        up = upstream[:, None]

        ghr = (rr * tr + ri * ti) * up
        ghi = (rr * ti - ri * tr) * up
        grr = (hr * tr + hi * ti) * up
        gri = (hr * ti - hi * tr) * up
        gtr = (hr * rr - hi * ri) * up
        gti = (hi * rr + hr * ri) * up

        gh = np.concatenate([ghr, ghi], axis=1)
        gr = np.concatenate([grr, gri], axis=1)
        gt = np.concatenate([gtr, gti], axis=1)
        return gh, gr, gt
