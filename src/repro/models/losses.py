"""Training losses over positive/negative score batches.

Both losses from §III-A of the paper, each with analytic gradients so the
trainer can backpropagate into the score function without autodiff.

Shapes: ``pos`` is ``(batch,)`` — one score per positive triple — and
``neg`` is ``(batch, num_negatives)`` — the scores of that positive's
corruptions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass
class LossResult:
    """Loss value plus gradients flowing back into each score."""

    value: float
    grad_pos: np.ndarray  # (batch,)
    grad_neg: np.ndarray  # (batch, num_negatives)


class Loss(ABC):
    """A pairwise or pointwise objective over positive/negative scores."""

    @abstractmethod
    def compute(self, pos: np.ndarray, neg: np.ndarray) -> LossResult: ...


def _check_shapes(pos: np.ndarray, neg: np.ndarray) -> None:
    if pos.ndim != 1:
        raise ValueError(f"pos must be 1-D, got shape {pos.shape}")
    if neg.ndim != 2 or len(neg) != len(pos):
        raise ValueError(
            f"neg must have shape (len(pos), n_neg); got {neg.shape} for "
            f"{len(pos)} positives"
        )


class MarginRankingLoss(Loss):
    """Hinge on the pairwise margin: ``max(0, gamma - f(pos) + f(neg))``.

    This is the ranking loss of the TransE paper and the default in the
    HET-KG evaluation (margin ``gamma`` from Table II hyperparameters).
    """

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.margin = margin

    def compute(self, pos: np.ndarray, neg: np.ndarray) -> LossResult:
        _check_shapes(pos, neg)
        slack = self.margin - pos[:, None] + neg
        active = slack > 0
        value = float(np.where(active, slack, 0.0).sum())
        grad_neg = active.astype(np.float64)
        grad_pos = -grad_neg.sum(axis=1)
        return LossResult(value, grad_pos, grad_neg)


class LogisticLoss(Loss):
    """Pointwise logistic loss ``log(1 + exp(-y * f))`` with ``y = +/-1``.

    Positives use ``y = +1``, corruptions ``y = -1``, matching Eq. (1) of
    the paper.
    """

    def compute(self, pos: np.ndarray, neg: np.ndarray) -> LossResult:
        _check_shapes(pos, neg)
        value = float(np.logaddexp(0.0, -pos).sum() + np.logaddexp(0.0, neg).sum())

        # d/df log(1 + exp(-y f)) = -y * sigmoid(-y f)
        def sigmoid(x: np.ndarray) -> np.ndarray:
            return 0.5 * (1.0 + np.tanh(0.5 * x))

        grad_pos = -sigmoid(-pos)
        grad_neg = sigmoid(neg)
        return LossResult(value, grad_pos, grad_neg)


def _log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    return -np.logaddexp(0.0, -x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * x))


class SelfAdversarialLoss(Loss):
    """Self-adversarial negative sampling [Sun et al., ICLR 2019].

    An extension beyond the paper's two objectives: negatives are weighted
    by a softmax over their own scores, so training focuses on the hardest
    corruptions instead of the uniform mass of trivially-false ones:

        L = -log sig(margin + f_pos)
            - sum_i p_i log sig(-(margin + f_neg_i)),
        p_i = softmax(temperature * f_neg_i)   (treated as constants)

    The weights are detached from the gradient, as in the reference
    implementation.
    """

    def __init__(self, margin: float = 1.0, temperature: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.margin = margin
        self.temperature = temperature

    def _weights(self, neg: np.ndarray) -> np.ndarray:
        logits = self.temperature * neg
        logits = logits - logits.max(axis=1, keepdims=True)
        w = np.exp(logits)
        return w / w.sum(axis=1, keepdims=True)

    def compute(self, pos: np.ndarray, neg: np.ndarray) -> LossResult:
        _check_shapes(pos, neg)
        weights = self._weights(neg)
        pos_term = -_log_sigmoid(self.margin + pos)
        neg_term = -(weights * _log_sigmoid(-(self.margin + neg))).sum(axis=1)
        value = float((pos_term + neg_term).sum())
        grad_pos = -_sigmoid(-(self.margin + pos))
        grad_neg = weights * _sigmoid(self.margin + neg)
        return LossResult(value, grad_pos, grad_neg)


_LOSSES = {
    "ranking": MarginRankingLoss,
    "logistic": LogisticLoss,
    "self-adversarial": SelfAdversarialLoss,
}


def get_loss(name: str, margin: float = 1.0) -> Loss:
    """Instantiate a loss by name (``"ranking"``, ``"logistic"``, or
    ``"self-adversarial"``)."""
    if name == "ranking":
        return MarginRankingLoss(margin)
    if name == "logistic":
        return LogisticLoss()
    if name == "self-adversarial":
        return SelfAdversarialLoss(margin)
    raise KeyError(f"unknown loss {name!r}; available: {sorted(_LOSSES)}")
