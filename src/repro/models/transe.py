"""TransE [Bordes et al., NeurIPS 2013].

Entities and relations share one vector space; a relation is a translation:
``h + r ≈ t`` for true triples.  Score is the negated L1 or L2 distance
``-||h + r - t||``.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model
from repro.utils.validation import check_in

#: Small constant keeping L2 distance differentiable at zero.
_EPS = 1e-12


@register_model("transe")
class TransE(KGEModel):
    """TransE with selectable L1 (paper default) or L2 norm."""

    def __init__(self, dim: int, norm: str = "l1") -> None:
        super().__init__(dim)
        check_in("norm", norm, ("l1", "l2"))
        self.norm = norm

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        diff = h + r - t
        if self.norm == "l1":
            return -np.abs(diff).sum(axis=1)
        return -np.sqrt((diff**2).sum(axis=1) + _EPS)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        diff = h + r - t
        if self.norm == "l1":
            # d(-|x|)/dx = -sign(x)
            base = -np.sign(diff)
        else:
            dist = np.sqrt((diff**2).sum(axis=1, keepdims=True) + _EPS)
            base = -diff / dist
        scaled = base * upstream[:, None]
        return scaled, scaled.copy(), -scaled
