"""TransD [Ji et al., ACL 2015].

Replaces TransR's dense projection matrix with two projection *vectors*:
entity ``e`` carries ``e_p`` and relation ``r`` carries ``r_p``, giving the
dynamic projection ``M = r_p e_p^T + I``.  Applied to an entity this is

    e' = e + (e_p . e) r_p

so the model keeps TransR's per-relation spaces at TransE-like cost.  The
entity row stores ``[e, e_p]`` (width ``2d``) and the relation row stores
``[r, r_p]`` (width ``2d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model

_EPS = 1e-12


@register_model("transd")
class TransD(KGEModel):
    """Dynamic-projection translational model."""

    @property
    def entity_dim(self) -> int:
        return 2 * self.dim

    @property
    def relation_dim(self) -> int:
        return 2 * self.dim

    def _split(self, row: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return row[:, : self.dim], row[:, self.dim :]

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        hv, hp = self._split(h)
        rv, rp = self._split(r)
        tv, tp = self._split(t)
        ch = (hp * hv).sum(axis=1, keepdims=True)
        ct = (tp * tv).sum(axis=1, keepdims=True)
        u = hv - tv + rv + (ch - ct) * rp
        return -np.sqrt((u**2).sum(axis=1) + _EPS)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        hv, hp = self._split(h)
        rv, rp = self._split(r)
        tv, tp = self._split(t)
        ch = (hp * hv).sum(axis=1, keepdims=True)
        ct = (tp * tv).sum(axis=1, keepdims=True)
        u = hv - tv + rv + (ch - ct) * rp
        dist = np.sqrt((u**2).sum(axis=1, keepdims=True) + _EPS)
        g = -(u / dist) * upstream[:, None]

        rp_g = (rp * g).sum(axis=1, keepdims=True)  # r_p . g
        ghv = g + rp_g * hp
        ghp = rp_g * hv
        gtv = -(g + rp_g * tp)
        gtp = -rp_g * tv
        grv = g
        grp = (ch - ct) * g
        gh = np.concatenate([ghv, ghp], axis=1)
        gt = np.concatenate([gtv, gtp], axis=1)
        gr = np.concatenate([grv, grp], axis=1)
        return gh, gr, gt
