"""RESCAL [Nickel et al., ICML 2011].

The original bilinear model: each relation is a full ``d x d`` interaction
matrix and the score is ``h^T M_r t``.  The relation row stores
``vec(M_r)`` (width ``d*d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model
from repro.utils.rng import make_rng


@register_model("rescal")
class RESCAL(KGEModel):
    """Full bilinear scoring ``h^T M_r t``."""

    @property
    def relation_dim(self) -> int:
        return self.dim * self.dim

    def init_relations(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Matrices start as noisy identities so initial scores behave like
        a dot product rather than noise."""
        rng = make_rng(rng)
        eye = np.eye(self.dim).ravel()
        noise = rng.normal(0.0, 0.05, size=(count, self.dim * self.dim))
        return eye[None, :] + noise

    def _mats(self, r: np.ndarray) -> np.ndarray:
        return r.reshape(len(r), self.dim, self.dim)

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        mats = self._mats(r)
        return np.einsum("bi,bij,bj->b", h, mats, t)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        mats = self._mats(r)
        up = upstream[:, None]
        gh = np.einsum("bij,bj->bi", mats, t) * up  # M t
        gt = np.einsum("bij,bi->bj", mats, h) * up  # M^T h
        gm = np.einsum("bi,bj->bij", h, t) * upstream[:, None, None]  # h t^T
        return gh, gm.reshape(len(r), -1), gt
