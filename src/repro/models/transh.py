"""TransH [Wang et al., AAAI 2014].

Each relation carries a hyperplane normal ``w`` and a translation ``d_r``
within that hyperplane.  Entities are projected onto the hyperplane before
the TransE-style translation:

    h_perp = h - (w.h) w,  t_perp = t - (w.t) w
    score  = -|| h_perp + d_r - t_perp ||_2

The relation row stores ``[w, d_r]`` concatenated (width ``2d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model

_EPS = 1e-12


@register_model("transh")
class TransH(KGEModel):
    """Hyperplane-projection translational model."""

    @property
    def relation_dim(self) -> int:
        return 2 * self.dim

    def _split(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return r[:, : self.dim], r[:, self.dim :]

    def _residual(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        w, d_r = self._split(r)
        # Normalising w keeps the projection well-defined without requiring
        # a separate constraint step.
        w = w / (np.linalg.norm(w, axis=1, keepdims=True) + _EPS)
        a = t - h
        c = (w * a).sum(axis=1, keepdims=True)  # w.(t - h)
        u = h + d_r - t + c * w  # h_perp + d_r - t_perp
        return u, w, a

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        u, _, _ = self._residual(h, r, t)
        return -np.sqrt((u**2).sum(axis=1) + _EPS)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        w_raw = r[:, : self.dim]
        norm = np.linalg.norm(w_raw, axis=1, keepdims=True) + _EPS
        w = w_raw / norm
        a = t - h
        c = (w * a).sum(axis=1, keepdims=True)
        u = h + r[:, self.dim :] - t + c * w
        dist = np.sqrt((u**2).sum(axis=1, keepdims=True) + _EPS)
        g = -(u / dist) * upstream[:, None]  # d score / d u, scaled

        # u depends on h via (I - w w^T), on t via -(I - w w^T).
        wg = (w * g).sum(axis=1, keepdims=True)
        gh = g - wg * w
        gt = -gh
        gd_r = g
        # d u / d w_hat = a w^T + c I  =>  grad_w_hat = (w_hat . g) a + c g
        gw_hat = wg * a + c * g
        # Back through the normalisation w_hat = w_raw / ||w_raw||:
        # grad_w_raw = (gw_hat - (w_hat . gw_hat) w_hat) / ||w_raw||
        gw_raw = (gw_hat - (w * gw_hat).sum(axis=1, keepdims=True) * w) / norm
        gr = np.concatenate([gw_raw, gd_r], axis=1)
        return gh, gr, gt
