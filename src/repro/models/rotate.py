"""RotatE [Sun et al., ICLR 2019].

Entities are complex vectors and each relation is an element-wise
*rotation*: the relation row stores phases ``theta`` and the score is

    score = -sum_k | h_k * e^{i theta_k} - t_k |

(complex modulus per dimension).  Rotations model symmetry, antisymmetry,
inversion, and composition — the reason RotatE superseded TransE on many
benchmarks.  Entity rows store ``[Re(h), Im(h)]`` (width ``2d``); relation
rows store ``theta`` (width ``d``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model
from repro.utils.rng import make_rng

_EPS = 1e-12


@register_model("rotate")
class RotatE(KGEModel):
    """Complex rotation model."""

    @property
    def entity_dim(self) -> int:
        return 2 * self.dim

    @property
    def relation_dim(self) -> int:
        return self.dim

    def init_relations(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Phases initialise uniformly over the full circle."""
        rng = make_rng(rng)
        return rng.uniform(-np.pi, np.pi, size=(count, self.dim))

    def _diff(self, h: np.ndarray, r: np.ndarray, t: np.ndarray):
        hre, him = h[:, : self.dim], h[:, self.dim :]
        tre, tim = t[:, : self.dim], t[:, self.dim :]
        cos, sin = np.cos(r), np.sin(r)
        rot_re = hre * cos - him * sin
        rot_im = hre * sin + him * cos
        dre = rot_re - tre
        dim_ = rot_im - tim
        modulus = np.sqrt(dre**2 + dim_**2 + _EPS)
        return dre, dim_, modulus, cos, sin, rot_re, rot_im

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        _, _, modulus, *_ = self._diff(h, r, t)
        return -modulus.sum(axis=1)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        dre, dim_, modulus, cos, sin, rot_re, rot_im = self._diff(h, r, t)
        up = upstream[:, None]
        # d score / d dre = -dre / modulus (per dimension), etc.
        gre = -(dre / modulus) * up
        gim = -(dim_ / modulus) * up

        # Rotated head: d rot_re/d hre = cos, d rot_im/d hre = sin, ...
        ghre = gre * cos + gim * sin
        ghim = -gre * sin + gim * cos
        gh = np.concatenate([ghre, ghim], axis=1)
        # Tail enters with a minus sign.
        gt = np.concatenate([-gre, -gim], axis=1)
        # d rot_re/d theta = -rot_im ; d rot_im/d theta = rot_re.
        gr = gre * (-rot_im) + gim * rot_re
        return gh, gr, gt
