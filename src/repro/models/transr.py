"""TransR [Lin et al., AAAI 2015].

Each relation has its own space: entities are mapped by a relation-specific
projection matrix ``M_r`` before the translation:

    score = -|| M_r h + r_vec - M_r t ||_2

The relation row stores ``[r_vec, vec(M_r)]`` (width ``d + d*d``), making
relations far heavier than entities — the reason the paper calls TransR
expressive but costly.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import KGEModel, register_model
from repro.utils.rng import make_rng

_EPS = 1e-12


@register_model("transr")
class TransR(KGEModel):
    """Relation-specific projection-matrix translational model."""

    @property
    def relation_dim(self) -> int:
        return self.dim + self.dim * self.dim

    def _split(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        r_vec = r[:, : self.dim]
        mats = r[:, self.dim :].reshape(len(r), self.dim, self.dim)
        return r_vec, mats

    def init_relations(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Translation part is uniform; matrices start near the identity,
        as in the original paper (so TransR begins as TransE)."""
        rng = make_rng(rng)
        bound = 6.0 / np.sqrt(self.dim)
        r_vec = rng.uniform(-bound, bound, size=(count, self.dim))
        eye = np.eye(self.dim).ravel()
        noise = rng.normal(0.0, 0.01, size=(count, self.dim * self.dim))
        return np.concatenate([r_vec, eye[None, :] + noise], axis=1)

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        r_vec, mats = self._split(r)
        u = np.einsum("bij,bj->bi", mats, h - t) + r_vec
        return -np.sqrt((u**2).sum(axis=1) + _EPS)

    def grad(
        self,
        h: np.ndarray,
        r: np.ndarray,
        t: np.ndarray,
        upstream: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        r_vec, mats = self._split(r)
        diff = h - t
        u = np.einsum("bij,bj->bi", mats, diff) + r_vec
        dist = np.sqrt((u**2).sum(axis=1, keepdims=True) + _EPS)
        g = -(u / dist) * upstream[:, None]

        gh = np.einsum("bij,bi->bj", mats, g)  # M^T g
        gt = -gh
        g_rvec = g
        g_mat = np.einsum("bi,bj->bij", g, diff)  # g (h - t)^T
        gr = np.concatenate([g_rvec, g_mat.reshape(len(r), -1)], axis=1)
        return gh, gr, gt
