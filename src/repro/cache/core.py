"""The unified cache engine: one core, many policies.

Fang et al. (arXiv:2208.05321) frame HET-KG-style systems as
*frequency-aware software caches*: what varies between CPS, DPS, LRU, or
ARC is only the policy — membership construction, admission, eviction,
and refresh cadence — while capacity accounting, hit metering, and the
residency invariant are the same everywhere.  This repo grew five
independent engines (``repro.cache.policies``, the CPS/DPS strategies,
``sync.HotEmbeddingCache``, ``serving.ServingCache``, and the streaming
ADAPTIVE strategy) and the duplication leaked real bugs: segment caps
that sum past the capacity, slot splits that round both sides up, and an
adaptive target compared through ``int()`` truncation.

This module is the single engine they all now share:

:class:`CapacityLedger`
    The **one** place resident-row counts live.  Every admission charges
    it, every eviction releases it, and it *raises* :class:`CapacityError`
    the moment ``resident > capacity`` — an overflowing policy cannot
    silently hold more keys than it was budgeted.
:class:`CacheCore`
    The engine: hit/miss metering, the ledger, and a pluggable
    :class:`EvictionStrategy`.  After every access it audits
    ``len(strategy) == ledger.resident <= capacity``, so the
    capacity-honesty invariant is enforced in one place instead of being
    re-derived per policy.
:class:`EvictionStrategy`
    The ~50-line contract a new policy implements: ``lookup`` /
    ``on_hit`` / ``on_miss``, mutating residency only through the core's
    ``admit``/``evict`` primitives.  Register with
    :func:`register_policy`; construct by name with :func:`make_cache`.
:class:`PinnedStrategy`
    Static membership (importance caches, CPS hot sets, the serving
    tier's log-profiled cache) as just another strategy: admission by
    installation only, plus a row-invalidation protocol that keeps the
    membership for re-warming after a checkpoint swap.
:func:`replay_membership_trace`
    The paper's CPS/DPS and the streaming ADAPTIVE membership
    construction replayed trace-driven on the same core — what the
    ``cache-shootout`` experiment races against the reactive policies.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import Counter, OrderedDict
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.utils.validation import check_fraction, check_positive


class CapacityError(ValueError):
    """A policy tried to hold more resident keys than its capacity."""


class CapacityLedger:
    """Centralized resident-count accounting for one cache.

    The ledger is deliberately dumb: it knows nothing about keys or
    policies, only how many rows are resident against the capacity.  Its
    value is *where* it sits — every residency change in the unified core
    flows through :meth:`charge`/:meth:`release`/:meth:`reinstall`, so
    ``resident <= capacity`` cannot be violated by any single policy's
    private arithmetic.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._resident = 0

    @property
    def resident(self) -> int:
        """Rows currently charged against the capacity."""
        return self._resident

    @property
    def remaining(self) -> int:
        return self.capacity - self._resident

    @property
    def full(self) -> bool:
        return self._resident >= self.capacity

    def check_fits(self, count: int) -> None:
        """Raise :class:`CapacityError` if ``count`` rows cannot be held."""
        if count > self.capacity:
            raise CapacityError(
                f"cannot install {count} entries into capacity {self.capacity}"
            )

    def charge(self, count: int = 1) -> None:
        """Admit ``count`` rows; raises if the capacity would be exceeded."""
        if count < 0:
            raise ValueError(f"charge count must be >= 0, got {count}")
        if self._resident + count > self.capacity:
            raise CapacityError(
                f"admitting {count} would hold {self._resident + count} "
                f"entries in capacity {self.capacity}"
            )
        self._resident += count

    def release(self, count: int = 1) -> None:
        """Evict ``count`` rows; raises if more released than resident."""
        if count < 0:
            raise ValueError(f"release count must be >= 0, got {count}")
        if count > self._resident:
            raise CapacityError(
                f"releasing {count} of {self._resident} resident entries"
            )
        self._resident -= count

    def reinstall(self, count: int) -> None:
        """Wholesale membership replacement (CPS/DPS installs)."""
        if count < 0:
            raise ValueError(f"resident count must be >= 0, got {count}")
        self.check_fits(count)
        self._resident = count

    def audit(self, observed: int) -> None:
        """Cross-check an externally observed resident count."""
        if observed != self._resident or self._resident > self.capacity:
            raise CapacityError(
                f"ledger says {self._resident}/{self.capacity} resident "
                f"but the policy holds {observed}"
            )


# --------------------------------------------------------------- the engine


class EvictionStrategy(ABC):
    """Pure policy logic, pluggable into :class:`CacheCore`.

    A strategy owns its ordering structures (queues, buckets, clock
    hands, ghost lists) but **not** the residency count: every key that
    becomes resident must go through ``self.core.admit(key)`` and every
    key that stops being resident through ``self.core.evict(key)``.  The
    core audits ``len(strategy)`` against the ledger after each access,
    so forgetting either call is an immediate :class:`CapacityError`,
    not a latent overflow.
    """

    #: Registry name, set by :func:`register_policy`.
    name: str = "?"

    def __init__(self) -> None:
        self.core: CacheCore | None = None

    def bind(self, core: "CacheCore") -> None:
        """Attach to the owning core (called once, by the core)."""
        self.core = core

    @abstractmethod
    def lookup(self, key: int) -> bool:
        """Is ``key`` resident?  Must not mutate any state."""

    @abstractmethod
    def on_hit(self, key: int) -> None:
        """Update recency/frequency bookkeeping for a resident key."""

    @abstractmethod
    def on_miss(self, key: int) -> None:
        """Decide admission/eviction for a missing key (may admit
        nothing).  Only called when ``capacity > 0``."""

    @abstractmethod
    def __len__(self) -> int:
        """Resident keys, as the strategy's own structures count them."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every resident key and all bookkeeping state."""


class CacheCore:
    """A fixed-capacity cache over opaque integer keys, policy-pluggable.

    The engine behind every membership/eviction cache in the repo:
    ``access(key)`` meters hits and misses, delegates policy decisions to
    the bound :class:`EvictionStrategy`, and enforces the capacity
    invariant through the :class:`CapacityLedger` after every access.

    ``capacity == 0`` is a legal degenerate cache: every access misses
    and nothing is ever admitted (one side of a split cache may own zero
    slots).
    """

    def __init__(
        self,
        capacity: int,
        strategy: EvictionStrategy,
        label: str | None = None,
    ) -> None:
        self.ledger = CapacityLedger(capacity)
        self.strategy = strategy
        self.label = label if label is not None else strategy.name
        self.hits = 0
        self.misses = 0
        strategy.bind(self)

    # ----------------------------------------------------------- properties

    @property
    def capacity(self) -> int:
        return self.ledger.capacity

    @property
    def full(self) -> bool:
        return self.ledger.full

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return self.ledger.resident

    # ------------------------------------- residency primitives (strategies)

    def admit(self, key: int) -> None:
        """Charge one admitted key to the ledger (strategies only)."""
        self.ledger.charge(1)

    def evict(self, key: int) -> None:
        """Release one evicted key from the ledger (strategies only)."""
        self.ledger.release(1)

    def reinstall(self, count: int) -> None:
        """Wholesale residency replacement (pinned installs)."""
        self.ledger.reinstall(count)

    # ----------------------------------------------------------------- access

    def access(self, key: int) -> bool:
        """Record one access; returns ``True`` on hit.

        The capacity invariant ``len(cache) <= capacity`` is checked here,
        after the policy ran — centrally, for every policy, on every
        access.
        """
        key = int(key)
        hit = self.strategy.lookup(key)
        if hit:
            self.strategy.on_hit(key)
            self.hits += 1
        else:
            if self.capacity > 0:
                self.strategy.on_miss(key)
            self.misses += 1
        self.ledger.audit(len(self.strategy))
        return hit

    def clear(self) -> None:
        """Drop all resident keys and policy state (counters survive)."""
        self.strategy.clear()
        self.ledger.reinstall(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheCore(label={self.label!r}, resident={len(self)}/"
            f"{self.capacity}, hit_ratio={self.hit_ratio:.3f})"
        )


# ---------------------------------------------------------------- registry


POLICIES: dict[str, type[EvictionStrategy]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator adding an :class:`EvictionStrategy` to the registry.

    This is the whole cost of landing a new policy: write the strategy
    class, decorate it, and it is immediately constructible by name
    everywhere — the Table-VI facades, ``ServingCache.dynamic``, the
    ``cache-shootout`` experiment, and the property-test matrix.
    """

    def decorate(cls: type) -> type:
        cls.name = name
        POLICIES[name] = cls
        return cls

    return decorate


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)


def make_cache(name: str, capacity: int, **kwargs) -> CacheCore:
    """Construct a :class:`CacheCore` running the named policy."""
    try:
        strategy_cls = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return CacheCore(capacity, strategy_cls(**kwargs), label=name)


# ----------------------------------------------------------- the strategies


@register_policy("fifo")
class FIFOStrategy(EvictionStrategy):
    """Evict the oldest-admitted key."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: OrderedDict[int, None] = OrderedDict()

    def lookup(self, key: int) -> bool:
        return key in self._queue

    def on_hit(self, key: int) -> None:
        pass  # FIFO ignores recency

    def on_miss(self, key: int) -> None:
        if self.core.full:
            victim, _ = self._queue.popitem(last=False)
            self.core.evict(victim)
        self._queue[key] = None
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()


@register_policy("lru")
class LRUStrategy(EvictionStrategy):
    """Evict the least recently used key."""

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[int, None] = OrderedDict()

    def lookup(self, key: int) -> bool:
        return key in self._order

    def on_hit(self, key: int) -> None:
        self._order.move_to_end(key)

    def on_miss(self, key: int) -> None:
        if self.core.full:
            victim, _ = self._order.popitem(last=False)
            self.core.evict(victim)
        self._order[key] = None
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._order)

    def clear(self) -> None:
        self._order.clear()


@register_policy("lfu")
class LFUStrategy(EvictionStrategy):
    """Evict the least frequently used key (ties: least recent).

    Counts are *historical*: a key evicted and later re-admitted returns
    with its accumulated access count.  Members live in per-count buckets
    ordered by last access; a lazy min-heap of occupied counts finds the
    coldest bucket in O(log n), and the victim (earliest last-accessed
    key among the minimum-count members) is identical to the O(capacity)
    min-scan reference (``tests/test_perf_equivalence.py``).
    """

    def __init__(self) -> None:
        super().__init__()
        self._counts: Counter[int] = Counter()
        #: count -> members at that count, ascending last-access order.
        self._buckets: dict[int, OrderedDict[int, None]] = {}
        self._count_heap: list[int] = []
        self._members: set[int] = set()

    def _bucket_add(self, key: int, count: int) -> None:
        bucket = self._buckets.get(count)
        if bucket is None:
            bucket = self._buckets[count] = OrderedDict()
        if not bucket:
            heapq.heappush(self._count_heap, count)
        bucket[key] = None

    def lookup(self, key: int) -> bool:
        return key in self._members

    def on_hit(self, key: int) -> None:
        self._counts[key] += 1
        count = self._counts[key]
        del self._buckets[count - 1][key]
        self._bucket_add(key, count)

    def on_miss(self, key: int) -> None:
        self._counts[key] += 1
        if self.core.full:
            while True:
                coldest = self._buckets.get(self._count_heap[0])
                if coldest:
                    break
                heapq.heappop(self._count_heap)  # stale: bucket drained
            victim, _ = coldest.popitem(last=False)
            self._members.discard(victim)
            self.core.evict(victim)
        self._members.add(key)
        self._bucket_add(key, self._counts[key])
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._members)

    def clear(self) -> None:
        self._counts.clear()
        self._buckets.clear()
        self._count_heap.clear()
        self._members.clear()


@register_policy("clock")
class ClockStrategy(EvictionStrategy):
    """CLOCK (second-chance FIFO): a one-bit approximation of LRU."""

    def __init__(self) -> None:
        super().__init__()
        self._keys: list[int] = []
        self._referenced: dict[int, bool] = {}
        self._hand = 0

    def lookup(self, key: int) -> bool:
        return key in self._referenced

    def on_hit(self, key: int) -> None:
        self._referenced[key] = True

    def on_miss(self, key: int) -> None:
        if not self.core.full:
            self._keys.append(key)
        else:
            capacity = self.core.capacity
            # Advance the hand past referenced keys, clearing their bit.
            while self._referenced[self._keys[self._hand]]:
                self._referenced[self._keys[self._hand]] = False
                self._hand = (self._hand + 1) % capacity
            victim = self._keys[self._hand]
            del self._referenced[victim]
            self.core.evict(victim)
            self._keys[self._hand] = key
            self._hand = (self._hand + 1) % capacity
        self._referenced[key] = False
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._keys)

    def clear(self) -> None:
        self._keys.clear()
        self._referenced.clear()
        self._hand = 0


@register_policy("2q")
class TwoQueueStrategy(EvictionStrategy):
    """2Q: a probationary FIFO in front of a protected LRU.

    The segment capacities are carved out of the *core's* capacity —
    ``probation_cap + protected_cap == capacity`` always, which is the
    structural fix for the pre-core overflow where ``max(1, ...)`` on
    both segments let ``capacity=1`` hold two resident keys.  At
    ``capacity == 1`` the protected segment owns zero slots and a
    probation hit simply keeps the key where it is.
    """

    def __init__(self, probation_fraction: float = 0.25) -> None:
        super().__init__()
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError(
                f"probation_fraction must be in (0, 1), got {probation_fraction}"
            )
        self.probation_fraction = probation_fraction
        self._probation: OrderedDict[int, None] = OrderedDict()
        self._protected: OrderedDict[int, None] = OrderedDict()
        self.probation_cap = 0
        self.protected_cap = 0

    def bind(self, core: CacheCore) -> None:
        super().bind(core)
        capacity = core.capacity
        if capacity > 0:
            self.probation_cap = min(
                capacity, max(1, int(capacity * self.probation_fraction))
            )
            self.protected_cap = capacity - self.probation_cap

    def lookup(self, key: int) -> bool:
        return key in self._protected or key in self._probation

    def on_hit(self, key: int) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        if self.protected_cap == 0:
            return  # capacity 1: nowhere to promote to; stay probationary
        del self._probation[key]
        if len(self._protected) >= self.protected_cap:
            victim, _ = self._protected.popitem(last=False)
            self.core.evict(victim)
        self._protected[key] = None

    def on_miss(self, key: int) -> None:
        if len(self._probation) >= self.probation_cap:
            victim, _ = self._probation.popitem(last=False)
            self.core.evict(victim)
        self._probation[key] = None
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()


@register_policy("arc")
class ARCStrategy(EvictionStrategy):
    """ARC [Megiddo & Modha, FAST 2003]: self-tuning recency/frequency mix.

    Maintains recency (T1) and frequency (T2) segments plus their ghost
    lists (B1/B2); ghost hits adapt the target size ``p`` of T1.  ``p``
    moves by fractional steps (``|B2|/|B1|`` and its inverse), so the
    REPLACE comparison is against the **exact** float target — the
    pre-core code truncated with ``int(p)``, which fired the T1 branch
    when the paper's comparison selects T2 (e.g. ``|T1| = 2`` vs
    ``p = 2.5``).
    """

    def __init__(self) -> None:
        super().__init__()
        self._t1: OrderedDict[int, None] = OrderedDict()  # recent, once
        self._t2: OrderedDict[int, None] = OrderedDict()  # frequent
        self._b1: OrderedDict[int, None] = OrderedDict()  # ghosts of t1
        self._b2: OrderedDict[int, None] = OrderedDict()  # ghosts of t2
        self._p = 0.0  # adaptive target size of t1

    @property
    def p(self) -> float:
        """The adaptive T1 target (exposed for tests/diagnostics)."""
        return self._p

    def _replace(self, in_b2: bool) -> None:
        if self._t1 and (
            len(self._t1) > self._p or (in_b2 and len(self._t1) >= self._p)
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
            self.core.evict(victim)
        elif self._t2:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
            self.core.evict(victim)
        elif self._t1:
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
            self.core.evict(victim)

    def lookup(self, key: int) -> bool:
        return key in self._t1 or key in self._t2

    def on_hit(self, key: int) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        else:
            self._t2.move_to_end(key)

    def on_miss(self, key: int) -> None:
        capacity = self.core.capacity
        if key in self._b1:
            # Recency ghost hit: grow t1's target.
            self._p = min(
                float(capacity),
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))),
            )
            del self._b1[key]
            self._replace(in_b2=False)
            self._t2[key] = None
            self.core.admit(key)
            return
        if key in self._b2:
            # Frequency ghost hit: shrink t1's target.
            self._p = max(
                0.0, self._p - max(1.0, len(self._b1) / max(1, len(self._b2)))
            )
            del self._b2[key]
            self._replace(in_b2=True)
            self._t2[key] = None
            self.core.admit(key)
            return

        # Cold miss: case IV of the ARC paper.
        if len(self._t1) + len(self._b1) == capacity:
            if len(self._t1) < capacity:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                victim, _ = self._t1.popitem(last=False)
                self.core.evict(victim)
        elif len(self._t1) + len(self._b1) < capacity:
            total = (
                len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            )
            if total >= capacity:
                if total == 2 * capacity and self._b2:
                    self._b2.popitem(last=False)
                self._replace(in_b2=False)
        self._t1[key] = None
        self.core.admit(key)

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0


@register_policy("pinned")
class PinnedStrategy(EvictionStrategy):
    """Static membership: admission by installation only.

    The strategy behind every hot-*set* cache in the repo — importance
    caches, CPS/DPS window installs, and the serving tier's log-profiled
    cache.  Accesses never change the membership; :meth:`install`
    replaces it wholesale through the ledger.

    :meth:`invalidate_rows` implements the checkpoint-swap protocol:
    the cached *rows* are stale and dropped (residency goes to zero),
    but the membership is remembered as *warming* — the next access to a
    warming key misses exactly once (modelling the re-pull of the fresh
    row) and re-admits it.  The hit ratio dips for one pass over the hot
    set instead of flatlining at zero forever.
    """

    def __init__(self) -> None:
        super().__init__()
        self._members: set[int] = set()
        self._warming: set[int] = set()

    def lookup(self, key: int) -> bool:
        return key in self._members

    def on_hit(self, key: int) -> None:
        pass  # static membership: nothing to reorder

    def on_miss(self, key: int) -> None:
        if key in self._warming:
            self._warming.discard(key)
            self._members.add(key)
            self.core.admit(key)

    def install(self, keys: Iterable[int]) -> None:
        """Replace the membership wholesale (ledger-checked)."""
        members = {int(k) for k in keys}
        self.core.reinstall(len(members))
        self._members = members
        self._warming = set()

    def invalidate_rows(self) -> None:
        """Drop the rows, keep the membership for re-warming."""
        self._warming |= self._members
        self._members = set()
        self.core.reinstall(0)

    @property
    def members(self) -> set[int]:
        return set(self._members)

    @property
    def warming(self) -> set[int]:
        return set(self._warming)

    def __len__(self) -> int:
        return len(self._members)

    def clear(self) -> None:
        self._members.clear()
        self._warming.clear()


# ------------------------------------------- hotness membership construction


def _top_keys(keys: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` keys of an access array by frequency, ties by key id."""
    if k <= 0 or len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    ids, counts = np.unique(np.asarray(keys, dtype=np.int64), return_counts=True)
    order = np.lexsort((ids, -counts))
    return ids[order[:k]]


class HotnessMembershipCache:
    """CPS/DPS/ADAPTIVE membership construction, replayed on the core.

    Trace-driven equivalent of the training strategies, over a single
    merged key space (the Table-VI convention: relations offset past the
    entity ids).  Membership is pinned via :class:`PinnedStrategy`, so
    every install flows through the same :class:`CapacityLedger` the
    reactive policies charge.

    Modes
    -----
    ``cps``
        One global top-``capacity`` from the whole trace, fixed for the
        run (the prefetch-the-entire-subgraph strategy).
    ``dps``
        Top-``capacity`` of each upcoming ``window``-batch chunk —
        bit-equal to :func:`repro.cache.policies.hotness_window_hit_ratio`.
    ``adaptive``
        The streaming drift-adaptive strategy at trace level: observes at
        half-``window`` granularity, keeps the current membership while
        the :class:`~repro.stream.drift.DriftDetector` stays quiet, and
        rebuilds from the current chunk's counts on a trigger.
    """

    MODES = ("cps", "dps", "adaptive")

    def __init__(
        self,
        capacity: int,
        mode: str = "dps",
        window: int = 8,
        threshold: float = 0.65,
        decay: float = 0.5,
    ) -> None:
        check_positive("capacity", capacity)
        check_positive("window", window)
        check_fraction("decay", decay)
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.mode = mode
        self.window = window
        self.threshold = threshold
        self.decay = decay
        self.rebuilds = 0
        self._strategy = PinnedStrategy()
        self._core = CacheCore(capacity, self._strategy, label=mode)

    # ----------------------------------------------------------- delegation

    @property
    def capacity(self) -> int:
        return self._core.capacity

    @property
    def hits(self) -> int:
        return self._core.hits

    @property
    def misses(self) -> int:
        return self._core.misses

    @property
    def hit_ratio(self) -> float:
        return self._core.hit_ratio

    def __len__(self) -> int:
        return len(self._core)

    def members(self) -> set[int]:
        return self._strategy.members

    # --------------------------------------------------------------- replay

    def _install(self, keys: np.ndarray) -> None:
        self._strategy.install(keys.tolist())
        self.rebuilds += 1

    def _chunks(self, batches: Sequence[np.ndarray], size: int):
        for start in range(0, len(batches), size):
            chunk = [
                np.asarray(b, dtype=np.int64)
                for b in batches[start : start + size]
            ]
            flat = (
                np.concatenate(chunk) if chunk else np.empty(0, dtype=np.int64)
            )
            yield flat

    def _access_all(self, flat: np.ndarray) -> None:
        for key in flat:
            self._core.access(int(key))

    def replay(self, batches: Sequence[np.ndarray]) -> float:
        """Feed a per-batch access trace through; returns the hit ratio."""
        if self.mode == "cps":
            all_keys = (
                np.concatenate([np.asarray(b, dtype=np.int64) for b in batches])
                if len(batches)
                else np.empty(0, dtype=np.int64)
            )
            self._install(_top_keys(all_keys, self.capacity))
            self._access_all(all_keys)
        elif self.mode == "dps":
            for flat in self._chunks(batches, self.window):
                if len(flat) == 0:
                    continue
                self._install(_top_keys(flat, self.capacity))
                self._access_all(flat)
        else:
            self._replay_adaptive(batches)
        return self.hit_ratio

    def _replay_adaptive(self, batches: Sequence[np.ndarray]) -> None:
        # Lazy import: repro.stream.drift imports repro.cache.* at module
        # load; importing it here (call time) avoids the cycle.
        from repro.stream.drift import DriftDetector

        detector = DriftDetector(self.threshold)
        half = max(1, self.window // 2)
        acc: dict[int, float] = {}
        first = True
        for flat in self._chunks(batches, half):
            if len(flat) == 0:
                continue
            ids, counts = np.unique(flat, return_counts=True)
            if self.decay == 0.0:
                acc.clear()
            elif self.decay != 1.0:
                for k in acc:
                    acc[k] *= self.decay
            for i, c in zip(ids.tolist(), counts.tolist()):
                acc[i] = acc.get(i, 0.0) + c
            candidate = _top_keys(flat, self.capacity)
            current = np.fromiter(
                sorted(self._strategy.members), dtype=np.int64
            )
            total = int(counts.sum())
            coverage = (
                float(counts[np.isin(ids, current)].sum()) / total
                if total
                else 1.0
            )
            candidate_cov = (
                float(counts[np.isin(ids, candidate)].sum()) / total
                if total
                else 1.0
            )
            if first:
                triggered = True
                first = False
            else:
                from repro.cache.filtering import HotSet

                signal = detector.observe(
                    HotSet(
                        entities=candidate,
                        relations=np.empty(0, dtype=np.int64),
                    ),
                    current,
                    np.empty(0, dtype=np.int64),
                    coverage,
                    candidate_coverage=candidate_cov,
                )
                triggered = signal.triggered
            if triggered:
                self._install(candidate)
            self._access_all(flat)


def replay_membership_trace(
    batches: Sequence[np.ndarray],
    capacity: int,
    mode: str,
    window: int = 8,
    **kwargs,
) -> float:
    """One-shot :class:`HotnessMembershipCache` replay; returns hit ratio."""
    cache = HotnessMembershipCache(capacity, mode=mode, window=window, **kwargs)
    return cache.replay(batches)
