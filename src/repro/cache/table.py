"""The cache embedding table: a fixed-capacity id -> row store.

One table caches one kind of embedding (entities or relations) at one
worker.  Membership is decided externally (by the CPS/DPS strategies); the
table provides O(1) id lookup, bulk hit/miss partitioning, in-place row
updates, and hit-ratio accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class CacheStats:
    """Cumulative hit/miss counters for one cache table."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheTable:
    """Fixed-capacity embedding rows keyed by id.

    Parameters
    ----------
    capacity:
        Maximum number of rows the table may hold.
    width:
        Row width (the model's entity or relation dim).
    """

    def __init__(self, capacity: int, width: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        check_positive("width", width)
        self.capacity = capacity
        self.width = width
        self._rows = np.zeros((capacity, width), dtype=np.float64)
        self._slot_of: dict[int, int] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------- membership

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, item: int) -> bool:
        return int(item) in self._slot_of

    @property
    def ids(self) -> np.ndarray:
        """Currently cached ids (unordered)."""
        return np.fromiter(self._slot_of.keys(), dtype=np.int64, count=len(self._slot_of))

    def install(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Replace the entire membership with ``ids`` -> ``rows``.

        This is the hot-embedding table (re)construction step: CPS calls it
        once before training, DPS every ``D`` iterations.  Hit/miss counters
        are preserved across installs (they measure the whole run).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) > self.capacity:
            raise ValueError(
                f"cannot install {len(ids)} rows into capacity {self.capacity}"
            )
        if len(ids) != len(rows):
            raise ValueError(f"{len(ids)} ids but {len(rows)} rows")
        if len(np.unique(ids)) != len(ids):
            raise ValueError("install ids must be unique")
        previous = len(self._slot_of)
        self._slot_of = {int(e): i for i, e in enumerate(ids)}
        self._rows[: len(ids)] = rows
        if len(ids) < previous:
            # Zero the tail on shrink: rows_view() hands the backing array
            # to optimizers, and rows beyond the live membership must not
            # leak a previous membership's embeddings.
            self._rows[len(ids):previous] = 0.0

    # ------------------------------------------------------------------ reads

    def membership_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``ids`` are currently cached (no stats)."""
        ids = np.asarray(ids, dtype=np.int64)
        return np.fromiter(
            (int(e) in self._slot_of for e in ids), dtype=bool, count=len(ids)
        )

    def partition_hits(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split ``ids`` into (mask, cached, not-cached), updating hit stats.

        Duplicate ids count once per occurrence, matching how a worker's
        accesses are metered.
        """
        ids = np.asarray(ids, dtype=np.int64)
        mask = self.membership_mask(ids)
        hits = int(mask.sum())
        self.stats.hits += hits
        self.stats.misses += int(len(ids) - hits)
        return mask, ids[mask], ids[~mask]

    def get(self, ids: np.ndarray) -> np.ndarray:
        """Rows for ``ids`` (every id must be cached). Returns a copy."""
        slots = self._slots(ids)
        return self._rows[slots].copy()

    # ----------------------------------------------------------------- writes

    def set(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite cached rows (used by the periodic synchronization)."""
        slots = self._slots(ids)
        self._rows[slots] = rows

    def add_inplace(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Accumulate ``deltas`` into cached rows, coalescing duplicates."""
        slots = self._slots(ids)
        np.add.at(self._rows, slots, deltas)

    @property
    def occupied(self) -> int:
        """Rows of the backing array that belong to the live membership.

        ``rows_view()`` consumers must only touch slots ``< occupied``;
        everything beyond is zeroed padding.
        """
        return len(self._slot_of)

    def rows_view(self) -> np.ndarray:
        """The live backing array (first :attr:`occupied` rows are valid)."""
        return self._rows

    def slot_of(self, ids: np.ndarray) -> np.ndarray:
        """Slot index of each cached id (public alias used by optimizers)."""
        return self._slots(ids)

    # ---------------------------------------------------------------- private

    def _slots(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        try:
            return np.fromiter(
                (self._slot_of[int(e)] for e in ids), dtype=np.int64, count=len(ids)
            )
        except KeyError as exc:
            raise KeyError(f"id {exc.args[0]} is not cached") from None
