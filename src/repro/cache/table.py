"""The cache embedding table: a fixed-capacity id -> row store.

One table caches one kind of embedding (entities or relations) at one
worker.  Membership is decided externally (by the CPS/DPS strategies); the
table provides vectorized id lookup, bulk hit/miss partitioning, in-place
row updates, and hit-ratio accounting.

Implementation note (the determinism contract)
----------------------------------------------
Membership is a *sorted* id array plus a slot permutation, so every lookup
(``membership_mask`` / ``slot_of`` / ``partition_hits``) is one
``np.searchsorted`` gather instead of a Python dict loop.  Slot assignment
is pinned: ``install(ids, rows)`` stores ``ids[i]`` at slot ``i`` exactly
as the dict-based implementation did, so ``rows_view()`` layouts, optimizer
state addressing, and the :attr:`ids` order are bit-compatible with the
pre-vectorization code (see ``docs/performance.md``).

Because one worker step asks the same id batch several times (hit
partitioning on fetch, membership + slots on the gradient write-back), the
table memoises the most recent lookup: repeated queries for the same id
array are answered from the memo without rescanning (the memo is
invalidated whenever membership changes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.core import CapacityLedger
from repro.utils.validation import check_positive

_EMPTY_IDS = np.empty(0, dtype=np.int64)


@dataclass
class CacheStats:
    """Cumulative hit/miss counters for one cache table."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheTable:
    """Fixed-capacity embedding rows keyed by id.

    Parameters
    ----------
    capacity:
        Maximum number of rows the table may hold.
    width:
        Row width (the model's entity or relation dim).
    """

    def __init__(self, capacity: int, width: int) -> None:
        check_positive("width", width)
        #: Shared capacity accounting (also validates capacity >= 0).
        self._ledger = CapacityLedger(capacity)
        self.capacity = capacity
        self.width = width
        self._rows = np.zeros((capacity, width), dtype=np.float64)
        #: Install-order ids; ``_ids[i]`` lives at slot ``i``.
        self._ids: np.ndarray = _EMPTY_IDS
        #: ``_ids`` sorted ascending, plus the slot of each sorted id.
        self._sorted_ids: np.ndarray = _EMPTY_IDS
        self._sorted_slots: np.ndarray = _EMPTY_IDS
        #: One-entry lookup memo: (query ids, mask, slots).
        self._memo: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self.stats = CacheStats()

    # ------------------------------------------------------------- membership

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, item: int) -> bool:
        item = int(item)
        pos = int(np.searchsorted(self._sorted_ids, item))
        return pos < len(self._sorted_ids) and int(self._sorted_ids[pos]) == item

    @property
    def ids(self) -> np.ndarray:
        """Currently cached ids, in slot (install) order."""
        return self._ids.copy()

    def install(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Replace the entire membership with ``ids`` -> ``rows``.

        This is the hot-embedding table (re)construction step: CPS calls it
        once before training, DPS every ``D`` iterations.  Hit/miss counters
        are preserved across installs (they measure the whole run).
        """
        ids = np.asarray(ids, dtype=np.int64)
        self._ledger.check_fits(len(ids))
        if len(ids) != len(rows):
            raise ValueError(f"{len(ids)} ids but {len(rows)} rows")
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        if len(ids) > 1 and bool((sorted_ids[1:] == sorted_ids[:-1]).any()):
            raise ValueError("install ids must be unique")
        previous = len(self._ids)
        self._ledger.reinstall(len(ids))
        self._ids = ids.copy()
        self._sorted_ids = sorted_ids
        self._sorted_slots = order
        self._memo = None
        self._rows[: len(ids)] = rows
        if len(ids) < previous:
            # Zero the tail on shrink: rows_view() hands the backing array
            # to optimizers, and rows beyond the live membership must not
            # leak a previous membership's embeddings.
            self._rows[len(ids):previous] = 0.0

    # ------------------------------------------------------------------ reads

    def lookup(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized membership + slot resolution in one pass.

        Returns ``(mask, slots)`` where ``mask[i]`` says whether ``ids[i]``
        is cached and ``slots[i]`` is its slot (``-1`` for misses).  The
        most recent query is memoised, so a fetch's hit partitioning and
        the subsequent gradient write-back for the *same* id batch cost a
        single membership scan per step.  Treat both arrays as read-only.
        """
        ids = np.asarray(ids, dtype=np.int64)
        memo = self._memo
        if memo is not None:
            memo_ids, mask, slots = memo
            if memo_ids is ids or (
                len(memo_ids) == len(ids) and np.array_equal(memo_ids, ids)
            ):
                return mask, slots
        mask, slots = self._lookup(ids)
        self._memo = (ids, mask, slots)
        return mask, slots

    def membership_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``ids`` are currently cached (no stats)."""
        mask, _ = self.lookup(ids)
        return mask

    def partition_hits(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split ``ids`` into (mask, cached, not-cached), updating hit stats.

        Duplicate ids count once per occurrence, matching how a worker's
        accesses are metered.
        """
        ids = np.asarray(ids, dtype=np.int64)
        mask, _ = self.lookup(ids)
        hits = int(mask.sum())
        self.stats.hits += hits
        self.stats.misses += int(len(ids) - hits)
        return mask, ids[mask], ids[~mask]

    def get(self, ids: np.ndarray) -> np.ndarray:
        """Rows for ``ids`` (every id must be cached). Returns a copy."""
        slots = self._slots(ids)
        return self._rows[slots].copy()

    # ----------------------------------------------------------------- writes

    def set(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite cached rows (used by the periodic synchronization)."""
        slots = self._slots(ids)
        self._rows[slots] = rows

    def add_inplace(self, ids: np.ndarray, deltas: np.ndarray) -> None:
        """Accumulate ``deltas`` into cached rows, coalescing duplicates."""
        slots = self._slots(ids)
        np.add.at(self._rows, slots, deltas)

    @property
    def occupied(self) -> int:
        """Rows of the backing array that belong to the live membership.

        ``rows_view()`` consumers must only touch slots ``< occupied``;
        everything beyond is zeroed padding.
        """
        return len(self._ids)

    def rows_view(self) -> np.ndarray:
        """The live backing array (first :attr:`occupied` rows are valid)."""
        return self._rows

    def slot_of(self, ids: np.ndarray) -> np.ndarray:
        """Slot index of each cached id (public alias used by optimizers)."""
        return self._slots(ids)

    # ---------------------------------------------------------------- private

    def _lookup(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Uncached searchsorted membership + slot gather."""
        n = len(self._sorted_ids)
        if n == 0 or len(ids) == 0:
            return (
                np.zeros(len(ids), dtype=bool),
                np.full(len(ids), -1, dtype=np.int64),
            )
        pos = np.searchsorted(self._sorted_ids, ids)
        pos = np.minimum(pos, n - 1)
        mask = self._sorted_ids[pos] == ids
        slots = np.where(mask, self._sorted_slots[pos], -1)
        return mask, slots

    def _slots(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        mask, slots = self.lookup(ids)
        if not mask.all():
            missing = int(ids[np.argmin(mask)])
            raise KeyError(f"id {missing} is not cached")
        return slots
