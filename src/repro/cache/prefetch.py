"""Algorithm 1 — prefetch.

Sample the next ``D`` iterations of mini-batches (positives + corrupted
negatives) ahead of time, recording every entity and relation access.  The
sample list is returned so training consumes *exactly* the prefetched
batches; the access lists feed Algorithm 2 (filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import MiniBatch


@dataclass
class PrefetchResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    batches:
        ``L_s`` — the prefetched mini-batches, in training order.
    entity_counts:
        id -> access count over the window (positives and negatives).
    relation_counts:
        id -> access count over the window.
    """

    batches: list[MiniBatch]
    entity_counts: dict[int, int] = field(default_factory=dict)
    relation_counts: dict[int, int] = field(default_factory=dict)

    @property
    def total_entity_accesses(self) -> int:
        return sum(self.entity_counts.values())

    @property
    def total_relation_accesses(self) -> int:
        return sum(self.relation_counts.values())


def _count_batch(
    batch: MiniBatch,
    entity_counts: dict[int, int],
    relation_counts: dict[int, int],
) -> None:
    """Record each embedding access one batch makes (line 7-8 of Alg. 1)."""
    touched_entities = np.concatenate(
        [
            batch.positives[:, HEAD],
            batch.positives[:, TAIL],
            batch.neg_entities.ravel(),
        ]
    )
    ids, counts = np.unique(touched_entities, return_counts=True)
    for e, c in zip(ids.tolist(), counts.tolist()):
        entity_counts[e] = entity_counts.get(e, 0) + c
    # Each negative reuses its positive's relation embedding.
    rel_ids, rel_counts = np.unique(batch.positives[:, REL], return_counts=True)
    weight = 1 + batch.num_negatives
    for r, c in zip(rel_ids.tolist(), rel_counts.tolist()):
        relation_counts[r] = relation_counts.get(r, 0) + c * weight


def prefetch(sampler: EpochSampler, iterations: int) -> PrefetchResult:
    """Run Algorithm 1: prefetch ``iterations`` batches and count accesses.

    Parameters
    ----------
    sampler:
        The worker's epoch sampler over its local subgraph ``G_i``.
    iterations:
        The prefetch window ``D`` (CPS passes a full epoch's batch count).
    """
    batches = sampler.prefetch(iterations)
    result = PrefetchResult(batches=batches)
    for batch in batches:
        _count_batch(batch, result.entity_counts, result.relation_counts)
    return result
