"""Algorithm 1 — prefetch.

Sample the next ``D`` iterations of mini-batches (positives + corrupted
negatives) ahead of time, recording every entity and relation access.  The
sample list is returned so training consumes *exactly* the prefetched
batches; the access lists feed Algorithm 2 (filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import MiniBatch


@dataclass
class PrefetchResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    batches:
        ``L_s`` — the prefetched mini-batches, in training order.
    entity_counts:
        id -> access count over the window (positives and negatives).
    relation_counts:
        id -> access count over the window.
    """

    batches: list[MiniBatch]
    entity_counts: dict[int, int] = field(default_factory=dict)
    relation_counts: dict[int, int] = field(default_factory=dict)

    @property
    def total_entity_accesses(self) -> int:
        return sum(self.entity_counts.values())

    @property
    def total_relation_accesses(self) -> int:
        return sum(self.relation_counts.values())


def _count_batch(
    batch: MiniBatch,
    entity_counts: dict[int, int],
    relation_counts: dict[int, int],
) -> None:
    """Per-batch reference counter (line 7-8 of Alg. 1).

    Kept as the readable single-batch oracle: :func:`prefetch` now folds
    all batches of a window through one vectorized count
    (:func:`_fold_counts`), which must agree with applying this function
    batch by batch (see ``tests/test_perf_equivalence.py``).
    """
    touched_entities = np.concatenate(
        [
            batch.positives[:, HEAD],
            batch.positives[:, TAIL],
            batch.neg_entities.ravel(),
        ]
    )
    ids, counts = np.unique(touched_entities, return_counts=True)
    for e, c in zip(ids.tolist(), counts.tolist()):
        entity_counts[e] = entity_counts.get(e, 0) + c
    # Each negative reuses its positive's relation embedding.
    rel_ids, rel_counts = np.unique(batch.positives[:, REL], return_counts=True)
    weight = 1 + batch.num_negatives
    for r, c in zip(rel_ids.tolist(), rel_counts.tolist()):
        relation_counts[r] = relation_counts.get(r, 0) + c * weight


def _fold_counts(
    chunks: list[np.ndarray], weights: list[int] | None = None
) -> dict[int, int]:
    """Vectorized id -> access-count fold over many id chunks.

    One concatenate + one ``np.unique``/``np.bincount`` pass replaces the
    per-batch Python dict merge.  ``weights`` (one int per chunk) scales
    every occurrence of a chunk — used for relations, where each negative
    reuses its positive's relation embedding.
    """
    if not chunks:
        return {}
    ids = np.concatenate(chunks)
    if len(ids) == 0:
        return {}
    if weights is None:
        uniq, counts = np.unique(ids, return_counts=True)
    else:
        per_element = np.concatenate(
            [np.full(len(c), w, dtype=np.int64) for c, w in zip(chunks, weights)]
        )
        uniq, inverse = np.unique(ids, return_inverse=True)
        counts = np.bincount(
            inverse, weights=per_element, minlength=len(uniq)
        ).astype(np.int64)
    return dict(zip(uniq.tolist(), counts.tolist()))


def prefetch(sampler: EpochSampler, iterations: int) -> PrefetchResult:
    """Run Algorithm 1: prefetch ``iterations`` batches and count accesses.

    Parameters
    ----------
    sampler:
        The worker's epoch sampler over its local subgraph ``G_i``.
    iterations:
        The prefetch window ``D`` (CPS passes a full epoch's batch count).
    """
    batches = sampler.prefetch(iterations)
    ent_chunks: list[np.ndarray] = []
    rel_chunks: list[np.ndarray] = []
    rel_weights: list[int] = []
    for batch in batches:
        ent_chunks.append(batch.positives[:, HEAD])
        ent_chunks.append(batch.positives[:, TAIL])
        ent_chunks.append(batch.neg_entities.ravel())
        rel_chunks.append(batch.positives[:, REL])
        rel_weights.append(1 + batch.num_negatives)
    return PrefetchResult(
        batches=batches,
        entity_counts=_fold_counts(ent_chunks),
        relation_counts=_fold_counts(rel_chunks, rel_weights),
    )
