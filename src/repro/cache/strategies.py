"""Hot-embedding table construction strategies: CPS and DPS (§IV-B).

* **Constant partial stale (CPS)** — prefetch a whole epoch of samples up
  front, filter the global top-k once, and keep that membership for the
  entire run.  Cheap, but assumes each mini-batch's access distribution
  matches the global one.
* **Dynamic partial stale (DPS)** — prefetch only the next ``D``
  iterations, filter the top-k *of that window*, and rebuild the table
  every ``D`` iterations.  Tracks short-term access patterns, so the hit
  ratio is higher, at the cost of recurring prefetch/filter work.

Both strategies also hand the worker the exact batches that were
prefetched, so training is equivalent to sampling live (Algorithm 1 returns
the sample list ``L_s`` for this reason).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.core import CapacityLedger
from repro.cache.filtering import HotSet, filter_hot_ids
from repro.cache.prefetch import PrefetchResult, prefetch
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import MiniBatch
from repro.utils.validation import check_positive


class HotEmbeddingStrategy(ABC):
    """Produces training batches plus hot-set (re)construction events.

    Usage: call :meth:`setup` once, then :meth:`next_batch` per training
    iteration.  ``next_batch`` returns ``(batch, hot_set)`` where
    ``hot_set`` is ``None`` unless the table membership must change before
    training on ``batch``.

    ``consume_overhead_items()`` reports how many bookkeeping items
    (counted accesses) the strategy processed since the last call, so the
    worker can charge prefetch/filter time to its simulated clock — this is
    what makes DPS slightly slower than CPS on small graphs (Table IV).
    """

    def __init__(self, capacity: int, entity_ratio: float | None = 0.25) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self.entity_ratio = entity_ratio
        self._pending_overhead = 0
        #: Centralized capacity accounting: every hot set this strategy
        #: emits is charged here, so an over-capacity membership raises
        #: :class:`repro.cache.core.CapacityError` at construction time
        #: instead of overflowing the worker's cache tables downstream.
        self._ledger = CapacityLedger(capacity)

    @abstractmethod
    def setup(self, sampler: EpochSampler) -> HotSet:
        """Prefetch and build the initial hot set."""

    @abstractmethod
    def next_batch(self) -> tuple[MiniBatch, HotSet | None]:
        """The next training batch, plus a new hot set when membership
        changes."""

    def consume_overhead_items(self) -> int:
        """Bookkeeping items processed since last call (then reset)."""
        items = self._pending_overhead
        self._pending_overhead = 0
        return items

    # ---------------------------------------------------------------- helpers

    def _filter(self, result: PrefetchResult) -> HotSet:
        self._pending_overhead += (
            result.total_entity_accesses + result.total_relation_accesses
        )
        hot = filter_hot_ids(
            result.entity_counts,
            result.relation_counts,
            self.capacity,
            self.entity_ratio,
        )
        self._ledger.reinstall(hot.size)
        return hot


class ConstantPartialStale(HotEmbeddingStrategy):
    """CPS: one global top-k, fixed for the whole run.

    ``horizon`` controls how many iterations are prefetched to estimate the
    global frequencies (defaults to one full epoch, the paper's
    "prefetches the entire subgraph").
    """

    def __init__(
        self,
        capacity: int,
        entity_ratio: float | None = 0.25,
        horizon: int | None = None,
    ) -> None:
        super().__init__(capacity, entity_ratio)
        self.horizon = horizon
        self._sampler: EpochSampler | None = None
        self._queue: list[MiniBatch] = []

    def setup(self, sampler: EpochSampler) -> HotSet:
        self._sampler = sampler
        horizon = self.horizon or sampler.batches_per_epoch
        result = prefetch(sampler, horizon)
        self._queue = list(result.batches)
        return self._filter(result)

    def next_batch(self) -> tuple[MiniBatch, HotSet | None]:
        if self._sampler is None:
            raise RuntimeError("setup() must be called before next_batch()")
        if not self._queue:
            # New epoch: fresh samples, same hot set (membership is
            # constant), and no new filtering overhead.
            self._queue = self._sampler.prefetch(self._sampler.batches_per_epoch)
        return self._queue.pop(0), None


class DynamicPartialStale(HotEmbeddingStrategy):
    """DPS: rebuild the top-k from each upcoming ``D``-iteration window."""

    def __init__(
        self,
        capacity: int,
        window: int = 32,
        entity_ratio: float | None = 0.25,
    ) -> None:
        super().__init__(capacity, entity_ratio)
        check_positive("window", window)
        self.window = window
        self._sampler: EpochSampler | None = None
        self._queue: list[MiniBatch] = []
        self._next_hot: HotSet | None = None

    def _refill(self) -> None:
        assert self._sampler is not None
        result = prefetch(self._sampler, self.window)
        self._queue = list(result.batches)
        self._next_hot = self._filter(result)

    def setup(self, sampler: EpochSampler) -> HotSet:
        self._sampler = sampler
        self._refill()
        hot = self._next_hot
        self._next_hot = None
        assert hot is not None
        return hot

    def next_batch(self) -> tuple[MiniBatch, HotSet | None]:
        if self._sampler is None:
            raise RuntimeError("setup() must be called before next_batch()")
        if not self._queue:
            self._refill()
        hot = self._next_hot
        self._next_hot = None
        return self._queue.pop(0), hot
