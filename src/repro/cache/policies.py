"""Classic eviction policies, for the paper's Table VI comparison.

HET-KG's prefetch/filter cache is compared against FIFO, LRU, and an
"importance cache" (a static cache of the structurally most important ids —
highest degree — never evicted).  LFU is included as well since the paper
discusses it when contrasting with the HET system.

These are *trace-driven* caches: feed them the sequence of embedding
accesses a training run produces and read off the hit ratio.  The HET-KG
entry of Table VI comes from running the real
:class:`~repro.cache.sync.HotEmbeddingCache` inside a trainer; for pure
trace replay, :func:`replay_trace` with a
:class:`~repro.cache.strategies.DynamicPartialStale`-style oracle window is
provided by :func:`hotness_window_hit_ratio`.

Implementation note
-------------------
Each class here is a thin facade over the unified engine in
:mod:`repro.cache.core`: the policy logic lives in an
:class:`~repro.cache.core.EvictionStrategy` and capacity accounting in the
core's :class:`~repro.cache.core.CapacityLedger`, so ``len(cache) <=
capacity`` is enforced centrally rather than re-derived per policy.  The
:class:`EvictionPolicy` ABC is kept as the stable trace-replay interface
(tests subclass it directly for reference implementations).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro.cache.core import (
    ARCStrategy,
    CacheCore,
    ClockStrategy,
    EvictionStrategy,
    FIFOStrategy,
    LFUStrategy,
    LRUStrategy,
    PinnedStrategy,
    TwoQueueStrategy,
)
from repro.utils.validation import check_positive


class EvictionPolicy(ABC):
    """A fixed-capacity cache over opaque integer keys.

    ``access(key)`` returns ``True`` on a hit; on a miss the policy decides
    whether/what to admit and evict.
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, key: int) -> bool:
        """Record one access; returns True on hit."""
        hit = self._access(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @abstractmethod
    def _access(self, key: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...


class _CoreBackedPolicy(EvictionPolicy):
    """EvictionPolicy facade over a :class:`~repro.cache.core.CacheCore`."""

    def __init__(self, capacity: int, strategy: EvictionStrategy) -> None:
        super().__init__(capacity)
        self._core = CacheCore(capacity, strategy)

    @property
    def core(self) -> CacheCore:
        """The backing unified-core instance (ledger, strategy, label)."""
        return self._core

    def _access(self, key: int) -> bool:
        return self._core.access(key)

    def __len__(self) -> int:
        return len(self._core)


class FIFOCache(_CoreBackedPolicy):
    """Evict the oldest-admitted key."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, FIFOStrategy())


class LRUCache(_CoreBackedPolicy):
    """Evict the least recently used key."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, LRUStrategy())


class LFUCache(_CoreBackedPolicy):
    """Evict the least frequently used key (ties: least recent).

    Counts are *historical*: a key evicted and later re-admitted returns
    with its accumulated access count, exactly as the reference
    ``min(members, key=counts)`` implementation behaved; the bucketed
    O(log n) eviction picks identical victims
    (``tests/test_perf_equivalence.py`` checks trace-for-trace agreement).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, LFUStrategy())


class ImportanceCache(_CoreBackedPolicy):
    """Static cache of the top-``capacity`` most important keys.

    "Importance" is supplied up front (the comparison uses entity degree /
    relation frequency, i.e. structural importance known before training).
    Keys outside the important set are never admitted.
    """

    def __init__(self, capacity: int, importance: dict[int, float]) -> None:
        strategy = PinnedStrategy()
        super().__init__(capacity, strategy)
        ranked = sorted(importance.items(), key=lambda kv: (-kv[1], kv[0]))
        strategy.install(k for k, _ in ranked[:capacity])


class ClockCache(_CoreBackedPolicy):
    """CLOCK (second-chance FIFO): a one-bit approximation of LRU.

    Keys sit on a circular buffer with a reference bit; the hand skips
    (and clears) referenced keys and evicts the first unreferenced one.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, ClockStrategy())


class TwoQueueCache(_CoreBackedPolicy):
    """2Q: a probationary FIFO in front of a protected LRU.

    First-time keys enter the probationary queue; a hit there promotes to
    the protected LRU segment.  One-hit wonders therefore never displace
    genuinely reused keys — useful against KGE's long random-negative tail.

    The segment capacities always sum to exactly ``capacity`` (at
    ``capacity=1`` the protected segment gets zero slots and probation
    hits stay probationary) — the pre-core version gave each segment
    ``max(1, ...)`` slots independently and overflowed at capacity 1.
    """

    def __init__(self, capacity: int, probation_fraction: float = 0.25) -> None:
        super().__init__(capacity, TwoQueueStrategy(probation_fraction))


class ARCCache(_CoreBackedPolicy):
    """ARC [Megiddo & Modha, FAST 2003]: self-tuning recency/frequency mix.

    Maintains recency (T1) and frequency (T2) segments plus their ghost
    lists (B1/B2); ghost hits adapt the target size ``p`` of T1.  Included
    as the strongest classical adaptive policy to stress the claim that
    HET-KG's prefetch-based cache beats *reactive* policies generally.

    REPLACE compares ``|T1|`` against the **exact** float target ``p`` (the
    pre-core version truncated with ``int(p)``, deviating from the paper
    whenever ``p`` sat between integers).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity, ARCStrategy())

    @property
    def p(self) -> float:
        """The adaptive T1 target size."""
        return self._core.strategy.p


def replay_trace(policy: EvictionPolicy, trace: Iterable[int]) -> float:
    """Feed every access in ``trace`` through ``policy``; return hit ratio."""
    for key in trace:
        policy.access(int(key))
    return policy.hit_ratio


def hotness_window_hit_ratio(
    batches: Sequence[np.ndarray], capacity: int, window: int
) -> float:
    """Hit ratio of a HET-KG-style windowed hotness cache on a pull trace.

    ``batches`` is a sequence of per-iteration access arrays (typically the
    unique ids each mini-batch pulls).  Models DPS: for each window of
    ``window`` consecutive batches, the cache holds the top-``capacity``
    most frequent keys *of that window* (prefetching makes the window known
    in advance).  This is the oracle-window equivalent of the DPS strategy,
    used for Table VI's like-for-like policy comparison.
    (:class:`repro.cache.core.HotnessMembershipCache` in ``dps`` mode
    replays the same construction through the unified core and must agree
    exactly — property-tested in ``tests/test_cache_core.py``.)
    """
    check_positive("capacity", capacity)
    check_positive("window", window)
    hits = 0
    total = 0
    for start in range(0, len(batches), window):
        chunk = [np.asarray(b, dtype=np.int64) for b in batches[start : start + window]]
        flat = np.concatenate(chunk) if chunk else np.empty(0, dtype=np.int64)
        total += len(flat)
        if not len(flat):
            continue
        ids, counts = np.unique(flat, return_counts=True)
        order = np.lexsort((ids, -counts))
        hits += int(np.isin(flat, ids[order[:capacity]]).sum())
    return hits / total if total else 0.0
