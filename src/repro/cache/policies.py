"""Classic eviction policies, for the paper's Table VI comparison.

HET-KG's prefetch/filter cache is compared against FIFO, LRU, and an
"importance cache" (a static cache of the structurally most important ids —
highest degree — never evicted).  LFU is included as well since the paper
discusses it when contrasting with the HET system.

These are *trace-driven* caches: feed them the sequence of embedding
accesses a training run produces and read off the hit ratio.  The HET-KG
entry of Table VI comes from running the real
:class:`~repro.cache.sync.HotEmbeddingCache` inside a trainer; for pure
trace replay, :func:`replay_trace` with a
:class:`~repro.cache.strategies.DynamicPartialStale`-style oracle window is
provided by :func:`hotness_window_hit_ratio`.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import Counter, OrderedDict
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_positive


class EvictionPolicy(ABC):
    """A fixed-capacity cache over opaque integer keys.

    ``access(key)`` returns ``True`` on a hit; on a miss the policy decides
    whether/what to admit and evict.
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, key: int) -> bool:
        """Record one access; returns True on hit."""
        hit = self._access(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    @abstractmethod
    def _access(self, key: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...


class FIFOCache(EvictionPolicy):
    """Evict the oldest-admitted key."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: OrderedDict[int, None] = OrderedDict()

    def _access(self, key: int) -> bool:
        if key in self._queue:
            return True
        if len(self._queue) >= self.capacity:
            self._queue.popitem(last=False)
        self._queue[key] = None
        return False

    def __len__(self) -> int:
        return len(self._queue)


class LRUCache(EvictionPolicy):
    """Evict the least recently used key."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def _access(self, key: int) -> bool:
        if key in self._order:
            self._order.move_to_end(key)
            return True
        if len(self._order) >= self.capacity:
            self._order.popitem(last=False)
        self._order[key] = None
        return False

    def __len__(self) -> int:
        return len(self._order)


class LFUCache(EvictionPolicy):
    """Evict the least frequently used key (ties: least recent).

    Counts are *historical*: a key evicted and later re-admitted returns
    with its accumulated access count, exactly as the reference
    ``min(members, key=counts)`` implementation behaved.  Eviction is
    O(log n) instead of an O(capacity) scan per miss: members live in
    per-count buckets ordered by last access, and a lazy min-heap of
    occupied counts finds the coldest bucket.  The victim — the earliest
    last-accessed key among the minimum-count members — is identical to
    the scan-based reference (``tests/test_perf_equivalence.py`` checks
    trace-for-trace agreement).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Counter[int] = Counter()
        #: count -> members at that count, ascending last-access order.
        self._buckets: dict[int, OrderedDict[int, None]] = {}
        self._count_heap: list[int] = []
        self._members: set[int] = set()

    def _bucket_add(self, key: int, count: int) -> None:
        bucket = self._buckets.get(count)
        if bucket is None:
            bucket = self._buckets[count] = OrderedDict()
        if not bucket:
            heapq.heappush(self._count_heap, count)
        bucket[key] = None

    def _access(self, key: int) -> bool:
        self._counts[key] += 1
        count = self._counts[key]
        if key in self._members:
            del self._buckets[count - 1][key]
            self._bucket_add(key, count)
            return True
        if len(self._members) >= self.capacity:
            while True:
                coldest = self._buckets.get(self._count_heap[0])
                if coldest:
                    break
                heapq.heappop(self._count_heap)  # stale: bucket drained
            victim, _ = coldest.popitem(last=False)
            self._members.discard(victim)
        self._members.add(key)
        self._bucket_add(key, count)
        return False

    def __len__(self) -> int:
        return len(self._members)


class ImportanceCache(EvictionPolicy):
    """Static cache of the top-``capacity`` most important keys.

    "Importance" is supplied up front (the comparison uses entity degree /
    relation frequency, i.e. structural importance known before training).
    Keys outside the important set are never admitted.
    """

    def __init__(self, capacity: int, importance: dict[int, float]) -> None:
        super().__init__(capacity)
        ranked = sorted(importance.items(), key=lambda kv: (-kv[1], kv[0]))
        self._members = {k for k, _ in ranked[:capacity]}

    def _access(self, key: int) -> bool:
        return key in self._members

    def __len__(self) -> int:
        return len(self._members)


class ClockCache(EvictionPolicy):
    """CLOCK (second-chance FIFO): a one-bit approximation of LRU.

    Keys sit on a circular buffer with a reference bit; the hand skips
    (and clears) referenced keys and evicts the first unreferenced one.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._keys: list[int] = []
        self._referenced: dict[int, bool] = {}
        self._hand = 0

    def _access(self, key: int) -> bool:
        if key in self._referenced:
            self._referenced[key] = True
            return True
        if len(self._keys) < self.capacity:
            self._keys.append(key)
        else:
            # Advance the hand past referenced keys, clearing their bit.
            while self._referenced[self._keys[self._hand]]:
                self._referenced[self._keys[self._hand]] = False
                self._hand = (self._hand + 1) % self.capacity
            victim = self._keys[self._hand]
            del self._referenced[victim]
            self._keys[self._hand] = key
            self._hand = (self._hand + 1) % self.capacity
        self._referenced[key] = False
        return False

    def __len__(self) -> int:
        return len(self._keys)


class TwoQueueCache(EvictionPolicy):
    """2Q: a probationary FIFO in front of a protected LRU.

    First-time keys enter the probationary queue; a hit there promotes to
    the protected LRU segment.  One-hit wonders therefore never displace
    genuinely reused keys — useful against KGE's long random-negative tail.
    """

    def __init__(self, capacity: int, probation_fraction: float = 0.25) -> None:
        super().__init__(capacity)
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError(
                f"probation_fraction must be in (0, 1), got {probation_fraction}"
            )
        self._probation_cap = max(1, int(capacity * probation_fraction))
        self._protected_cap = max(1, capacity - self._probation_cap)
        self._probation: OrderedDict[int, None] = OrderedDict()
        self._protected: OrderedDict[int, None] = OrderedDict()

    def _access(self, key: int) -> bool:
        if key in self._protected:
            self._protected.move_to_end(key)
            return True
        if key in self._probation:
            del self._probation[key]
            if len(self._protected) >= self._protected_cap:
                self._protected.popitem(last=False)
            self._protected[key] = None
            return True
        if len(self._probation) >= self._probation_cap:
            self._probation.popitem(last=False)
        self._probation[key] = None
        return False

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)


class ARCCache(EvictionPolicy):
    """ARC [Megiddo & Modha, FAST 2003]: self-tuning recency/frequency mix.

    Maintains recency (T1) and frequency (T2) segments plus their ghost
    lists (B1/B2); ghost hits adapt the target size ``p`` of T1.  Included
    as the strongest classical adaptive policy to stress the claim that
    HET-KG's prefetch-based cache beats *reactive* policies generally.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._t1: OrderedDict[int, None] = OrderedDict()  # recent, once
        self._t2: OrderedDict[int, None] = OrderedDict()  # frequent
        self._b1: OrderedDict[int, None] = OrderedDict()  # ghosts of t1
        self._b2: OrderedDict[int, None] = OrderedDict()  # ghosts of t2
        self._p = 0.0  # adaptive target size of t1

    def _replace(self, in_b2: bool) -> None:
        if self._t1 and (
            len(self._t1) > self._p or (in_b2 and len(self._t1) == int(self._p))
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        elif self._t2:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        elif self._t1:
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None

    def _access(self, key: int) -> bool:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            return True

        if key in self._b1:
            # Recency ghost hit: grow t1's target.
            self._p = min(
                float(self.capacity),
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))),
            )
            del self._b1[key]
            self._replace(in_b2=False)
            self._t2[key] = None
            return False
        if key in self._b2:
            # Frequency ghost hit: shrink t1's target.
            self._p = max(
                0.0, self._p - max(1.0, len(self._b1) / max(1, len(self._b2)))
            )
            del self._b2[key]
            self._replace(in_b2=True)
            self._t2[key] = None
            return False

        # Cold miss: case IV of the ARC paper.
        if len(self._t1) + len(self._b1) == self.capacity:
            if len(self._t1) < self.capacity:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                self._t1.popitem(last=False)
        elif len(self._t1) + len(self._b1) < self.capacity:
            total = (
                len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            )
            if total >= self.capacity:
                if total == 2 * self.capacity and self._b2:
                    self._b2.popitem(last=False)
                self._replace(in_b2=False)
        self._t1[key] = None
        return False

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)


def replay_trace(policy: EvictionPolicy, trace: Iterable[int]) -> float:
    """Feed every access in ``trace`` through ``policy``; return hit ratio."""
    for key in trace:
        policy.access(int(key))
    return policy.hit_ratio


def hotness_window_hit_ratio(
    batches: Sequence[np.ndarray], capacity: int, window: int
) -> float:
    """Hit ratio of a HET-KG-style windowed hotness cache on a pull trace.

    ``batches`` is a sequence of per-iteration access arrays (typically the
    unique ids each mini-batch pulls).  Models DPS: for each window of
    ``window`` consecutive batches, the cache holds the top-``capacity``
    most frequent keys *of that window* (prefetching makes the window known
    in advance).  This is the oracle-window equivalent of the DPS strategy,
    used for Table VI's like-for-like policy comparison.
    """
    check_positive("capacity", capacity)
    check_positive("window", window)
    hits = 0
    total = 0
    for start in range(0, len(batches), window):
        chunk = [np.asarray(b, dtype=np.int64) for b in batches[start : start + window]]
        flat = np.concatenate(chunk) if chunk else np.empty(0, dtype=np.int64)
        total += len(flat)
        if not len(flat):
            continue
        ids, counts = np.unique(flat, return_counts=True)
        order = np.lexsort((ids, -counts))
        hits += int(np.isin(flat, ids[order[:capacity]]).sum())
    return hits / total if total else 0.0
