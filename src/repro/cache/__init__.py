"""Hotness-aware embedding caches — the paper's core contribution.

* :mod:`repro.cache.core` — the unified policy-pluggable cache engine:
  :class:`CacheCore` + :class:`CapacityLedger` (centralized capacity
  accounting), the :class:`EvictionStrategy` registry, and trace-level
  CPS/DPS/ADAPTIVE membership replay (see ``docs/caching.md``).
* :mod:`repro.cache.table` — the fixed-capacity cache embedding table.
* :mod:`repro.cache.prefetch` — Algorithm 1 (prefetch D iterations of samples).
* :mod:`repro.cache.filtering` — Algorithm 2 (top-k frequency filtering with
  an entity/relation ratio).
* :mod:`repro.cache.strategies` — CPS and DPS hot-table construction.
* :mod:`repro.cache.sync` — bounded-staleness synchronization (Algorithms 3/4,
  worker side).
* :mod:`repro.cache.policies` — FIFO/LRU/LFU/importance baselines (Table VI),
  facades over the unified core.
"""

from repro.cache.core import (
    CacheCore,
    CapacityError,
    CapacityLedger,
    EvictionStrategy,
    HotnessMembershipCache,
    available_policies,
    make_cache,
    register_policy,
    replay_membership_trace,
)
from repro.cache.table import CacheTable, CacheStats
from repro.cache.prefetch import prefetch, PrefetchResult
from repro.cache.filtering import filter_hot_ids, split_slots, HotSet
from repro.cache.strategies import (
    HotEmbeddingStrategy,
    ConstantPartialStale,
    DynamicPartialStale,
)
from repro.cache.sync import HotEmbeddingCache
from repro.cache.policies import (
    EvictionPolicy,
    FIFOCache,
    LRUCache,
    LFUCache,
    ClockCache,
    TwoQueueCache,
    ARCCache,
    ImportanceCache,
    replay_trace,
)

__all__ = [
    "CacheCore",
    "CapacityError",
    "CapacityLedger",
    "EvictionStrategy",
    "HotnessMembershipCache",
    "available_policies",
    "make_cache",
    "register_policy",
    "replay_membership_trace",
    "CacheTable",
    "CacheStats",
    "prefetch",
    "PrefetchResult",
    "filter_hot_ids",
    "split_slots",
    "HotSet",
    "HotEmbeddingStrategy",
    "ConstantPartialStale",
    "DynamicPartialStale",
    "HotEmbeddingCache",
    "EvictionPolicy",
    "FIFOCache",
    "LRUCache",
    "LFUCache",
    "ClockCache",
    "TwoQueueCache",
    "ARCCache",
    "ImportanceCache",
    "replay_trace",
]
