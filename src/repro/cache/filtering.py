"""Algorithm 2 — filtering.

Given the access counts from a prefetch window, pick the top-k ids to
cache.  HET-KG's heterogeneity-aware twist: relations are accessed far more
often than entities (Fig. 2), so a naive frequency top-k would fill the
cache with relations and starve entity caching.  The filter therefore fixes
the *fraction* of cache slots given to entities (25% in the paper's best
configuration, Fig. 8(c)) and fills each side by its own frequency order.

Setting ``entity_ratio=None`` reproduces the paper's HET-KG-N ablation
(frequency-only, heterogeneity-ignorant — Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction, check_positive


@dataclass
class HotSet:
    """The filtered hot-embedding identifiers."""

    entities: np.ndarray  # hot entity ids, hottest first
    relations: np.ndarray  # hot relation ids, hottest first

    @property
    def size(self) -> int:
        return len(self.entities) + len(self.relations)


def _as_arrays(counts: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """(ids, counts) column arrays of a count dict (insertion order)."""
    n = len(counts)
    ids = np.fromiter(counts.keys(), dtype=np.int64, count=n)
    vals = np.fromiter(counts.values(), dtype=np.int64, count=n)
    return ids, vals


def _top_ids(counts: dict[int, int], k: int) -> np.ndarray:
    """Ids of the ``k`` highest counts, descending (ties broken by id for
    determinism).

    Vectorized: one ``np.lexsort`` on ``(-count, id)`` keys replaces the
    Python ``sorted(counts.items())`` pass, preserving the exact
    deterministic tie-break order (lexsort's last key is primary).
    """
    if k <= 0 or not counts:
        return np.empty(0, dtype=np.int64)
    ids, vals = _as_arrays(counts)
    order = np.lexsort((ids, -vals))
    return ids[order[:k]]


def split_slots(capacity: int, entity_ratio: float) -> tuple[int, int]:
    """Divide ``capacity`` cache slots between entities and relations.

    The one slot-split rule shared by training
    (:func:`filter_hot_ids`) and serving
    (:meth:`repro.serving.ServingCache.dynamic`): entities get
    ``round(capacity * entity_ratio)`` slots and relations the remainder,
    so the sides always sum to **exactly** ``capacity`` — at
    ``capacity=1`` one side gets the single slot and the other gets zero.
    (The pre-core serving split applied ``max(1, ...)`` to both sides
    independently and allocated two slots to a capacity-1 cache.)
    """
    check_positive("capacity", capacity)
    check_fraction("entity_ratio", entity_ratio)
    entity_slots = int(round(capacity * entity_ratio))
    return entity_slots, capacity - entity_slots


def filter_hot_ids(
    entity_counts: dict[int, int],
    relation_counts: dict[int, int],
    capacity: int,
    entity_ratio: float | None = 0.25,
) -> HotSet:
    """Run Algorithm 2: pick the top-``capacity`` hot ids.

    Parameters
    ----------
    entity_counts, relation_counts:
        Access frequencies from :func:`repro.cache.prefetch.prefetch`.
    capacity:
        Total cache slots ``k`` (entities + relations combined).
    entity_ratio:
        Fraction of slots reserved for entities (the paper fixes 25%
        entities / 75% relations).  ``None`` disables the heterogeneity
        fix and ranks all ids purely by frequency (HET-KG-N).
    """
    check_positive("capacity", capacity)
    if entity_ratio is None:
        # Highest count first; deterministic tie-break on (kind, id) —
        # one lexsort over the merged (count, kind, id) columns.
        e_ids, e_vals = _as_arrays(entity_counts)
        r_ids, r_vals = _as_arrays(relation_counts)
        ids = np.concatenate([e_ids, r_ids])
        vals = np.concatenate([e_vals, r_vals])
        kinds = np.concatenate(
            [
                np.zeros(len(e_ids), dtype=np.int64),
                np.ones(len(r_ids), dtype=np.int64),
            ]
        )
        top = np.lexsort((ids, kinds, -vals))[:capacity]
        top_kinds = kinds[top]
        return HotSet(
            entities=ids[top[top_kinds == 0]],
            relations=ids[top[top_kinds == 1]],
        )

    entity_slots, relation_slots = split_slots(capacity, entity_ratio)
    entities = _top_ids(entity_counts, entity_slots)
    relations = _top_ids(relation_counts, relation_slots)

    # Reassign slots one side could not fill (small graphs may have fewer
    # distinct relations than reserved slots).
    spare = (entity_slots - len(entities)) + (relation_slots - len(relations))
    if spare > 0:
        if len(relations) < relation_slots:
            extra = _top_ids(entity_counts, entity_slots + spare)
            entities = extra
        elif len(entities) < entity_slots:
            extra = _top_ids(relation_counts, relation_slots + spare)
            relations = extra
    return HotSet(entities=entities, relations=relations)
