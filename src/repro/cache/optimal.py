"""Belady's MIN: the clairvoyant-optimal replacement policy.

Given the *whole* future access sequence, evicting the key whose next use
is farthest away minimises misses among all replacement policies.  It is
not implementable online, but it is the natural upper bound to show next
to Table VI: HET-KG's prefetch window is a bounded-lookahead approximation
of exactly this oracle, so ``FIFO < LRU < ... < HET-KG <= Belady`` is the
expected ordering.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Sequence

from repro.utils.validation import check_positive

#: Sentinel "next use" for keys never used again.
_NEVER = float("inf")


def belady_hit_ratio(trace: Sequence[int], capacity: int) -> float:
    """Hit ratio of Belady's optimal policy on ``trace``.

    Implemented with a precomputed next-use index and a lazy max-heap of
    (next_use, key) candidates, giving O(n log n) replay.
    """
    check_positive("capacity", capacity)
    trace = [int(k) for k in trace]
    n = len(trace)
    if n == 0:
        return 0.0

    # next_use[i] = index of the next occurrence of trace[i] after i.
    next_use = [0] * n
    last_seen: dict[int, float] = defaultdict(lambda: _NEVER)
    for i in range(n - 1, -1, -1):
        next_use[i] = last_seen[trace[i]]
        last_seen[trace[i]] = i

    cached: dict[int, float] = {}  # key -> its current next-use time
    heap: list[tuple[float, int]] = []  # lazy max-heap via negation
    hits = 0
    for i, key in enumerate(trace):
        upcoming = next_use[i]
        if key in cached:
            hits += 1
            cached[key] = upcoming
            heapq.heappush(heap, (-upcoming, key))
            continue
        if len(cached) >= capacity:
            # Evict the cached key with the farthest next use; skip stale
            # heap entries (keys already evicted or with updated times).
            while heap:
                neg_time, victim = heapq.heappop(heap)
                if cached.get(victim) == -neg_time:
                    del cached[victim]
                    break
            else:
                # Heap exhausted by staleness: fall back to direct scan.
                victim = max(cached, key=lambda k: cached[k])
                del cached[victim]
        if upcoming != _NEVER:
            cached[key] = upcoming
            heapq.heappush(heap, (-upcoming, key))
        else:
            # Never used again: caching it can only waste the slot.
            pass
    return hits / n
