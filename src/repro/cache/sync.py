"""Worker-side hot-embedding cache with bounded-staleness synchronization.

Implements the worker half of Algorithms 3/4: a pair of cache tables (one
for entities, one for relations) that

* serve reads locally on hits and pull misses from the parameter server,
* absorb the worker's own gradient updates locally (so a worker always
  sees its own writes), while all gradients are *also* pushed to the PS,
* refresh every cached row from the PS every ``sync_period`` (``P``)
  iterations, which bounds how stale a cached row can be with respect to
  other workers' updates.

All PS traffic is returned as :class:`~repro.ps.network.CommRecord` so the
worker can charge its simulated clock.
"""

from __future__ import annotations

import numpy as np

from repro.cache.filtering import HotSet
from repro.cache.table import CacheStats, CacheTable
from repro.obs.tracer import NULL_SCOPE
from repro.optim.adagrad import SparseAdagrad
from repro.ps.server import ParameterServer
from repro.utils.validation import check_positive


class HotEmbeddingCache:
    """Per-worker hot-embedding tables with periodic synchronization.

    Parameters
    ----------
    server:
        The shared parameter server.
    machine:
        The machine this cache lives on (for local/remote traffic split).
    entity_capacity, relation_capacity:
        Row budgets per table.  The CPS/DPS strategies guarantee the hot
        set's *combined* size stays within the configured total capacity,
        so when the entity ratio is fixed these are the split budgets, and
        when it is disabled (HET-KG-N) both can simply be the total.
    entity_width, relation_width:
        Row widths (from the model geometry).
    sync_period:
        ``P`` — refresh all cached rows from the PS every this many
        iterations.  ``P = 1`` means refresh before every batch (fully
        consistent); larger values trade staleness for communication.
    local_lr:
        Learning rate of the local AdaGrad applied to cached rows (matches
        the server's, so a lone worker behaves like no cache at all).
    """

    def __init__(
        self,
        server: ParameterServer,
        machine: int,
        entity_capacity: int,
        relation_capacity: int,
        entity_width: int,
        relation_width: int,
        sync_period: int,
        local_lr: float,
    ) -> None:
        check_positive("sync_period", sync_period)
        self.server = server
        self.machine = machine
        self.sync_period = sync_period
        self.local_lr = local_lr
        self._tables = {
            "entity": CacheTable(entity_capacity, entity_width),
            "relation": CacheTable(relation_capacity, relation_width),
        }
        self._local_optimizers = {
            "entity": SparseAdagrad(local_lr),
            "relation": SparseAdagrad(local_lr),
        }
        self._iterations_since_sync = 0
        #: Observability scope (bound to the owning worker's clock by the
        #: trainer); defaults to the zero-cost null scope.
        self.trace = NULL_SCOPE
        #: Graceful-degradation accounting: how many periodic syncs could
        #: not reach the PS (and were skipped, serving rows staler than the
        #: bound ``P``), and the worst staleness overrun in iterations.
        self.staleness_overruns = 0
        self.max_staleness_overrun = 0

    # -------------------------------------------------------------- install

    def install(self, hot: HotSet):
        """(Re)build both tables from a new hot set.

        Only ids *entering* the table are pulled from the PS; ids retained
        from the previous membership keep their current rows (the periodic
        ``P``-synchronization bounds their staleness regardless).  This is
        what makes DPS affordable: consecutive windows share most of their
        hot set, so a rebuild moves only the churn, not the whole cache.

        Returns the pull's CommRecord.
        """
        from repro.ps.network import CommRecord

        comm = CommRecord()
        with self.trace.span("cache.install", "cache") as span:
            installed = retained_total = 0
            for kind, ids in (("entity", hot.entities), ("relation", hot.relations)):
                table = self._tables[kind]
                ids = np.asarray(ids, dtype=np.int64)[: table.capacity]
                rows = np.zeros((len(ids), table.width))
                if len(ids):
                    # One vectorized membership + slot pass resolves both
                    # the retained mask and where to copy retained rows from.
                    retained, slots = table.lookup(ids)
                    if retained.any():
                        rows[retained] = table.rows_view()[slots[retained]]
                    fresh_ids = ids[~retained]
                    if len(fresh_ids):
                        pulled, c = self.server.pull(kind, fresh_ids, self.machine)
                        comm.merge(c)
                        rows[~retained] = pulled
                    retained_total += int(retained.sum())
                table.install(ids, rows)
                installed += len(ids)
                # Fresh membership -> fresh local optimizer state.
                self._local_optimizers[kind] = SparseAdagrad(self.local_lr)
            self._iterations_since_sync = 0
            span.set(
                rows=installed,
                retained=retained_total,
                pulled=installed - retained_total,
                bytes=comm.total_bytes,
            )
        self.trace.count("cache.installs")
        return comm

    # ----------------------------------------------------------------- reads

    def fetch(self, kind: str, ids: np.ndarray):
        """Rows for ``ids`` in order: cache hits locally, misses from the PS.

        Returns ``(rows, comm)``.
        """
        from repro.ps.network import CommRecord

        table = self._tables[kind]
        ids = np.asarray(ids, dtype=np.int64)
        with self.trace.span("cache.fetch", "cache", kind=kind) as span:
            hit_mask, hit_ids, miss_ids = table.partition_hits(ids)
            rows = np.empty((len(ids), table.width), dtype=np.float64)
            comm = CommRecord()
            if len(hit_ids):
                rows[hit_mask] = table.get(hit_ids)
            if len(miss_ids):
                pulled, comm_pull = self.server.pull(kind, miss_ids, self.machine)
                comm.merge(comm_pull)
                rows[~hit_mask] = pulled
            span.set(hits=len(hit_ids), misses=len(miss_ids), bytes=comm.total_bytes)
        return rows, comm

    # ---------------------------------------------------------------- writes

    def apply_local_gradients(
        self, kind: str, ids: np.ndarray, grads: np.ndarray
    ) -> None:
        """Apply the worker's own gradients to cached rows (non-cached ids
        are ignored; the PS push covers them).

        Uses :meth:`CacheTable.lookup`, so when ``ids`` is the same array
        the step's fetch already partitioned (the worker passes the batch's
        unique-id array through unchanged), the membership scan is answered
        from the table's memo instead of being repeated.
        """
        table = self._tables[kind]
        ids = np.asarray(ids, dtype=np.int64)
        mask, all_slots = table.lookup(ids)
        if not mask.any():
            return
        slots = all_slots[mask]
        # rows_view() hands out the whole backing array; the occupied-prefix
        # invariant guarantees live slots never index the zeroed tail.
        assert int(slots.max()) < table.occupied, (
            f"slot {int(slots.max())} outside live membership "
            f"({table.occupied} rows)"
        )
        # ``ids`` is the batch's sorted-unique id array, so the surviving
        # slots are distinct by construction — skip the coalescing scan.
        self._local_optimizers[kind].update(
            kind, table.rows_view(), slots, grads[mask], assume_unique=True
        )

    # ------------------------------------------------------------------ sync

    def tick(self):
        """Advance one iteration; every ``P``-th call refreshes all cached
        rows from the PS.  Returns the refresh CommRecord, or ``None``."""
        self._iterations_since_sync += 1
        if self._iterations_since_sync < self.sync_period:
            return None
        return self.force_sync()

    def force_sync(self):
        """Pull the latest version of every cached row from the PS now.

        When the server is wrapped in a fault-injecting RPC channel (it
        exposes ``try_pull``), a refresh whose retry budget exhausts during
        a PS outage *degrades gracefully*: the affected table keeps serving
        its current (stale) rows past the staleness bound ``P``, the
        overrun is recorded, and the sync counter is **not** reset so the
        next iteration retries immediately.
        """
        from repro.ps.network import CommRecord

        comm = CommRecord()
        degradable_pull = getattr(self.server, "try_pull", None)
        with self.trace.span("cache.sync", "cache") as span:
            refreshed = 0
            degraded = False
            for kind, table in self._tables.items():
                ids = table.ids
                if not len(ids):
                    continue
                if degradable_pull is not None:
                    rows, c = degradable_pull(kind, ids)
                else:
                    rows, c = self.server.pull(kind, ids, self.machine)
                comm.merge(c)
                if rows is None:
                    degraded = True
                    continue
                table.set(ids, rows)
                refreshed += len(ids)
            if degraded:
                overrun = max(
                    1, self._iterations_since_sync - self.sync_period + 1
                )
                self.staleness_overruns += 1
                self.max_staleness_overrun = max(
                    self.max_staleness_overrun, overrun
                )
                self.trace.count("cache.stale_overruns")
                span.set(
                    rows=refreshed,
                    bytes=comm.total_bytes,
                    degraded=True,
                    overrun=overrun,
                )
            else:
                self._iterations_since_sync = 0
                span.set(rows=refreshed, bytes=comm.total_bytes)
        self.trace.count("cache.syncs")
        return comm

    # ------------------------------------------------------------- invalidate

    def invalidate(self) -> None:
        """Drop every cached row and all local optimizer state.

        This is what a machine crash does to its worker: the hot tables
        are derived state and vanish with the process.  The strategy's
        setup + :meth:`install` rebuild them afterwards (paying the full
        pull cost again).  Hit/miss counters survive — they describe the
        whole run, crashes included.
        """
        for kind, table in self._tables.items():
            table.install(
                np.empty(0, dtype=np.int64), np.zeros((0, table.width))
            )
            self._local_optimizers[kind] = SparseAdagrad(self.local_lr)
        self._iterations_since_sync = 0

    def invalidate_ids(self, kind: str, ids: np.ndarray) -> int:
        """Evict specific rows from one table (streaming invalidation).

        Online ingestion (:mod:`repro.stream`) deletes triples and rewires
        entities; cached rows for the affected ids would serve embeddings
        for graph structure that no longer exists, so they are dropped.
        Surviving rows keep their values, but the local optimizer state is
        reset (its accumulators are slot-aligned to the old membership and
        cannot be safely permuted).  Returns the number of rows evicted.
        """
        table = self._tables[kind]
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0 or table.occupied == 0:
            return 0
        current = table.ids
        keep_mask = ~np.isin(current, ids)
        evicted = int((~keep_mask).sum())
        if evicted == 0:
            return 0
        kept = current[keep_mask]
        _, slots = table.lookup(kept)
        rows = table.rows_view()[slots].copy()
        table.install(kept, rows)
        self._local_optimizers[kind] = SparseAdagrad(self.local_lr)
        self.trace.count("cache.invalidations")
        return evicted

    # ------------------------------------------------------------------ stats

    def stats(self, kind: str) -> CacheStats:
        return self._tables[kind].stats

    def combined_stats(self) -> CacheStats:
        total = CacheStats()
        for table in self._tables.values():
            total.merge(table.stats)
        return total

    def cached_ids(self, kind: str) -> np.ndarray:
        return self._tables[kind].ids
