"""Plain sparse SGD — the baseline optimizer the paper compares AdaGrad
against ("based on past experience, [AdaGrad] can get embeddings of greater
quality than SGD")."""

from __future__ import annotations

import numpy as np

from repro.optim.base import SparseOptimizer, coalesce


class SparseSGD(SparseOptimizer):
    """Stateless sparse gradient descent."""

    def update(
        self,
        table_name: str,
        table: np.ndarray,
        row_ids: np.ndarray,
        grads: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        if len(row_ids) == 0:
            return
        if assume_unique:
            ids, g = row_ids, grads
        else:
            ids, g = coalesce(row_ids, grads)
        table[ids] -= self.lr * g

    def state_size(self) -> int:
        return 0
