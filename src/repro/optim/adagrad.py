"""Sparse AdaGrad [Duchi et al., JMLR 2011].

The paper's server-side optimizer (Algorithm 4): per-element accumulated
squared gradients divide the learning rate, so frequently-updated hot
embeddings take smaller steps.  State is allocated lazily per table, which
matches the paper's note that AdaGrad "needs to save the historical
gradients of each parameter separately, which increases the memory usage".
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import SparseOptimizer, coalesce


class SparseAdagrad(SparseOptimizer):
    """AdaGrad over sparse rows of named tables.

    Parameters
    ----------
    lr:
        Base learning rate ``eta``.
    eps:
        Numerical floor inside the square root.
    """

    def __init__(self, lr: float, eps: float = 1e-10) -> None:
        super().__init__(lr)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        self._accumulators: dict[str, np.ndarray] = {}

    def _accumulator_for(self, table_name: str, table: np.ndarray) -> np.ndarray:
        acc = self._accumulators.get(table_name)
        if acc is None or acc.shape != table.shape:
            grown = np.zeros_like(table)
            if (
                acc is not None
                and acc.ndim == table.ndim == 2
                and acc.shape[1] == table.shape[1]
                and acc.shape[0] < table.shape[0]
            ):
                # The table gained rows (online ingestion growing the
                # vocabulary): keep the historical gradients of the
                # surviving rows — resetting them would silently restart
                # every existing embedding's learning-rate schedule.
                grown[: acc.shape[0]] = acc
            acc = grown
            self._accumulators[table_name] = acc
        return acc

    def update(
        self,
        table_name: str,
        table: np.ndarray,
        row_ids: np.ndarray,
        grads: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        if len(row_ids) == 0:
            return
        if assume_unique:
            ids, g = row_ids, grads
        else:
            ids, g = coalesce(row_ids, grads)
        acc = self._accumulator_for(table_name, table)
        acc[ids] += g * g
        table[ids] -= self.lr * g / np.sqrt(acc[ids] + self.eps)

    def state_size(self) -> int:
        return int(sum(acc.size for acc in self._accumulators.values()))

    def reset(self) -> None:
        """Drop all accumulated state (fresh training run)."""
        self._accumulators.clear()
