"""Sparse optimizer interface.

An optimizer updates selected *rows* of an embedding table in place given
row gradients — the access pattern of PS-based KGE training, where each
mini-batch touches a tiny fraction of the table.  Optimizer state (e.g.
AdaGrad accumulators) is keyed per table so one optimizer instance can
serve both the entity and relation tables of a server shard.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class SparseOptimizer(ABC):
    """Applies sparse row updates to named embedding tables."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    @abstractmethod
    def update(
        self,
        table_name: str,
        table: np.ndarray,
        row_ids: np.ndarray,
        grads: np.ndarray,
    ) -> None:
        """Apply one gradient step to ``table[row_ids]`` in place.

        ``row_ids`` may contain duplicates (the same embedding touched by
        several triples in a batch); implementations must accumulate those
        contributions rather than letting the last write win.
        """

    @abstractmethod
    def state_size(self) -> int:
        """Total number of state floats held (for memory accounting)."""


def coalesce(
    row_ids: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows that target the same id.

    Returns ``(unique_ids, summed_grads)``.  This mirrors what dense
    frameworks do for sparse gradients and is required for correctness with
    fancy-indexed in-place updates (``table[ids] -= g`` drops duplicate
    contributions).
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    unique, inverse = np.unique(row_ids, return_inverse=True)
    summed = np.zeros((len(unique), grads.shape[1]), dtype=grads.dtype)
    np.add.at(summed, inverse, grads)
    return unique, summed
