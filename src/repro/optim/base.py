"""Sparse optimizer interface.

An optimizer updates selected *rows* of an embedding table in place given
row gradients — the access pattern of PS-based KGE training, where each
mini-batch touches a tiny fraction of the table.  Optimizer state (e.g.
AdaGrad accumulators) is keyed per table so one optimizer instance can
serve both the entity and relation tables of a server shard.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.kernels import scatter_add_rows


class SparseOptimizer(ABC):
    """Applies sparse row updates to named embedding tables."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    @abstractmethod
    def update(
        self,
        table_name: str,
        table: np.ndarray,
        row_ids: np.ndarray,
        grads: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        """Apply one gradient step to ``table[row_ids]`` in place.

        ``row_ids`` may contain duplicates (the same embedding touched by
        several triples in a batch); implementations must accumulate those
        contributions rather than letting the last write win.  Callers that
        *guarantee* distinct ids (e.g. the cache writing back per-unique-id
        gradients to its slots) may pass ``assume_unique=True`` to skip the
        coalescing scan entirely; per-row arithmetic is unchanged, so the
        update is bit-identical to the coalesced path.
        """

    @abstractmethod
    def state_size(self) -> int:
        """Total number of state floats held (for memory accounting)."""


def coalesce(
    row_ids: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows that target the same id.

    Returns ``(unique_ids, summed_grads)``.  This mirrors what dense
    frameworks do for sparse gradients and is required for correctness with
    fancy-indexed in-place updates (``table[ids] -= g`` drops duplicate
    contributions).

    Fast path: the training loop pushes gradients already coalesced per
    sorted-unique id (:func:`repro.core.compute.compute_batch_gradients`
    returns them that way), so a strictly-increasing id array is passed
    through untouched — no ``np.unique``, no scatter.  The general path
    sums duplicates with one :func:`~repro.utils.kernels.scatter_add_rows`
    (input-order ``np.bincount``), matching the former ``np.add.at``
    accumulation bit for bit.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    if len(row_ids) < 2 or bool(np.all(row_ids[:-1] < row_ids[1:])):
        return row_ids, np.asarray(grads)
    unique, inverse = np.unique(row_ids, return_inverse=True)
    return unique, scatter_add_rows(inverse, grads, len(unique))
