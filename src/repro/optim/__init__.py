"""Sparse optimizers applied to embedding tables row-by-row."""

from repro.optim.base import SparseOptimizer
from repro.optim.adagrad import SparseAdagrad
from repro.optim.sgd import SparseSGD

__all__ = ["SparseOptimizer", "SparseAdagrad", "SparseSGD"]


def get_optimizer(name: str, lr: float, **kwargs) -> SparseOptimizer:
    """Instantiate an optimizer by name (``"adagrad"`` or ``"sgd"``)."""
    if name == "adagrad":
        return SparseAdagrad(lr, **kwargs)
    if name == "sgd":
        return SparseSGD(lr, **kwargs)
    raise KeyError(f"unknown optimizer {name!r}; available: ['adagrad', 'sgd']")
