"""The deterministic chaos runtime resolving a :class:`FaultPlan`.

Determinism contract
--------------------
Each machine owns an independent RNG stream seeded from
``(plan.seed, machine)``, and a stream is consulted **only** when a fault
window with non-zero probability is active for that machine.  Because the
simulation schedules workers round-robin, the sequence of questions each
machine asks its stream is a pure function of (plan, seed, config), so two
runs with the same inputs inject bit-identical faults — and a plan with no
active windows never draws at all, preserving the no-op invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import FaultPlan
from repro.utils.rng import worker_stream


@dataclass
class FaultStats:
    """Cumulative fault/recovery counters for one run (all machines)."""

    drops: int = 0
    delays: int = 0
    delay_seconds: float = 0.0
    outage_hits: int = 0
    retries: int = 0
    forced_pulls: int = 0
    lost_pushes: int = 0
    stale_overruns: int = 0
    crashes: int = 0
    recoveries: int = 0
    recovery_seconds: float = 0.0
    retry_wait_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "drops": self.drops,
            "delays": self.delays,
            "delay_seconds": self.delay_seconds,
            "outage_hits": self.outage_hits,
            "retries": self.retries,
            "forced_pulls": self.forced_pulls,
            "lost_pushes": self.lost_pushes,
            "stale_overruns": self.stale_overruns,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "recovery_seconds": self.recovery_seconds,
            "retry_wait_seconds": self.retry_wait_seconds,
        }

    def merge(self, other: "FaultStats") -> None:
        for name, value in other.as_dict().items():
            setattr(self, name, getattr(self, name) + value)


class FaultInjector:
    """Answers the simulation's "does this fault fire?" questions.

    One injector serves the whole cluster; per-machine streams keep each
    machine's fault sequence independent of its peers' draw counts (the
    same isolation discipline :func:`repro.utils.rng.spawn_rngs` gives the
    samplers).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._streams: dict[int, np.random.Generator] = {}
        self._pending_crashes: dict[int, set[int]] = {}
        for event in plan.crashes:
            self._pending_crashes.setdefault(event.machine, set()).add(event.iteration)

    # ----------------------------------------------------------------- streams

    def stream(self, machine: int) -> np.random.Generator:
        """The machine's private fault stream (created lazily)."""
        rng = self._streams.get(machine)
        if rng is None:
            rng = worker_stream(self.plan.seed, machine)
            self._streams[machine] = rng
        return rng

    # ------------------------------------------------------------------ faults

    def drop_probability(self, machine: int, iteration: int) -> float:
        """Effective drop probability (max over active windows)."""
        prob = 0.0
        for w in self.plan.drops:
            if w.probability > prob and w.applies(machine, iteration):
                prob = w.probability
        return prob

    def should_drop(self, machine: int, iteration: int) -> bool:
        """Decide whether one message attempt drops (draws iff p > 0)."""
        prob = self.drop_probability(machine, iteration)
        if prob <= 0.0:
            return False
        dropped = bool(self.stream(machine).random() < prob)
        if dropped:
            self.stats.drops += 1
        return dropped

    def delay_seconds(self, machine: int, iteration: int) -> float:
        """Extra in-flight latency injected into one successful attempt."""
        total = 0.0
        for w in self.plan.delays:
            if w.probability <= 0.0 or w.delay <= 0.0:
                continue
            if not w.applies(machine, iteration):
                continue
            if self.stream(machine).random() < w.probability:
                total += w.delay
        if total > 0.0:
            self.stats.delays += 1
            self.stats.delay_seconds += total
        return total

    def straggler_factor(self, machine: int, iteration: int) -> float:
        """Compute-slowdown multiplier (1.0 when no window is active)."""
        factor = 1.0
        for w in self.plan.stragglers:
            if w.applies(machine, iteration):
                factor *= w.slowdown
        return factor

    def ps_unavailable(self, shards: np.ndarray | list[int], iteration: int) -> bool:
        """True when any touched PS shard is inside an outage window."""
        if not self.plan.outages:
            return False
        for shard in shards:
            for w in self.plan.outages:
                if w.applies(int(shard), iteration):
                    self.stats.outage_hits += 1
                    return True
        return False

    def crash_due(self, machine: int, iteration: int) -> bool:
        """True exactly once per scheduled :class:`CrashEvent`."""
        pending = self._pending_crashes.get(machine)
        if pending and iteration in pending:
            pending.discard(iteration)
            self.stats.crashes += 1
            return True
        return False

    # ------------------------------------------------------------------ jitter

    def backoff_jitter(self, machine: int) -> float:
        """A uniform [0, 1) draw for retry-backoff jitter (deterministic)."""
        return float(self.stream(machine).random())
