"""Retrying RPC channel between one machine and the parameter server.

:class:`FaultyPSChannel` is a drop-in facade over
:class:`~repro.ps.server.ParameterServer` with the same ``pull``/``push``
signature, so the trainer can splice it between a worker (and its
:class:`~repro.cache.sync.HotEmbeddingCache`) and the PS without either
side changing.  Per attempt it consults the
:class:`~repro.faults.injector.FaultInjector`:

* **drop** — the attempt's bytes are metered (the wire carried them, and
  they are additionally annotated as ``retransmit_bytes``), the caller's
  clock is charged the RPC ``timeout`` plus an exponential backoff with
  deterministic jitter, and the operation retries;
* **PS-shard outage** — same failure path, but deterministic for every
  attempt inside the outage window;
* **delay** — a successful attempt charges extra in-flight seconds.

All waiting time lands on the machine's :class:`~repro.utils.simclock.SimClock`
under ``"communication"`` (inside an ``rpc.retry_wait`` span), so fault
overhead shows up directly in the Fig. 7-style compute/communication
breakdown; all failed-attempt traffic is merged into the returned
:class:`~repro.ps.network.CommRecord`, which the worker charges into the
shared :class:`~repro.ps.network.NetworkModel` exactly once, as always.

Retry-budget exhaustion degrades rather than deadlocks:

* ``pull`` (training needs the rows) **forces through** — modelling a
  failover read against a replica — and counts a ``forced_pull``;
* ``try_pull`` (used by the cache's periodic synchronization) **gives up**
  and returns ``rows=None`` so the cache can serve stale hot rows past
  the staleness bound ``P`` and record the overrun;
* ``push`` **drops the gradient** (the PS never sees it; the worker's own
  cache already absorbed it locally) and counts a ``lost_push``.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import FaultInjector
from repro.obs.tracer import NULL_SCOPE
from repro.ps.network import CommRecord
from repro.ps.server import ParameterServer
from repro.utils.simclock import SimClock


class RetriesExhausted(RuntimeError):
    """An RPC burned its whole retry budget without reaching the PS."""

    def __init__(self, op: str, kind: str, attempts: int) -> None:
        super().__init__(
            f"{op}({kind!r}) failed after {attempts} attempts (retry budget)"
        )
        self.op = op
        self.kind = kind
        self.attempts = attempts


class FaultyPSChannel:
    """Per-machine retrying RPC shim in front of the parameter server.

    Parameters
    ----------
    server:
        The real (shared) parameter server.
    machine:
        The machine this channel belongs to (its faults, its clock).
    injector:
        The cluster-wide deterministic fault source.
    clock:
        The machine's simulated clock; timeouts/backoffs/delays are
        charged here under ``"communication"``.
    telemetry:
        Optional :class:`~repro.core.telemetry.Telemetry`; retry and
        degradation events are recorded as
        :class:`~repro.core.telemetry.FaultEvent` rows.
    """

    def __init__(
        self,
        server: ParameterServer,
        machine: int,
        injector: FaultInjector,
        clock: SimClock,
        telemetry=None,
    ) -> None:
        self.server = server
        self.machine = machine
        self.injector = injector
        self.policy = injector.plan.retry
        self.clock = clock
        self.telemetry = telemetry
        #: Current worker-local step index (1-based), updated by the worker
        #: before each step so fault windows line up with training progress.
        self.iteration = 0
        #: Observability scope, bound by the trainer when tracing is on.
        self.trace = NULL_SCOPE

    # ------------------------------------------------------------------- pulls

    def pull(self, kind: str, ids: np.ndarray, machine: int | None = None):
        """Fetch rows, retrying through faults; always returns.

        After the retry budget is exhausted the read forces through
        (failover semantics) so training can continue; the event is
        counted as ``forced_pulls``.
        """
        rows, comm, ok = self._pull_attempts(kind, ids)
        if not ok:
            self.injector.stats.forced_pulls += 1
            self.trace.count("rpc.forced_pulls")
            self._event("forced_pull", f"{kind} x{len(np.atleast_1d(ids))}")
            # Failover read: pay one more full timeout, then the real pull.
            self._wait(self.policy.timeout)
            rows, final = self.server.pull(kind, ids, self.machine)
            comm.merge(final)
        return rows, comm

    def try_pull(self, kind: str, ids: np.ndarray):
        """Fetch rows, retrying through faults; may give up.

        Returns ``(rows, comm)`` with ``rows=None`` when the retry budget
        was exhausted — the degradable path used by the cache's periodic
        synchronization, which can safely serve stale rows instead.
        """
        rows, comm, ok = self._pull_attempts(kind, ids)
        if not ok:
            self.injector.stats.stale_overruns += 1
            self.trace.count("rpc.degraded_reads")
            self._event("stale_overrun", f"{kind} x{len(np.atleast_1d(ids))}")
        return (rows if ok else None), comm

    # ------------------------------------------------------------------ pushes

    def push(self, kind: str, ids: np.ndarray, grads: np.ndarray, machine: int | None = None):
        """Send gradients, retrying through faults; may drop the update.

        A push whose retry budget exhausts is *lost*: the PS never applies
        the gradient (asynchronous SGD tolerates it; the worker's local
        cache copy already absorbed the update), counted as ``lost_pushes``.
        """
        comm = CommRecord()
        attempt = 0
        while attempt < self.policy.max_attempts:
            attempt += 1
            if self._attempt_fails(kind, ids):
                self._record_failure(comm, kind, ids, attempt)
                continue
            final = self.server.push(kind, ids, grads, self.machine)
            self._apply_delay()
            comm.merge(final)
            return comm
        self.injector.stats.lost_pushes += 1
        self.trace.count("rpc.lost_pushes")
        self._event("lost_push", f"{kind} x{len(np.atleast_1d(ids))}")
        return comm

    # ---------------------------------------------------------------- internal

    def _pull_attempts(self, kind: str, ids: np.ndarray):
        """Shared retry loop for reads: ``(rows, comm, succeeded)``."""
        comm = CommRecord()
        attempt = 0
        while attempt < self.policy.max_attempts:
            attempt += 1
            if self._attempt_fails(kind, ids):
                self._record_failure(comm, kind, ids, attempt)
                continue
            rows, final = self.server.pull(kind, ids, self.machine)
            self._apply_delay()
            comm.merge(final)
            return rows, comm, True
        return None, comm, False

    def _attempt_fails(self, kind: str, ids: np.ndarray) -> bool:
        """One attempt's fate: outage (deterministic) or drop (seeded)."""
        injector = self.injector
        if injector.plan.outages and injector.ps_unavailable(
            self.server.touched_shards(kind, ids), self.iteration
        ):
            return True
        return injector.should_drop(self.machine, self.iteration)

    def _record_failure(
        self, comm: CommRecord, kind: str, ids: np.ndarray, attempt: int
    ) -> None:
        """Meter a failed attempt's wasted wire traffic and wait it out."""
        wasted = self.server.meter(kind, ids, self.machine)
        wasted.retransmit_bytes = wasted.total_bytes
        comm.merge(wasted)
        self.injector.stats.retries += 1
        self.trace.count("rpc.retries")
        self._event("retry", f"{kind} attempt {attempt}")
        backoff = self.policy.backoff(attempt)
        if backoff > 0.0 and self.policy.backoff_jitter > 0.0:
            backoff *= 1.0 + self.policy.backoff_jitter * self.injector.backoff_jitter(
                self.machine
            )
        self._wait(self.policy.timeout + backoff)

    def _wait(self, seconds: float) -> None:
        """Charge timeout/backoff time to the machine's clock."""
        if seconds <= 0.0:
            return
        self.injector.stats.retry_wait_seconds += seconds
        with self.trace.span("rpc.retry_wait", "communication") as span:
            self.clock.advance(seconds, "communication")
            span.set(seconds=seconds)

    def _apply_delay(self) -> None:
        """Inject scheduled in-flight latency into a successful attempt."""
        plan = self.injector.plan
        if not plan.delays:
            return
        extra = self.injector.delay_seconds(self.machine, self.iteration)
        if extra > 0.0:
            self.trace.count("rpc.delays")
            with self.trace.span("rpc.injected_delay", "communication") as span:
                self.clock.advance(extra, "communication")
                span.set(seconds=extra)

    def _event(self, kind: str, detail: str) -> None:
        if self.telemetry is not None:
            from repro.core.telemetry import FaultEvent

            self.telemetry.add_event(
                FaultEvent(
                    worker=self.machine,
                    iteration=self.iteration,
                    kind=kind,
                    sim_time=self.clock.elapsed,
                    detail=detail,
                )
            )
