"""Deterministic fault injection and recovery for the simulated cluster.

The paper's testbed — four co-located PS machines on 1 Gbps Ethernet — is
exactly the environment where transient link faults, stragglers, and
machine crashes dominate multi-hour Freebase-scale runs.  This package
makes those failures *first-class, reproducible simulation inputs*:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a declarative, seeded
  schedule of drop/delay windows, straggler slowdowns, worker crashes and
  PS-shard outages (plus the :class:`RetryPolicy` governing recovery).
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the deterministic
  runtime that answers "does this message drop?" from per-machine RNG
  streams, so two runs with the same seed and plan are bit-identical.
* :mod:`repro.faults.rpc` — :class:`FaultyPSChannel`, a retrying RPC shim
  between workers/caches and the parameter server: timeouts, exponential
  backoff with jitter, retry budgets, and graceful degradation — every
  retry is re-charged to the worker's :class:`~repro.utils.simclock.SimClock`
  and metered in :class:`~repro.ps.network.CommRecord`.
* :mod:`repro.faults.recovery` — :class:`CheckpointManager` (periodic
  atomic snapshots) and :class:`ShardRecovery` (crash-restart: a dead
  machine loses its cache, its PS shard rewinds to the last checkpoint,
  and the full recovery time lands on its clock).

A :class:`FaultPlan` with no scheduled faults is an exact no-op: installing
it changes *nothing* — not a single RNG draw, clock tick, or metered byte
(asserted by the invariant tests).
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    CrashEvent,
    DelayWindow,
    DropWindow,
    FaultPlan,
    OutageWindow,
    RetryPolicy,
    StragglerWindow,
)
from repro.faults.recovery import CheckpointManager, CheckpointSnapshot, ShardRecovery
from repro.faults.rpc import FaultyPSChannel, RetriesExhausted

__all__ = [
    "CheckpointManager",
    "CheckpointSnapshot",
    "CrashEvent",
    "DelayWindow",
    "DropWindow",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyPSChannel",
    "OutageWindow",
    "RetriesExhausted",
    "RetryPolicy",
    "ShardRecovery",
    "StragglerWindow",
]
