"""Crash-restart machinery: periodic checkpoints and shard restoration.

The simulated cluster co-locates one worker and one PS shard per machine
(the paper's §V layout), so a machine crash loses two things:

* the worker's **hot-embedding cache** — derived state, rebuilt by
  re-running the CPS/DPS setup (prefetch → filter → install), paying the
  full communication cost again;
* the machine's **PS shard** — authoritative state, rewound to the last
  checkpoint.  Rows owned by surviving shards keep their progress, exactly
  as in a real sharded-PS recovery.

:class:`CheckpointManager` takes an in-memory snapshot (tables + AdaGrad
accumulators) every ``every`` global iterations, and — when given a path —
also persists it through :func:`repro.core.checkpoint.save_checkpoint`,
whose atomic write guarantees a crash mid-save never corrupts the archive.
Snapshotting itself is *not* charged to any clock (modelled as an
asynchronous copy-on-write snapshot); recovery is charged in full to the
crashed machine's clock by the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optim.adagrad import SparseAdagrad
from repro.ps.network import BYTES_PER_ELEMENT
from repro.ps.server import ParameterServer


@dataclass
class CheckpointSnapshot:
    """One point-in-time copy of the global training state."""

    step: int
    tables: dict[str, np.ndarray]
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)


class CheckpointManager:
    """Periodic snapshots of a trainer's parameter-server state.

    Parameters
    ----------
    trainer:
        A set-up :class:`~repro.core.trainer.HETKGTrainer` (or subclass).
    every:
        Snapshot every this many global iterations (``None`` = only when
        :meth:`snapshot` is called explicitly).
    path:
        Optional ``.npz`` destination; every snapshot is also written to
        disk atomically via :func:`repro.core.checkpoint.save_checkpoint`.
    """

    def __init__(self, trainer, every: int | None = None, path=None) -> None:
        if every is not None and every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.trainer = trainer
        self.every = every
        self.path = path
        self.last: CheckpointSnapshot | None = None
        self.saves = 0

    def maybe_snapshot(self, step: int) -> bool:
        """Snapshot iff a period boundary was reached; returns whether."""
        if self.every is None or step % self.every != 0:
            return False
        self.snapshot(step)
        return True

    def snapshot(self, step: int) -> CheckpointSnapshot:
        """Copy the global tables (+ optimizer state) right now."""
        server = self.trainer.server
        if server is None:
            raise RuntimeError("trainer has no state yet; call setup() or train()")
        tables = {
            kind: server.store.table(kind).copy() for kind in ("entity", "relation")
        }
        accumulators: dict[str, np.ndarray] = {}
        if isinstance(server.optimizer, SparseAdagrad):
            accumulators = {
                name: acc.copy()
                for name, acc in server.optimizer._accumulators.items()
            }
        self.last = CheckpointSnapshot(step, tables, accumulators)
        self.saves += 1
        if self.path is not None:
            from repro.core.checkpoint import save_checkpoint

            save_checkpoint(self.trainer, self.path)
        return self.last


class ShardRecovery:
    """Restores a crashed machine's PS shard from the last checkpoint.

    Returns the number of (wire-scaled) bytes reloaded so the worker can
    convert the restore into simulated seconds through the plan's
    ``recovery_bandwidth``.
    """

    def __init__(self, server: ParameterServer, checkpoints: CheckpointManager) -> None:
        self.server = server
        self.checkpoints = checkpoints

    def restore(self, machine: int) -> int:
        """Rewind rows owned by ``machine`` to the last snapshot.

        Without any snapshot yet there is nothing to rewind (the shard is
        modelled as recovered from its co-located replica): only the
        worker-local cache is lost, and 0 bytes are reported.
        """
        snap = self.checkpoints.last
        if snap is None:
            return 0
        store = self.server.store
        optimizer = self.server.optimizer
        restored_bytes = 0
        for kind in ("entity", "relation"):
            ids = store.owned_ids(kind, machine)
            if ids.size == 0:
                continue
            store.table(kind)[ids] = snap.tables[kind][ids]
            restored_bytes += int(
                ids.size
                * store.row_width(kind)
                * BYTES_PER_ELEMENT
                * self.server.byte_scale
            )
            if kind in snap.accumulators and isinstance(optimizer, SparseAdagrad):
                acc = optimizer._accumulator_for(kind, store.table(kind))
                acc[ids] = snap.accumulators[kind][ids]
        return restored_bytes
