"""Declarative fault schedules.

A :class:`FaultPlan` is pure data: *what* can go wrong, *when* (iteration
windows), and *how often* (probabilities resolved by the injector's seeded
streams).  Plans are frozen and hashable so experiments can sweep them, and
a plan that schedules nothing is an exact no-op when installed.

Iteration windows use the worker-local 1-based step index and are
half-open: ``[start, stop)`` with ``stop=None`` meaning "until the end of
the run".  ``machines=None`` means the window applies to every machine.

The CLI accepts a compact spec (see :meth:`FaultPlan.parse`)::

    drop=0.05                     # 5% drop probability, whole run, all machines
    drop=0.2@10:200               # only iterations 10..199
    delay=0.1x0.05@1:50           # 10% of messages +50 ms, iterations 1..49
    slow=w2x3.0@20:40             # machine 2 runs 3x slower in that window
    crash=w1@25                   # machine 1 crashes at its 25th step
    ps-out=0@30:40                # PS shard 0 unavailable in the window
    seed=7,retries=6,restart-delay=2.5
    retries=4x0.004               # 4 attempts, 4 ms RPC timeout (serving-scale)

:meth:`FaultPlan.to_spec` is the exact inverse: it renders a plan back
into the grammar such that ``FaultPlan.parse(plan.to_spec()) == plan``
for every grammar-expressible plan (per-machine window restrictions and
exotic retry/recovery parameters have no spelling and raise).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _check_window(start: int, stop: int | None) -> None:
    if start < 1:
        raise ValueError(f"window start must be >= 1 (1-based steps), got {start}")
    if stop is not None and stop <= start:
        raise ValueError(f"window [{start}, {stop}) is empty")


def _in_window(start: int, stop: int | None, iteration: int) -> bool:
    return iteration >= start and (stop is None or iteration < stop)


@dataclass(frozen=True)
class DropWindow:
    """Messages sent by ``machines`` drop with ``probability`` in the window."""

    probability: float
    start: int = 1
    stop: int | None = None
    machines: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {self.probability}")
        _check_window(self.start, self.stop)

    def applies(self, machine: int, iteration: int) -> bool:
        return (self.machines is None or machine in self.machines) and _in_window(
            self.start, self.stop, iteration
        )


@dataclass(frozen=True)
class DelayWindow:
    """Messages suffer an extra ``delay`` seconds with ``probability``."""

    probability: float
    delay: float
    start: int = 1
    stop: int | None = None
    machines: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"delay probability must be in [0, 1], got {self.probability}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        _check_window(self.start, self.stop)

    def applies(self, machine: int, iteration: int) -> bool:
        return (self.machines is None or machine in self.machines) and _in_window(
            self.start, self.stop, iteration
        )


@dataclass(frozen=True)
class StragglerWindow:
    """One machine computes ``slowdown``x slower inside the window."""

    machine: int
    slowdown: float
    start: int = 1
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1.0, got {self.slowdown}")
        if self.machine < 0:
            raise ValueError(f"machine must be >= 0, got {self.machine}")
        _check_window(self.start, self.stop)

    def applies(self, machine: int, iteration: int) -> bool:
        return machine == self.machine and _in_window(self.start, self.stop, iteration)


@dataclass(frozen=True)
class CrashEvent:
    """Machine ``machine`` crashes at the start of its ``iteration``-th step.

    The crashed worker loses its hot-embedding cache, its PS shard rewinds
    to the last checkpoint, and the full recovery cost is charged to its
    simulated clock (see :mod:`repro.faults.recovery`).
    """

    machine: int
    iteration: int

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError(f"machine must be >= 0, got {self.machine}")
        if self.iteration < 1:
            raise ValueError(f"crash iteration must be >= 1, got {self.iteration}")


@dataclass(frozen=True)
class OutageWindow:
    """PS shard ``shard`` is unreachable during the window.

    Operations touching the shard fail deterministically on every attempt
    inside the window; cached workers degrade gracefully (serve stale hot
    rows past the staleness bound ``P`` and record the overrun).
    """

    shard: int
    start: int
    stop: int | None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        _check_window(self.start, self.stop)

    def applies(self, shard: int, iteration: int) -> bool:
        return shard == self.shard and _in_window(self.start, self.stop, iteration)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / exponential-backoff-with-jitter retry behaviour.

    Every failed attempt charges ``timeout`` seconds to the caller's clock,
    then waits ``min(backoff_base * backoff_factor**k, max_backoff)``
    seconds (jittered by up to ``backoff_jitter`` of itself, drawn from the
    machine's deterministic fault stream) before attempt ``k+1``.  After
    ``max_attempts`` total attempts the operation degrades (see
    :class:`~repro.faults.rpc.FaultyPSChannel`).
    """

    timeout: float = 0.05
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    max_backoff: float = 1.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")
        if self.max_backoff < 0:
            raise ValueError(f"max_backoff must be non-negative, got {self.max_backoff}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff(self, attempt: int) -> float:
        """Base backoff (pre-jitter) after failed attempt ``attempt`` (1-based)."""
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1), self.max_backoff
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos schedule for one training run.

    ``seed`` feeds the per-machine fault streams, so the same plan + seed
    reproduces the exact same faults regardless of any other randomness in
    the run.  ``restart_delay`` and ``recovery_bandwidth`` parameterise the
    crash-restart cost model: a recovering machine pays
    ``restart_delay + restored_bytes / recovery_bandwidth`` seconds before
    rebuilding its hot table.
    """

    seed: int = 0
    drops: tuple[DropWindow, ...] = ()
    delays: tuple[DelayWindow, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    outages: tuple[OutageWindow, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    restart_delay: float = 1.0
    recovery_bandwidth: float = 200e6  # bytes/s checkpoint reload (local disk)

    def __post_init__(self) -> None:
        if self.restart_delay < 0:
            raise ValueError(f"restart_delay must be non-negative, got {self.restart_delay}")
        if self.recovery_bandwidth <= 0:
            raise ValueError(
                f"recovery_bandwidth must be positive, got {self.recovery_bandwidth}"
            )
        seen: set[tuple[int, int]] = set()
        for event in self.crashes:
            key = (event.machine, event.iteration)
            if key in seen:
                raise ValueError(f"duplicate crash event for machine {event.machine} @ {event.iteration}")
            seen.add(key)

    # --------------------------------------------------------------- inspect

    @property
    def is_zero(self) -> bool:
        """True when installing this plan cannot change a run's behaviour."""
        return (
            all(w.probability == 0.0 for w in self.drops)
            and all(w.probability == 0.0 or w.delay == 0.0 for w in self.delays)
            and not self.stragglers
            and not self.crashes
            and not self.outages
        )

    def with_overrides(self, **kwargs) -> "FaultPlan":
        """A copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def to_spec(self) -> str:
        """Render the plan back into the ``--faults`` grammar.

        The exact inverse of :meth:`parse`:
        ``FaultPlan.parse(plan.to_spec()) == plan`` for every plan the
        grammar can express.  Plans that tune what the grammar cannot
        spell — per-machine drop/delay window restrictions, retry fields
        beyond ``max_attempts``/``timeout``, a non-default
        ``recovery_bandwidth`` — raise :class:`ValueError` rather than
        silently dropping the inexpressible part.
        """

        def fmt(value: float) -> str:
            return repr(float(value))

        def win(start: int, stop: int | None) -> str:
            if start == 1 and stop is None:
                return ""
            return f"@{start}:{'' if stop is None else stop}"

        clauses: list[str] = []
        if self.seed:
            clauses.append(f"seed={self.seed}")
        default_retry = RetryPolicy()
        if self.retry != default_retry:
            expressible = replace(
                self.retry,
                max_attempts=default_retry.max_attempts,
                timeout=default_retry.timeout,
            )
            if expressible != default_retry:
                raise ValueError(
                    "retry policy tunes fields the --faults grammar cannot "
                    "express (only max_attempts and timeout have spellings)"
                )
            clause = f"retries={self.retry.max_attempts}"
            if self.retry.timeout != default_retry.timeout:
                clause += f"x{fmt(self.retry.timeout)}"
            clauses.append(clause)
        if self.restart_delay != 1.0:
            clauses.append(f"restart-delay={fmt(self.restart_delay)}")
        if self.recovery_bandwidth != 200e6:
            raise ValueError("recovery_bandwidth has no --faults spelling")
        for w in self.drops:
            if w.machines is not None:
                raise ValueError(
                    "per-machine drop windows have no --faults spelling"
                )
            clauses.append(f"drop={fmt(w.probability)}{win(w.start, w.stop)}")
        for w in self.delays:
            if w.machines is not None:
                raise ValueError(
                    "per-machine delay windows have no --faults spelling"
                )
            clauses.append(
                f"delay={fmt(w.probability)}x{fmt(w.delay)}{win(w.start, w.stop)}"
            )
        for w in self.stragglers:
            clauses.append(
                f"slow=w{w.machine}x{fmt(w.slowdown)}{win(w.start, w.stop)}"
            )
        for event in self.crashes:
            clauses.append(f"crash=w{event.machine}@{event.iteration}")
        for w in self.outages:
            stop = "" if w.stop is None else w.stop
            clauses.append(f"ps-out={w.shard}@{w.start}:{stop}")
        return ",".join(clauses)

    # ----------------------------------------------------------- constructors

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A plan scheduling no faults at all (the no-op invariant plan)."""
        return cls(seed=seed)

    @classmethod
    def uniform_drop(
        cls, probability: float, seed: int = 0, **kwargs
    ) -> "FaultPlan":
        """Drop every message with ``probability`` for the whole run."""
        drops = (DropWindow(probability),) if probability > 0 else ()
        return cls(seed=seed, drops=drops, **kwargs)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the CLI's compact ``--faults`` spec.

        Comma-separated clauses; see the module docstring for the grammar.
        ``FaultPlan.parse("")`` is :meth:`FaultPlan.none`.
        """
        drops: list[DropWindow] = []
        delays: list[DelayWindow] = []
        stragglers: list[StragglerWindow] = []
        crashes: list[CrashEvent] = []
        outages: list[OutageWindow] = []
        seed = 0
        restart_delay = 1.0
        retry = RetryPolicy()

        def window(text: str | None) -> tuple[int, int | None]:
            if text is None:
                return 1, None
            start_s, _, stop_s = text.partition(":")
            start = int(start_s) if start_s else 1
            stop = int(stop_s) if stop_s else None
            return start, stop

        for clause in filter(None, (c.strip() for c in spec.split(","))):
            key, sep, value = clause.partition("=")
            if not sep:
                raise ValueError(f"bad fault clause {clause!r} (expected key=value)")
            body, _, win = value.partition("@")
            win_text = win if win else None
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "retries":
                    attempts_s, sep_x, timeout_s = value.partition("x")
                    retry = replace(retry, max_attempts=int(attempts_s))
                    if sep_x:
                        retry = replace(retry, timeout=float(timeout_s))
                elif key == "restart-delay":
                    restart_delay = float(value)
                elif key == "drop":
                    start, stop = window(win_text)
                    drops.append(DropWindow(float(body), start, stop))
                elif key == "delay":
                    prob_s, _, secs_s = body.partition("x")
                    start, stop = window(win_text)
                    delays.append(
                        DelayWindow(float(prob_s), float(secs_s), start, stop)
                    )
                elif key == "slow":
                    mach_s, _, factor_s = body.lstrip("w").partition("x")
                    start, stop = window(win_text)
                    stragglers.append(
                        StragglerWindow(int(mach_s), float(factor_s), start, stop)
                    )
                elif key == "crash":
                    if win_text is None:
                        raise ValueError("crash needs @<iteration>")
                    crashes.append(CrashEvent(int(body.lstrip("w")), int(win_text)))
                elif key == "ps-out":
                    if win_text is None:
                        raise ValueError("ps-out needs @<start>:<stop>")
                    start, stop = window(win_text)
                    outages.append(OutageWindow(int(body), start, stop))
                else:
                    raise ValueError(f"unknown clause key {key!r}")
            except ValueError as exc:
                # Every failure — bad number, bad window, out-of-range
                # value, unknown key — names the offending clause.
                raise ValueError(f"bad fault clause {clause!r}: {exc}") from exc
        return cls(
            seed=seed,
            drops=tuple(drops),
            delays=tuple(delays),
            stragglers=tuple(stragglers),
            crashes=tuple(crashes),
            outages=tuple(outages),
            retry=retry,
            restart_delay=restart_delay,
        )
