"""The paper's §IV-C bounded-staleness convergence analysis, as code.

Under the four standard assumptions (unbiased stochastic gradients,
variance bounded by ``sigma^2``, L-Lipschitz gradients, model-version delay
bounded by ``K``), the partial-stale algorithm's ergodic convergence rate is

    (1/T) sum_t E ||grad f(x_t)||^2  <=  4 sqrt( (f(x_0) - f*) L sigma^2 / (m T) )

once the iteration count satisfies ``T >= Omega(K^2)`` — i.e. the
asymptotic rate is ``O(1 / sqrt(m T))``, the same as fully-synchronous
SGD, so bounded staleness costs only a constant burn-in.

This module turns those statements into checkable functions used by the
tests (the bound must be monotone in each parameter the right way) and by
examples that annotate empirical curves with the theory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StalenessBound:
    """Problem constants for the §IV-C analysis.

    Attributes
    ----------
    initial_gap:
        ``f(x_0) - f*`` — initial suboptimality.
    lipschitz:
        ``L`` — gradient Lipschitz constant.
    sigma:
        Stochastic-gradient standard-deviation bound.
    staleness:
        ``K`` — maximum model-version delay.  In HET-KG the
        synchronization period ``P`` (times the worker count, since peers'
        pushes accumulate between refreshes) plays this role.
    batch_size:
        ``m`` — samples per stochastic gradient.
    """

    initial_gap: float
    lipschitz: float
    sigma: float
    staleness: int
    batch_size: int

    def __post_init__(self) -> None:
        check_positive("initial_gap", self.initial_gap)
        check_positive("lipschitz", self.lipschitz)
        check_positive("sigma", self.sigma)
        check_positive("staleness", self.staleness)
        check_positive("batch_size", self.batch_size)


def minimum_iterations(bound: StalenessBound) -> int:
    """Burn-in threshold ``T = Omega(K^2)`` after which the asymptotic
    rate holds.

    We use the explicit constant from the proof sketch:
    ``T >= 4 (f(x_0) - f*) L m (K + 1)^2 / sigma^2``.
    """
    t = (
        4.0
        * bound.initial_gap
        * bound.lipschitz
        * bound.batch_size
        * (bound.staleness + 1) ** 2
        / bound.sigma**2
    )
    return int(np.ceil(t))


def convergence_rate_bound(bound: StalenessBound, iterations: int) -> float:
    """The ergodic squared-gradient-norm bound at ``T = iterations``.

    Valid (and returned) only for ``iterations >= minimum_iterations``;
    before the burn-in the bound degrades by the staleness factor
    ``(K + 1)``, which is what the returned value reflects there.
    """
    check_positive("iterations", iterations)
    asymptotic = 4.0 * np.sqrt(
        bound.initial_gap
        * bound.lipschitz
        * bound.sigma**2
        / (bound.batch_size * iterations)
    )
    if iterations >= minimum_iterations(bound):
        return float(asymptotic)
    # Pre-burn-in: the delayed-gradient terms are not yet dominated; the
    # proof's intermediate bound carries an extra (K + 1) factor.
    return float(asymptotic * (bound.staleness + 1))


def staleness_from_config(sync_period: int, num_workers: int) -> int:
    """Map HET-KG's knobs onto the analysis' delay bound ``K``.

    A cached row read just before a refresh can miss up to
    ``sync_period - 1`` of each peer's pushes, so the version delay is
    bounded by ``(sync_period - 1) * (num_workers - 1) + 1`` (the ``+1``
    covers in-flight asynchrony).
    """
    check_positive("sync_period", sync_period)
    check_positive("num_workers", num_workers)
    return (sync_period - 1) * (num_workers - 1) + 1
