"""Analytical tooling: the paper's §IV-C convergence-rate bound."""

from repro.analysis.convergence_theory import (
    StalenessBound,
    convergence_rate_bound,
    minimum_iterations,
    staleness_from_config,
)

__all__ = [
    "StalenessBound",
    "convergence_rate_bound",
    "minimum_iterations",
    "staleness_from_config",
]
