"""Negative sampling by triple corruption.

Two strategies from §V of the paper:

* **independent** — every positive draws its own ``n_neg`` corrupting
  entities (the classic TransE recipe, complexity ``O(b_p * d * (b_n+1))``).
* **chunked** — the PBG/DGL-KE batched strategy: the mini-batch is split
  into chunks of ``chunk_size`` positives that *share* one set of ``n_neg``
  corrupting entities, reducing both sampling cost and the number of unique
  embeddings a batch touches (complexity ``O(b_p d + b_p k d / b_c)``).

The sampler corrupts heads or tails (chosen per chunk) and can optionally
filter out corruptions that collide with true triples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_in, check_positive


@dataclass
class MiniBatch:
    """One training step's worth of samples.

    Attributes
    ----------
    positives:
        ``(b, 3)`` positive triples.
    neg_entities:
        ``(b, n_neg)`` entity ids that corrupt each positive.
    corrupt_head:
        ``(b,)`` bool; ``True`` rows corrupt the head, others the tail.
    """

    positives: np.ndarray
    neg_entities: np.ndarray
    corrupt_head: np.ndarray

    @property
    def size(self) -> int:
        return len(self.positives)

    @property
    def num_negatives(self) -> int:
        return self.neg_entities.shape[1]

    def unique_entities(self) -> np.ndarray:
        """Sorted unique entity ids this batch touches (pos + neg)."""
        return np.unique(
            np.concatenate(
                [
                    self.positives[:, HEAD],
                    self.positives[:, TAIL],
                    self.neg_entities.ravel(),
                ]
            )
        )

    def unique_relations(self) -> np.ndarray:
        """Sorted unique relation ids this batch touches."""
        return np.unique(self.positives[:, REL])

    def negative_triples(self) -> np.ndarray:
        """Materialise all ``(b * n_neg, 3)`` corrupted triples."""
        b, n = self.neg_entities.shape
        pos = np.repeat(self.positives, n, axis=0)
        neg = pos.copy()
        flat = self.neg_entities.ravel()
        heads = np.repeat(self.corrupt_head, n)
        neg[heads, HEAD] = flat[heads]
        neg[~heads, TAIL] = flat[~heads]
        return neg


class NegativeSampler:
    """Corrupt positive triples into negatives.

    Parameters
    ----------
    num_entities:
        Size of the corruption pool (entities are drawn uniformly).
    num_negatives:
        Negatives per positive (``b_n`` in the paper).
    strategy:
        ``"independent"`` or ``"chunked"`` (see module docstring).
    chunk_size:
        Positives per shared-negative chunk (``b_c``); only used by the
        chunked strategy.
    filter_graph:
        When given, corruptions that produce a true triple of this graph are
        resampled (up to a few retries) — avoids training on false
        negatives.
    entity_pool:
        Optional restricted id pool to corrupt from (PBG corrupts within
        the entity partitions of the current bucket); default is the full
        ``[0, num_entities)`` range.
    """

    def __init__(
        self,
        num_entities: int,
        num_negatives: int = 8,
        strategy: str = "chunked",
        chunk_size: int = 16,
        filter_graph: KnowledgeGraph | None = None,
        entity_pool: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("num_entities", num_entities)
        check_positive("num_negatives", num_negatives)
        check_positive("chunk_size", chunk_size)
        check_in("strategy", strategy, ("independent", "chunked"))
        self.num_entities = num_entities
        self.num_negatives = num_negatives
        self.strategy = strategy
        self.chunk_size = chunk_size
        if filter_graph is not None:
            self._filter = filter_graph.triple_set()
            self._filter_index = filter_graph.triple_index()
        else:
            self._filter = None
            self._filter_index = None
        if entity_pool is not None:
            entity_pool = np.asarray(entity_pool, dtype=np.int64)
            if len(entity_pool) == 0:
                raise ValueError("entity_pool must not be empty")
        self.entity_pool = entity_pool
        self._rng = make_rng(seed)
        #: Corruptions that exhausted their false-negative resample retries
        #: and stayed a true triple (monotone; see
        #: :meth:`_resample_false_negatives`).  Surfaced by trainers as
        #: ``TrainResult.false_negative_leaks`` and the ``Telemetry``
        #: ``false_negative_leaks`` counter.
        self.false_negative_leaks = 0

    def _draw_entities(self, size) -> np.ndarray:
        """Uniform corrupting entities from the pool or the full range."""
        if self.entity_pool is None:
            return self._rng.integers(0, self.num_entities, size=size)
        idx = self._rng.integers(0, len(self.entity_pool), size=size)
        return self.entity_pool[idx]

    # ----------------------------------------------------------------- public

    def corrupt(self, positives: np.ndarray) -> MiniBatch:
        """Build a :class:`MiniBatch` corrupting ``positives``."""
        positives = np.asarray(positives, dtype=np.int64)
        if positives.ndim != 2 or positives.shape[1] != 3:
            raise ValueError(f"positives must be (b, 3), got {positives.shape}")
        b = len(positives)
        if b == 0:
            return MiniBatch(
                positives,
                np.zeros((0, self.num_negatives), dtype=np.int64),
                np.zeros(0, dtype=bool),
            )
        if self.strategy == "independent":
            neg = self._draw_entities((b, self.num_negatives))
            corrupt_head = self._rng.random(b) < 0.5
        else:
            neg = np.empty((b, self.num_negatives), dtype=np.int64)
            corrupt_head = np.empty(b, dtype=bool)
            for start in range(0, b, self.chunk_size):
                stop = min(start + self.chunk_size, b)
                shared = self._draw_entities(self.num_negatives)
                neg[start:stop] = shared[None, :]
                corrupt_head[start:stop] = self._rng.random() < 0.5
        batch = MiniBatch(positives, neg, corrupt_head)
        if self._filter is not None:
            self._resample_false_negatives(batch)
        return batch

    def resize(
        self, num_entities: int, filter_graph: KnowledgeGraph | None = None
    ) -> None:
        """Grow the corruption pool to ``num_entities`` ids.

        Online ingestion (:mod:`repro.stream`) introduces new entities;
        after a resize, freshly-drawn corruptions may hit the new ids.  The
        pool can only grow — shrinking would invalidate ids already handed
        out.  Passing ``filter_graph`` also refreshes the false-negative
        filter so newly-inserted true triples stop being drawn as
        negatives.  No RNG draws are consumed, so resizing to the *same*
        size with no new filter is a no-op for determinism.
        """
        check_positive("num_entities", num_entities)
        if num_entities < self.num_entities:
            raise ValueError(
                f"corruption pool can only grow: {self.num_entities} -> "
                f"{num_entities}"
            )
        if num_entities > self.num_entities and self.entity_pool is not None:
            raise ValueError(
                f"resize({num_entities}) conflicts with the restricted "
                f"entity_pool ({len(self.entity_pool)} ids): _draw_entities "
                "only samples the pool, so the grown ids would silently "
                "never be drawn — rebuild the sampler with a grown pool "
                "(or entity_pool=None) instead"
            )
        self.num_entities = num_entities
        if filter_graph is not None:
            self._filter = filter_graph.triple_set()
            self._filter_index = filter_graph.triple_index()

    # ---------------------------------------------------------------- private

    def _resample_false_negatives(self, batch: MiniBatch, retries: int = 10) -> None:
        """Replace corruptions that collide with true triples, in place.

        Collision *detection* is one vectorized
        :meth:`~repro.kg.graph.TripleIndex.contains_batch` probe over all
        ``b * n`` corrupted triples (it consumes no randomness); only the
        colliding entries then run the original per-entry retry loop, in
        row-major order, so the RNG draw sequence is bit-identical to the
        scalar reference that checked every entry.
        """
        assert self._filter is not None and self._filter_index is not None
        n = batch.num_negatives
        if batch.size == 0 or n == 0:
            return
        pos = batch.positives
        flat = batch.neg_entities.ravel()
        heads_rep = np.repeat(batch.corrupt_head, n)
        cand_h = np.where(heads_rep, flat, np.repeat(pos[:, HEAD], n))
        cand_t = np.where(heads_rep, np.repeat(pos[:, TAIL], n), flat)
        collide = self._filter_index.contains_batch(
            cand_h, np.repeat(pos[:, REL], n), cand_t
        )
        if not collide.any():
            return
        for k in np.flatnonzero(collide):
            i, j = divmod(int(k), n)
            h, r, t = (int(x) for x in pos[i])
            head = bool(batch.corrupt_head[i])
            e = int(batch.neg_entities[i, j])
            candidate = (e, r, t) if head else (h, r, e)
            attempts = 0
            while candidate in self._filter and attempts < retries:
                e = int(self._draw_entities(1)[0])
                candidate = (e, r, t) if head else (h, r, e)
                attempts += 1
            if candidate in self._filter:
                # Retries exhausted on a dense filter neighbourhood: the
                # false negative stays in the batch (resampling forever
                # could spin on fully-connected anchors).  Count the leak
                # so trainers can surface it instead of hiding it.
                self.false_negative_leaks += 1
            batch.neg_entities[i, j] = e
