"""Epoch-level mini-batch iteration over a worker's local subgraph.

The sampler shuffles the worker's triple indices each epoch and yields
fixed-size positive batches.  It also supports *prefetching* — producing
the next ``D`` iterations' batches up front — which is the substrate of
the paper's Algorithm 1.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.sampling.negative import MiniBatch, NegativeSampler
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


class EpochSampler:
    """Yields :class:`MiniBatch` objects over a local subgraph.

    Parameters
    ----------
    graph:
        The worker's local partition of the training triples.
    batch_size:
        Positives per batch (``b`` in the paper's Table II).
    negative_sampler:
        Corruption strategy shared across batches.
    drop_last:
        Drop a trailing batch smaller than ``batch_size`` (default keeps it).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        batch_size: int,
        negative_sampler: NegativeSampler,
        drop_last: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("batch_size", batch_size)
        self.graph = graph
        self.batch_size = batch_size
        self.negative_sampler = negative_sampler
        self.drop_last = drop_last
        self._rng = make_rng(seed)
        self._order: np.ndarray = np.empty(0, dtype=np.int64)
        self._cursor = 0

    # ----------------------------------------------------------------- sizing

    @property
    def batches_per_epoch(self) -> int:
        n = self.graph.num_triples
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    # -------------------------------------------------------------- iteration

    def _reshuffle(self) -> None:
        self._order = self._rng.permutation(self.graph.num_triples)
        self._cursor = 0

    def next_batch(self) -> MiniBatch:
        """Produce the next batch, reshuffling at epoch boundaries."""
        if self.graph.num_triples == 0:
            raise ValueError("cannot sample from an empty subgraph")
        if self._cursor >= len(self._order):
            self._reshuffle()
        remaining = len(self._order) - self._cursor
        if self.drop_last and remaining < self.batch_size:
            self._reshuffle()
        take = min(self.batch_size, len(self._order) - self._cursor)
        idx = self._order[self._cursor : self._cursor + take]
        self._cursor += take
        positives = self.graph.triples[idx]
        return self.negative_sampler.corrupt(positives)

    # -------------------------------------------------------------- streaming

    def apply_update(
        self, new_graph: KnowledgeGraph, keep_mask: np.ndarray | None = None
    ) -> None:
        """Swap in a mutated local subgraph without breaking the epoch walk.

        Online ingestion (:mod:`repro.stream`) removes some of this
        worker's triples and appends new ones.  ``keep_mask`` flags which
        of the *old* triples survive (``None`` = all); ``new_graph`` holds
        the surviving rows first (in original order) followed by the
        appended rows, over possibly larger vocabularies.

        The in-flight epoch is preserved deterministically: surviving
        not-yet-consumed positions keep their shuffled order (remapped to
        the new row indices), consumed positions stay consumed, and the
        appended rows join the walk at the end of the current epoch — the
        next reshuffle mixes them in fully.  No RNG draws are consumed, so
        an update-free stream leaves the sample sequence bit-identical.
        """
        old_n = self.graph.num_triples
        self.graph = new_graph
        self.negative_sampler.resize(new_graph.num_entities)
        if keep_mask is None:
            keep_mask = np.ones(old_n, dtype=bool)
        else:
            keep_mask = np.asarray(keep_mask, dtype=bool)
            if len(keep_mask) != old_n:
                raise ValueError(
                    f"keep_mask has {len(keep_mask)} entries for {old_n} triples"
                )
        if len(self._order) == 0:
            # First epoch not started yet; next_batch() reshuffles lazily.
            return
        # Old row index -> new row index for survivors (-1 for deleted).
        new_index = np.cumsum(keep_mask, dtype=np.int64) - 1
        new_index[~keep_mask] = -1
        consumed = self._order[: self._cursor]
        pending = self._order[self._cursor :]
        consumed = new_index[consumed]
        consumed = consumed[consumed >= 0]
        pending = new_index[pending]
        pending = pending[pending >= 0]
        n_kept = int(keep_mask.sum())
        appended = np.arange(n_kept, new_graph.num_triples, dtype=np.int64)
        self._order = np.concatenate([consumed, pending, appended])
        self._cursor = len(consumed)

    def prefetch(self, count: int) -> list[MiniBatch]:
        """Produce the next ``count`` batches eagerly (Algorithm 1's input).

        The returned batches are exactly the ones subsequent
        :meth:`next_batch` calls would have yielded, so training on a
        prefetched list is equivalent to training live.
        """
        check_positive("count", count)
        return [self.next_batch() for _ in range(count)]

    def epoch(self) -> Iterator[MiniBatch]:
        """Iterate exactly one epoch of batches."""
        for _ in range(self.batches_per_epoch):
            yield self.next_batch()
