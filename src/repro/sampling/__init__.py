"""Mini-batch and negative sampling over partitioned knowledge graphs."""

from repro.sampling.negative import NegativeSampler, MiniBatch
from repro.sampling.minibatch import EpochSampler

__all__ = ["NegativeSampler", "MiniBatch", "EpochSampler"]
