"""Mini-batch and negative sampling over partitioned knowledge graphs."""

from repro.sampling.negative import NegativeSampler, MiniBatch
from repro.sampling.minibatch import EpochSampler
from repro.sampling.cache import (
    NEG_CACHE_MODES,
    CachedNegativeSampler,
    RefreshPlan,
)

__all__ = [
    "NegativeSampler",
    "MiniBatch",
    "EpochSampler",
    "CachedNegativeSampler",
    "RefreshPlan",
    "NEG_CACHE_MODES",
]
