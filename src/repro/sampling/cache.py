"""Hotness-aware hard-negative cache (NSCaching-style).

HET-KG bets that a small hot set dominates *embedding* traffic; NSCaching
(arXiv:1812.06410) makes the structurally identical bet on *negatives*: for
each ``(entity, relation, direction)`` anchor, a small cache of high-score
("hard") corruptions dominates the gradient signal, so drawing negatives
from that cache converges with far fewer scored candidates than uniform
corruption needs.

:class:`CachedNegativeSampler` extends :class:`~repro.sampling.negative.
NegativeSampler` with NSCaching's two-level index/cache scheme:

* **cache** — per-key arrays of up to ``cache_size`` hard negative ids,
  keyed by ``(anchor_entity, relation_id, corrupt_head)`` where the anchor
  is the entity that *stays* in the corrupted triple;
* **index (candidate pool)** — at refresh time each due key scores
  ``pool_size`` fresh uniform draws *unioned with* its current cache
  against the live model and keeps the importance-sampled top
  ``cache_size`` (Gumbel top-k over ``score / temperature``, so
  ``temperature -> 0`` degenerates to exact top-k and larger temperatures
  flatten toward uniform keep probability).

Refreshes are *lazy and hotness-aware*: batches only mark their keys as
touched (with a touch count), and every ``refresh_period`` worker steps
the ``refresh_keys`` hottest pending keys are refreshed — the same
head-of-the-Zipf-curve argument HET-KG applies to the embedding cache.
The driving :class:`~repro.core.worker.Worker` pulls the candidate rows
through the parameter server and charges both the pull traffic and the
scoring flops to the ``"neg_cache"`` clock category, so the accounting
books keep the cache honest.

Two modes (``config.neg_cache``):

* ``"nscaching"`` — warm keys draw every negative from their cache
  (cold keys fall back to the inherited uniform corruption);
* ``"auto"`` — the auto-balanced variant (arXiv:2010.14227-style): the
  probability of substituting a cached hard negative anneals linearly
  from 0 (pure exploration) to 1 (pure exploitation) over
  ``anneal_steps`` batches, trading off early coverage against late
  hardness without a hand-tuned switch point.

Determinism: all cache decisions draw from a dedicated side stream
(seeded from the sampler seed + a fixed salt), and the inherited uniform
corruption consumes exactly the base class's draws, so `the base batch is
bit-identical to a plain sampler's` and disabling the cache
(``neg_cache="off"``) cannot perturb any other component.  Refresh plans
iterate keys in sorted order, so a run is a pure function of
``(seed, config, data)``.

Streaming (:mod:`repro.stream`): :meth:`CachedNegativeSampler.resize`
grows the uniform candidate range, so freshly-minted entities start
entering candidate pools at the next refresh; :meth:`invalidate_ids`
drops keys anchored on deleted ids and purges deleted ids from every
cached negative list.  An empty stream triggers neither, keeping the
zero-drift path bit-identical to a static cached run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.sampling.negative import MiniBatch, NegativeSampler
from repro.utils.validation import check_in, check_positive

#: Cache modes a :class:`CachedNegativeSampler` accepts (``"off"`` is a
#: config-level value meaning "build a plain sampler instead").
NEG_CACHE_MODES = ("nscaching", "auto")

#: Salt deriving the cache's side stream from the sampler seed (the
#: NSCaching arXiv id).  Entropy-sequence seeding keeps the side stream a
#: pure function of ``(seed, salt)`` without consuming base draws.
NEG_CACHE_STREAM_SALT = 181206410


@dataclass
class RefreshPlan:
    """One refresh event's worth of scoring work, ready for the worker.

    The worker pulls ``entity_ids``/``relation_ids`` rows through the
    parameter server (charging the traffic) and hands them back via
    :meth:`CachedNegativeSampler.complete_refresh`, which scores
    ``num_scores`` candidate triples and rewrites the due caches.
    """

    #: Keys being refreshed, in deterministic (hotness, key) order.
    keys: list[tuple[int, int, bool]]
    #: Per-key candidate entity ids (deduped union of cache and pool).
    candidates: list[np.ndarray]
    #: Sorted unique entity ids to pull (anchors + all candidates).
    entity_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: Sorted unique relation ids to pull.
    relation_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def __post_init__(self) -> None:
        anchors = np.array([k[0] for k in self.keys], dtype=np.int64)
        rels = np.array([k[1] for k in self.keys], dtype=np.int64)
        cands = (
            np.concatenate(self.candidates)
            if self.candidates
            else np.empty(0, np.int64)
        )
        self.entity_ids = np.unique(np.concatenate([anchors, cands]))
        self.relation_ids = np.unique(rels)

    @property
    def num_scores(self) -> int:
        """Candidate triples this plan scores."""
        return int(sum(len(c) for c in self.candidates))


class CachedNegativeSampler(NegativeSampler):
    """A :class:`NegativeSampler` backed by per-key hard-negative caches.

    Parameters beyond the base class
    --------------------------------
    mode:
        ``"nscaching"`` (always draw from warm caches) or ``"auto"``
        (anneal the cache-draw probability over ``anneal_steps`` batches).
    cache_size:
        Hard negatives kept per ``(entity, relation, direction)`` key
        (NSCaching's ``N1``).
    pool_size:
        Fresh uniform candidates scored per key refresh (``N2``); the
        scored pool is the union of these and the current cache.
    refresh_period:
        Worker steps between refresh events (checked by the worker via
        :meth:`refresh_due`).
    refresh_keys:
        Budget of keys refreshed per event; the hottest pending keys (by
        touch count) win, the rest stay queued with their counts.
    temperature:
        Gumbel top-k temperature over candidate scores — lower is closer
        to exact top-k, higher flattens toward uniform retention.
    anneal_steps:
        ``"auto"`` mode's exploration->exploitation ramp length (batches).
    """

    def __init__(
        self,
        num_entities: int,
        num_negatives: int = 8,
        strategy: str = "chunked",
        chunk_size: int = 16,
        filter_graph: KnowledgeGraph | None = None,
        entity_pool: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
        *,
        mode: str = "nscaching",
        cache_size: int = 8,
        pool_size: int = 16,
        refresh_period: int = 4,
        refresh_keys: int = 64,
        temperature: float = 0.5,
        anneal_steps: int = 256,
    ) -> None:
        super().__init__(
            num_entities,
            num_negatives=num_negatives,
            strategy=strategy,
            chunk_size=chunk_size,
            filter_graph=filter_graph,
            entity_pool=entity_pool,
            seed=seed,
        )
        check_in("mode", mode, NEG_CACHE_MODES)
        check_positive("cache_size", cache_size)
        check_positive("pool_size", pool_size)
        check_positive("refresh_period", refresh_period)
        check_positive("refresh_keys", refresh_keys)
        check_positive("temperature", temperature)
        check_positive("anneal_steps", anneal_steps)
        self.mode = mode
        self.cache_size = cache_size
        self.pool_size = pool_size
        self.refresh_period = refresh_period
        self.refresh_keys = refresh_keys
        self.temperature = temperature
        self.anneal_steps = anneal_steps
        # The side stream: cache decisions must not consume base draws, so
        # the inherited uniform corruption stays bit-identical to a plain
        # sampler seeded the same way.  An int seed derives the stream as
        # a pure (seed, salt) function; a Generator seed (tests) spends
        # one draw of the shared stream instead.
        if isinstance(seed, np.random.Generator):
            self._cache_rng = np.random.default_rng(
                [int(seed.integers(2**63)), NEG_CACHE_STREAM_SALT]
            )
        else:
            from repro.utils.rng import DEFAULT_SEED

            scalar = DEFAULT_SEED if seed is None else int(seed)
            self._cache_rng = np.random.default_rng(
                [scalar, NEG_CACHE_STREAM_SALT]
            )
        self._cache: dict[tuple[int, int, bool], np.ndarray] = {}
        self._touched: dict[tuple[int, int, bool], int] = {}
        self._batches = 0
        # Monotone counters (trainers snapshot-and-diff per train() call).
        self.refreshes = 0
        self.refreshed_keys = 0
        self.candidates_scored = 0
        self.hard_negatives_served = 0

    # ------------------------------------------------------------- properties

    @property
    def num_keys(self) -> int:
        """Keys currently holding a (possibly empty) hard-negative cache."""
        return len(self._cache)

    @property
    def pending_keys(self) -> int:
        """Touched keys queued for a future refresh."""
        return len(self._touched)

    def mix_fraction(self) -> float:
        """Probability a negative slot is served from a warm cache."""
        if self.mode == "nscaching":
            return 1.0
        return min(1.0, self._batches / self.anneal_steps)

    def counters(self) -> dict[str, int]:
        """Monotone lifetime counters (snapshot-and-diff to scope a run)."""
        return {
            "refreshes": self.refreshes,
            "refreshed_keys": self.refreshed_keys,
            "candidates_scored": self.candidates_scored,
            "hard_negatives_served": self.hard_negatives_served,
        }

    # ---------------------------------------------------------------- corrupt

    @staticmethod
    def _key_of(positive: np.ndarray, corrupt_head: bool) -> tuple[int, int, bool]:
        """The cache key of one corruption: the entity that *stays*."""
        anchor = positive[TAIL] if corrupt_head else positive[HEAD]
        return (int(anchor), int(positive[REL]), bool(corrupt_head))

    def corrupt(self, positives: np.ndarray) -> MiniBatch:
        """Corrupt ``positives``, substituting cached hard negatives.

        The base class draws the uniform batch first (consuming exactly a
        plain sampler's RNG sequence), then warm keys replace a
        ``mix_fraction()`` share of their slots with cache draws from the
        side stream.  Every key the batch touches is marked for a future
        hotness-ordered refresh.
        """
        batch = super().corrupt(positives)
        if batch.size == 0:
            return batch
        alpha = self.mix_fraction()
        self._batches += 1
        n = batch.num_negatives
        for i in range(batch.size):
            key = self._key_of(batch.positives[i], bool(batch.corrupt_head[i]))
            self._touched[key] = self._touched.get(key, 0) + 1
            cached = self._cache.get(key)
            if cached is None or len(cached) == 0 or alpha <= 0.0:
                continue
            if alpha >= 1.0:
                mask = np.ones(n, dtype=bool)
            else:
                mask = self._cache_rng.random(n) < alpha
            k = int(mask.sum())
            if k == 0:
                continue
            picks = cached[self._cache_rng.integers(0, len(cached), size=k)]
            batch.neg_entities[i, mask] = picks
            self.hard_negatives_served += k
        return batch

    # ---------------------------------------------------------------- refresh

    def refresh_due(self, step_index: int) -> bool:
        """Whether the worker's ``step_index`` should trigger a refresh."""
        return bool(self._touched) and step_index % self.refresh_period == 0

    def plan_refresh(self) -> RefreshPlan | None:
        """Select the hottest pending keys and draw their candidate pools.

        Returns ``None`` when nothing is pending.  Selected keys leave the
        pending queue; the remainder keep their touch counts for the next
        event (hotness priority with queue fairness).  Candidate pools are
        ``unique(cache ∪ pool_size uniform draws) - {anchor}``, minus any
        id that would be a false negative when a filter is installed.
        """
        if not self._touched:
            return None
        order = sorted(self._touched.items(), key=lambda kv: (-kv[1], kv[0]))
        due = [key for key, _ in order[: self.refresh_keys]]
        for key in due:
            del self._touched[key]
        keys: list[tuple[int, int, bool]] = []
        pools: list[np.ndarray] = []
        for key in due:
            anchor, rel, corrupt_head = key
            fresh = self._draw_candidates(self.pool_size)
            current = self._cache.get(key)
            merged = (
                np.unique(np.concatenate([current, fresh]))
                if current is not None and len(current)
                else np.unique(fresh)
            )
            merged = merged[merged != anchor]
            if self._filter_index is not None and len(merged):
                if corrupt_head:
                    collide = self._filter_index.contains_batch(
                        merged, np.full(len(merged), rel), np.full(len(merged), anchor)
                    )
                else:
                    collide = self._filter_index.contains_batch(
                        np.full(len(merged), anchor), np.full(len(merged), rel), merged
                    )
                merged = merged[~collide]
            if len(merged) == 0:
                continue
            keys.append(key)
            pools.append(merged)
        if not keys:
            return None
        return RefreshPlan(keys=keys, candidates=pools)

    def _draw_candidates(self, size: int) -> np.ndarray:
        """Uniform candidate ids from the side stream (not the base RNG)."""
        if self.entity_pool is None:
            return self._cache_rng.integers(0, self.num_entities, size=size)
        idx = self._cache_rng.integers(0, len(self.entity_pool), size=size)
        return self.entity_pool[idx]

    def complete_refresh(
        self,
        plan: RefreshPlan,
        model,
        entity_rows: np.ndarray,
        relation_rows: np.ndarray,
    ) -> int:
        """Score the plan's candidates and rewrite the due caches.

        ``entity_rows``/``relation_rows`` are the rows for
        ``plan.entity_ids``/``plan.relation_ids`` in id order (exactly what
        ``ParameterServer.pull`` returns).  Keeps the importance-sampled
        top ``cache_size`` per key via deterministic Gumbel top-k at
        ``temperature``.  Returns the number of candidate triples scored
        (what the worker charges to the compute model).
        """
        counts = np.array([len(c) for c in plan.candidates], dtype=np.int64)
        anchors = np.repeat(
            np.array([k[0] for k in plan.keys], dtype=np.int64), counts
        )
        rels = np.repeat(
            np.array([k[1] for k in plan.keys], dtype=np.int64), counts
        )
        corrupts_head = np.repeat(
            np.array([k[2] for k in plan.keys], dtype=bool), counts
        )
        cands = np.concatenate(plan.candidates)
        anchor_rows = entity_rows[np.searchsorted(plan.entity_ids, anchors)]
        cand_rows = entity_rows[np.searchsorted(plan.entity_ids, cands)]
        rel_rows = relation_rows[np.searchsorted(plan.relation_ids, rels)]
        h_rows = np.where(corrupts_head[:, None], cand_rows, anchor_rows)
        t_rows = np.where(corrupts_head[:, None], anchor_rows, cand_rows)
        scores = np.asarray(model.score(h_rows, rel_rows, t_rows), dtype=float)
        # Gumbel top-k == sampling cache_size candidates without
        # replacement with probability proportional to softmax(score/T).
        uniform = self._cache_rng.random(len(scores))
        gumbel = -np.log(-np.log(np.clip(uniform, 1e-12, 1.0 - 1e-12)))
        perturbed = scores / self.temperature + gumbel
        start = 0
        for key, count in zip(plan.keys, counts):
            stop = start + int(count)
            slice_cands = cands[start:stop]
            slice_scores = perturbed[start:stop]
            keep = np.argsort(-slice_scores, kind="stable")[: self.cache_size]
            self._cache[key] = slice_cands[np.sort(keep)].copy()
            start = stop
        self.refreshes += 1
        self.refreshed_keys += len(plan.keys)
        self.candidates_scored += int(counts.sum())
        return int(counts.sum())

    # -------------------------------------------------------------- streaming

    def resize(
        self, num_entities: int, filter_graph: KnowledgeGraph | None = None
    ) -> None:
        """Grow the corruption pool; re-filter caches against a new graph.

        New ids need no explicit registration — the next refresh's uniform
        candidate pools draw from the grown range, so fresh entities start
        competing for cache slots immediately.  When ``filter_graph`` is
        passed, cached negatives that the *new* graph turned into true
        triples are purged (no RNG draws are consumed).
        """
        super().resize(num_entities, filter_graph=filter_graph)
        if filter_graph is not None and self._filter_index is not None:
            for key, cached in list(self._cache.items()):
                if not len(cached):
                    continue
                anchor, rel, corrupt_head = key
                if corrupt_head:
                    collide = self._filter_index.contains_batch(
                        cached, np.full(len(cached), rel), np.full(len(cached), anchor)
                    )
                else:
                    collide = self._filter_index.contains_batch(
                        np.full(len(cached), anchor), np.full(len(cached), rel), cached
                    )
                if collide.any():
                    self._cache[key] = cached[~collide]

    def invalidate_ids(
        self, entity_ids: np.ndarray, relation_ids: np.ndarray
    ) -> int:
        """Drop caches invalidated by deleted graph structure.

        Keys anchored on any of ``entity_ids`` (or whose relation is in
        ``relation_ids``) are removed outright — their hard negatives were
        scored against structure that no longer exists.  Deleted entities
        are also purged from every surviving cache's negative list.
        Returns the number of keys dropped.
        """
        ents = {int(e) for e in np.asarray(entity_ids).ravel()}
        rels = {int(r) for r in np.asarray(relation_ids).ravel()}
        if not ents and not rels:
            return 0
        dropped = 0
        for key in list(self._cache):
            anchor, rel, _ = key
            if anchor in ents or rel in rels:
                del self._cache[key]
                self._touched.pop(key, None)
                dropped += 1
                continue
            if ents:
                cached = self._cache[key]
                keep = np.fromiter(
                    (int(e) not in ents for e in cached),
                    dtype=bool,
                    count=len(cached),
                )
                if not keep.all():
                    self._cache[key] = cached[keep]
        for key in list(self._touched):
            anchor, rel, _ = key
            if anchor in ents or rel in rels:
                del self._touched[key]
        return dropped
