"""Tier runtime: wires a set of tables to one budget, clock, and scratch dir.

A :class:`TierRuntime` is what :class:`~repro.ps.kvstore.ShardedKVStore`
constructs when built with ``backing="tiered"``: it owns the shared
:class:`~repro.tier.budget.MemoryBudget` ledger, the ``tier.*`` SimClock,
and the scratch directory holding each table's memmap shard.  The budget
is split between tables proportionally to logical size at attach time so
the entity and relation tables never race for the same bytes.

Scratch files are removed by :meth:`close`; a ``weakref.finalize`` guard
cleans up runtimes that are simply dropped, so leaked temp directories
cannot accumulate across test runs or sweeps.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import TraceScope
from repro.tier.budget import MemoryBudget, parse_bytes
from repro.tier.policy import TierCostModel, TierMeter, TierPolicy
from repro.tier.store import TieredTable
from repro.utils.simclock import SimClock


@dataclass(frozen=True)
class TierConfig:
    """Everything needed to turn dense tables into a tiered store.

    Parameters
    ----------
    budget:
        Total resident bytes across all tables: an int, a size string
        (``"64M"``), or ``None`` for unlimited.
    policy:
        Residency policy (block size, pass cadence, hit-rate target...).
    cost:
        Simulated cost model for tier traffic.
    directory:
        Where memmap shards live.  ``None`` creates (and later removes) a
        private temp directory; an explicit path is useful to place
        scratch on a specific disk — the shard *files* are still removed
        on close, only the directory itself is kept.
    """

    budget: int | str | None = None
    policy: TierPolicy = field(default_factory=TierPolicy)
    cost: TierCostModel = field(default_factory=TierCostModel)
    directory: str | os.PathLike[str] | None = None


def _remove_paths(paths: tuple[str, ...], owned_dir: str | None) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass
    if owned_dir is not None:
        shutil.rmtree(owned_dir, ignore_errors=True)


class TierRuntime:
    """Shared state for the tiered tables of one store."""

    def __init__(
        self, tables: dict[str, np.ndarray], config: TierConfig | None = None
    ) -> None:
        config = config if config is not None else TierConfig()
        self.config = config
        total = parse_bytes(config.budget)
        self.budget = MemoryBudget(total)
        self.clock = SimClock()
        self.meter = TierMeter(config.cost, self.clock)
        if config.directory is None:
            directory = tempfile.mkdtemp(prefix="repro-tier-")
            owned_dir = directory
        else:
            directory = os.fspath(config.directory)
            os.makedirs(directory, exist_ok=True)
            owned_dir = None
        self.directory = directory
        logical = {k: int(np.asarray(t).nbytes) for k, t in tables.items()}
        total_logical = sum(logical.values())
        self.tables: dict[str, TieredTable] = {}
        paths = []
        for kind, array in tables.items():
            if total is None or total_logical == 0:
                slice_bytes = None
            else:
                slice_bytes = total * logical[kind] // total_logical
            path = os.path.join(directory, f"{kind}.mmap")
            paths.append(path)
            self.tables[kind] = TieredTable(
                array,
                name=kind,
                path=path,
                budget=self.budget,
                slice_bytes=slice_bytes,
                policy=config.policy,
                meter=self.meter,
            )
        self._finalizer = weakref.finalize(
            self, _remove_paths, tuple(paths), owned_dir
        )

    # ------------------------------------------------------------------- hooks

    def bind_trace(self, scope: TraceScope) -> None:
        for table in self.tables.values():
            table.bind_trace(scope)

    def rebalance(self) -> None:
        """Force a promotion pass on every table (benchmarks/tests)."""
        for table in self.tables.values():
            table.rebalance()

    # --------------------------------------------------------------- reporting

    def memory_report(self) -> dict:
        per_table = {k: t.report() for k, t in sorted(self.tables.items())}
        return {
            "backing": "tiered",
            "budget_bytes": self.budget.total,
            "used_bytes": self.budget.used(),
            "resident_bytes": sum(t["resident_bytes"] for t in per_table.values()),
            "logical_bytes": sum(t["logical_bytes"] for t in per_table.values()),
            "tier_seconds": self.clock.elapsed,
            "tier_breakdown": self.meter.breakdown(),
            "charges": self.budget.charges(),
            "tables": per_table,
        }

    # ----------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Flush, unmap, and delete the scratch shards (idempotent)."""
        for table in self.tables.values():
            table.close()
        if self._finalizer.alive:
            self._finalizer()

    def __repr__(self) -> str:
        return (
            f"TierRuntime(tables={sorted(self.tables)}, "
            f"budget={self.budget!r}, dir={self.directory!r})"
        )
