"""Tiered embedding store: memory oversubscription for tables > RAM.

HET-KG's premise is that a small resident hot set absorbs most embedding
traffic.  This package takes that bet to its storage-layer conclusion, the
way HugeCTR's HMEM-Cache oversubscribes device memory: embedding tables
live on disk and only the hot fraction is resident, governed by an explicit
byte budget.

Three tiers, by descending access frequency:

* **hot**  — resident float64 block copies (exact, fastest), held in a
  :class:`~repro.cache.table.CacheTable` keyed by block id;
* **warm** — the authoritative ``np.memmap`` shard file (exact, charged
  simulated I/O per read);
* **cold** — blocks idle for several passes are *quantized* in place
  (``fp16``/``int8``, the wire codecs of :mod:`repro.ps.compression`)
  and their full-precision copy abandoned — dequant-on-read, lossy.

Promotion/demotion runs at pass granularity driven by per-block access
counters (``target_hit_rate`` short-circuits a pass, ``max_evict_per_pass``
bounds churn), and every byte moved or (de)quantized is charged to
dedicated ``tier.*`` SimClock categories.

Entry point: ``ShardedKVStore(..., backing="tiered", tier=TierConfig(...))``
— the default ``backing="resident"`` path is bit-identical to the
pre-tiering store.
"""

from repro.tier.budget import BudgetExceededError, MemoryBudget, format_bytes, parse_bytes
from repro.tier.policy import TierCostModel, TierPolicy
from repro.tier.quant import get_block_codec
from repro.tier.runtime import TierConfig, TierRuntime
from repro.tier.store import COLD, HOT, WARM, TierStats, TieredTable

__all__ = [
    "BudgetExceededError",
    "MemoryBudget",
    "TierConfig",
    "TierCostModel",
    "TierPolicy",
    "TierRuntime",
    "TierStats",
    "TieredTable",
    "HOT",
    "WARM",
    "COLD",
    "format_bytes",
    "get_block_codec",
    "parse_bytes",
]
