"""Byte budgets for tiered storage.

A :class:`MemoryBudget` is a shared ledger: every tiered table registers
its resident charges (hot block copies, quantized cold blocks) under a
``"<table>.<tier>"`` key and the ledger enforces that the sum never
exceeds the configured total.  ``total=None`` means unlimited (every
block may go hot), which is how the bit-identity tests run.

Budgets are *declared* in human units on the CLI (``--memory-budget 64M``)
and parsed here; all internal accounting is plain integer bytes.
"""

from __future__ import annotations

import math


class BudgetExceededError(RuntimeError):
    """A tier tried to charge bytes past the configured budget.

    The promotion policy reserves before materializing, so seeing this
    escape to a caller means tier bookkeeping is broken — it is a bug
    guard, not a control-flow signal.
    """


_UNITS = {
    "": 1,
    "B": 1,
    "K": 1024,
    "KB": 1024,
    "M": 1024**2,
    "MB": 1024**2,
    "G": 1024**3,
    "GB": 1024**3,
    "T": 1024**4,
    "TB": 1024**4,
}


def parse_bytes(value: "int | float | str | None") -> int | None:
    """Parse a byte budget: ``None``, an int, or ``"64M"``-style strings.

    Accepted suffixes (case-insensitive, optional ``B``): K, M, G, T —
    all binary (``1K == 1024``).  Non-positive budgets are rejected: a
    zero budget would pin every block warm forever, which callers should
    express by *not* enabling tiering (or use a 1-byte budget in tests
    that deliberately want an all-warm store).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise TypeError(f"memory budget must be bytes or a size string, got {value!r}")
    if isinstance(value, (int, float)):
        number, factor = float(value), 1
    else:
        text = value.strip().upper()
        idx = len(text)
        while idx > 0 and (text[idx - 1].isalpha()):
            idx -= 1
        suffix = text[idx:]
        if suffix not in _UNITS:
            raise ValueError(
                f"unknown byte suffix {suffix!r} in {value!r}; "
                f"use one of {sorted(u for u in _UNITS if u)}"
            )
        try:
            number = float(text[:idx])
        except ValueError:
            raise ValueError(f"cannot parse byte size {value!r}") from None
        factor = _UNITS[suffix]
    if not math.isfinite(number) or number <= 0:
        raise ValueError(f"memory budget must be positive and finite, got {value!r}")
    return int(number * factor)


def format_bytes(nbytes: int | None) -> str:
    """Human-readable rendering for reports (``None`` -> ``"unlimited"``)."""
    if nbytes is None:
        return "unlimited"
    size = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{size:.1f}GiB"  # pragma: no cover - loop always returns


class MemoryBudget:
    """Shared resident-byte ledger for a set of tiered tables.

    Charges are *absolute* per key (``set`` semantics, not deltas): after
    a rebalance pass each table re-declares its hot and cold footprints,
    which makes the ledger self-correcting — a missed release cannot
    accumulate drift.
    """

    def __init__(self, total: int | None) -> None:
        if total is not None:
            total = int(total)
            if total <= 0:
                raise ValueError(f"budget total must be positive, got {total}")
        self.total = total
        self._charges: dict[str, int] = {}

    @property
    def unlimited(self) -> bool:
        return self.total is None

    def used(self) -> int:
        return sum(self._charges.values())

    def remaining(self) -> int:
        if self.total is None:
            return 2**62  # effectively unbounded, still int math
        return self.total - self.used()

    def charge(self, key: str, nbytes: int) -> None:
        """Declare the current resident bytes for ``key``."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"cannot charge negative bytes for {key!r}: {nbytes}")
        previous = self._charges.get(key, 0)
        if self.total is not None and self.used() - previous + nbytes > self.total:
            raise BudgetExceededError(
                f"charging {nbytes}B to {key!r} exceeds budget "
                f"{self.total}B (used {self.used() - previous}B elsewhere)"
            )
        if nbytes == 0:
            self._charges.pop(key, None)
        else:
            self._charges[key] = nbytes

    def release(self, key: str) -> None:
        self._charges.pop(key, None)

    def fits(self, nbytes: int) -> bool:
        return self.total is None or nbytes <= self.remaining()

    def charges(self) -> dict[str, int]:
        """Snapshot of the ledger, sorted by key for stable reports."""
        return {k: self._charges[k] for k in sorted(self._charges)}

    def report(self) -> dict:
        return {
            "budget_bytes": self.total,
            "used_bytes": self.used(),
            "charges": self.charges(),
        }

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(total={format_bytes(self.total)}, "
            f"used={format_bytes(self.used())})"
        )
