"""Promotion/demotion policy and simulated cost model for tiered storage.

The policy transplants HugeCTR's HMEM-Cache control loop (SNIPPETS.md §1)
onto our row store:

* residency decisions happen at **pass** granularity, not per access —
  a pass is a fixed number of row accesses (``pass_rows``);
* each pass ranks **blocks** by an exponentially-decayed access count and
  installs the top-k affordable ones hot;
* when the observed hot hit rate already meets ``target_hit_rate`` the
  pass is skipped outright (HMEM-Cache's hit-rate short circuit);
* evictions per pass are bounded by ``max_evict_per_pass``
  (``max_num_evict``) so a workload shift churns the hot set gradually
  instead of thrashing it.

Block size is a real tension, not a free parameter: the Freebase
generator deliberately *permutes* hotness across entity ids, so a coarse
block averages hot and cold rows together and washes out the Zipf skew
the hot tier exists to exploit.  The ``memory-tiering`` experiment
measures this directly (hit rate vs ``block_rows``); the default of 64
rows keeps mapping overhead low while preserving most of the skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.simclock import SimClock
from repro.utils.validation import check_fraction, check_positive

#: Valid cold-tier codecs (names resolve via :mod:`repro.tier.quant`).
COLD_CODECS = ("none", "fp16", "int8")


@dataclass(frozen=True)
class TierPolicy:
    """Knobs governing block residency.

    Parameters
    ----------
    block_rows:
        Rows per residency block.  Promotion, demotion and quantization
        all move whole blocks.
    pass_rows:
        Row accesses (reads + writes) between rebalance passes.
    target_hit_rate:
        Skip a pass when the hot tier already served at least this
        fraction of the window's accesses.
    max_evict_per_pass:
        Upper bound on hot-block *evictions* per pass.  Promotions into
        free hot capacity are unbounded (initial fill must not crawl).
    decay:
        Multiplier applied to historical block counts each pass (an
        exponential half-life over passes).
    cold_after_passes:
        A warm block untouched for this many consecutive passes becomes
        a quantization candidate.
    cold_codec:
        ``"none"`` disables the cold tier (blocks stay warm/exact);
        ``"fp16"``/``"int8"`` quantize idle blocks with the wire codecs
        of :mod:`repro.ps.compression` — lossy until next written.
    """

    block_rows: int = 64
    pass_rows: int = 32768
    target_hit_rate: float = 0.9
    max_evict_per_pass: int = 64
    decay: float = 0.5
    cold_after_passes: int = 2
    cold_codec: str = "int8"

    def __post_init__(self) -> None:
        check_positive("block_rows", self.block_rows)
        check_positive("pass_rows", self.pass_rows)
        check_fraction("target_hit_rate", self.target_hit_rate)
        check_positive("max_evict_per_pass", self.max_evict_per_pass)
        check_fraction("decay", self.decay)
        check_positive("cold_after_passes", self.cold_after_passes)
        if self.cold_codec not in COLD_CODECS:
            raise ValueError(
                f"cold_codec must be one of {COLD_CODECS}, got {self.cold_codec!r}"
            )


@dataclass(frozen=True)
class TierCostModel:
    """Simulated cost of tier traffic, charged to ``tier.*`` clock categories.

    The numbers model a single NVMe-class device backing the warm tier
    (sequential block I/O) and one CPU core running the cold codec; they
    exist so experiments can report an honest time split, not to predict
    any particular box.
    """

    #: Warm-tier (memmap) read bandwidth, bytes/second.
    read_bandwidth: float = 2.0e9
    #: Warm-tier write(back) bandwidth, bytes/second.
    write_bandwidth: float = 1.2e9
    #: Cold codec throughput, elements/second (quant and dequant alike).
    codec_throughput: float = 4.0e8
    #: Fixed latency per tier operation (syscall + mapping overhead).
    op_latency: float = 2.0e-5

    def __post_init__(self) -> None:
        check_positive("read_bandwidth", self.read_bandwidth)
        check_positive("write_bandwidth", self.write_bandwidth)
        check_positive("codec_throughput", self.codec_throughput)
        if self.op_latency < 0:
            raise ValueError(f"op_latency must be >= 0, got {self.op_latency}")

    def read_seconds(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.op_latency + nbytes / self.read_bandwidth

    def write_seconds(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.op_latency + nbytes / self.write_bandwidth

    def codec_seconds(self, elements: int) -> float:
        if elements <= 0:
            return 0.0
        return self.op_latency + elements / self.codec_throughput


class TierMeter:
    """Routes tier costs into a :class:`SimClock` under ``tier.*`` categories.

    Categories:

    * ``tier.warm``      — demand reads served from the memmap;
    * ``tier.dequant``   — demand reads decoded from cold blocks;
    * ``tier.promote``   — rebalance-time loads into the hot tier;
    * ``tier.writeback`` — hot-eviction writes back to the memmap;
    * ``tier.quant``     — warm->cold encodes;
    * ``tier.grow``      — file extension for streaming vocab growth.
    """

    WARM = "tier.warm"
    DEQUANT = "tier.dequant"
    PROMOTE = "tier.promote"
    WRITEBACK = "tier.writeback"
    QUANT = "tier.quant"
    GROW = "tier.grow"

    def __init__(self, cost: TierCostModel, clock: SimClock | None = None) -> None:
        self.cost = cost
        self.clock = clock if clock is not None else SimClock()

    def warm_read(self, nbytes: int) -> None:
        self.clock.advance(self.cost.read_seconds(nbytes), self.WARM)

    def dequant(self, elements: int) -> None:
        self.clock.advance(self.cost.codec_seconds(elements), self.DEQUANT)

    def promote(self, nbytes: int) -> None:
        self.clock.advance(self.cost.read_seconds(nbytes), self.PROMOTE)

    def writeback(self, nbytes: int) -> None:
        self.clock.advance(self.cost.write_seconds(nbytes), self.WRITEBACK)

    def quant(self, elements: int) -> None:
        self.clock.advance(self.cost.codec_seconds(elements), self.QUANT)

    def grow(self, nbytes: int) -> None:
        self.clock.advance(self.cost.write_seconds(nbytes), self.GROW)

    @property
    def elapsed(self) -> float:
        return self.clock.elapsed

    def breakdown(self) -> dict[str, float]:
        return {
            name: seconds
            for name, seconds in sorted(self.clock.by_category.items())
            if name.startswith("tier.")
        }


__all__ = ["COLD_CODECS", "TierCostModel", "TierMeter", "TierPolicy"]
