"""Cold-tier block codecs.

The cold tier stores *encoded* blocks (the full-precision copy is
abandoned), so unlike the wire codecs in :mod:`repro.ps.compression` —
which only need ``roundtrip`` — these codecs keep the encoded form and
decode on demand.  The arithmetic is deliberately identical to the wire
codecs: ``decode(encode(rows))`` is bit-equal to
``get_compressor(name).roundtrip(rows)``, which the tests pin.  That
makes the accuracy story composable: a cold read is exactly one wire
round-trip's worth of quantization error, no new error model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

_INT8_LEVELS = 255  # must match Int8Compression._levels


@dataclass(frozen=True)
class EncodedBlock:
    """One quantized block: codec-specific payload + its resident size."""

    payload: tuple
    nbytes: int
    rows: int
    width: int


class BlockCodec(ABC):
    """Encode/decode whole residency blocks for the cold tier."""

    name: str = "base"

    @abstractmethod
    def encode(self, rows: np.ndarray) -> EncodedBlock: ...

    @abstractmethod
    def decode(self, block: EncodedBlock) -> np.ndarray:
        """Reconstruct float64 rows (a fresh array, safe to mutate)."""

    @abstractmethod
    def bytes_per_row(self, width: int) -> int:
        """Resident bytes per encoded row, for budget planning."""


class Fp16BlockCodec(BlockCodec):
    """Half-precision cold storage: 2 bytes/element."""

    name = "fp16"

    def encode(self, rows: np.ndarray) -> EncodedBlock:
        half = np.asarray(rows, dtype=np.float64).astype(np.float16)
        return EncodedBlock(
            payload=(half,),
            nbytes=int(half.nbytes),
            rows=rows.shape[0],
            width=rows.shape[1],
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        (half,) = block.payload
        return half.astype(np.float64)

    def bytes_per_row(self, width: int) -> int:
        return 2 * width


class Int8BlockCodec(BlockCodec):
    """Per-row linear 8-bit quantization: 1 byte/element + 16 bytes/row.

    Mirrors ``Int8Compression.roundtrip`` exactly — same per-row min/max
    range, same degenerate-row span guard, same reconstruction order of
    operations — but keeps ``(q, lo, span)`` instead of decoding eagerly.
    """

    name = "int8"

    def encode(self, rows: np.ndarray) -> EncodedBlock:
        rows = np.asarray(rows, dtype=np.float64)
        lo = rows.min(axis=1, keepdims=True)
        hi = rows.max(axis=1, keepdims=True)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        q = np.round((rows - lo) / span * _INT8_LEVELS).astype(np.uint8)
        nbytes = int(q.nbytes + lo.nbytes + span.nbytes)
        return EncodedBlock(
            payload=(q, lo, span),
            nbytes=nbytes,
            rows=rows.shape[0],
            width=rows.shape[1],
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        q, lo, span = block.payload
        return lo + q.astype(np.float64) / _INT8_LEVELS * span

    def bytes_per_row(self, width: int) -> int:
        return width + 16


_CODECS = {
    "fp16": Fp16BlockCodec,
    "int8": Int8BlockCodec,
}


def get_block_codec(name: str) -> BlockCodec | None:
    """Codec by name; ``"none"`` returns ``None`` (cold tier disabled)."""
    if name == "none":
        return None
    try:
        return _CODECS[name]()
    except KeyError:
        raise KeyError(
            f"unknown cold codec {name!r}; available: ['none', 'fp16', 'int8']"
        ) from None
