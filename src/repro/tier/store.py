"""The tiered row store: one table, three residency tiers.

A :class:`TieredTable` is a drop-in stand-in for the dense ``(rows, width)``
float64 ndarray a :class:`~repro.ps.kvstore.ShardedKVStore` normally holds.
It supports the exact access idioms the rest of the codebase uses on raw
tables — ``table[ids]``, ``table[ids] -= step`` (which Python expands to
``__getitem__``/``__setitem__``, so the sparse optimizers work unmodified),
``len(table)``, ``table.shape``, ``np.asarray(table)`` — while keeping only
a budgeted fraction of rows resident.

Residency is tracked per *block* of ``policy.block_rows`` consecutive rows:

* **hot** blocks live in a :class:`~repro.cache.table.CacheTable` whose
  "rows" are whole flattened blocks (``block_rows * width`` floats), so
  promotion reuses the cache's sorted-id + searchsorted slot map instead
  of inventing a second index structure.  While a block is hot its cache
  copy is authoritative and the memmap copy is stale.
* **warm** blocks live only in the authoritative ``np.memmap`` file.
  Reads are exact and charged simulated I/O.
* **cold** blocks exist only as quantized payloads
  (:mod:`repro.tier.quant`); the full-precision copy is abandoned, so
  reads are lossy (exactly one wire-codec round-trip of error) until the
  block is next written.  Writing to a cold block first revives it warm.

Counters are maintained per block and a rebalance pass runs every
``policy.pass_rows`` accesses; see :mod:`repro.tier.policy` for the
control loop's HMEM-Cache lineage.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.cache.table import CacheTable
from repro.obs.tracer import NULL_SCOPE, TraceScope
from repro.tier.budget import MemoryBudget
from repro.tier.policy import TierMeter, TierPolicy
from repro.tier.quant import BlockCodec, EncodedBlock, get_block_codec

#: Per-block residency states (int8 codes in :attr:`TieredTable._state`).
WARM, HOT, COLD = 0, 1, 2


@dataclass
class TierStats:
    """Cumulative row/block movement counters for one tiered table."""

    hot_rows: int = 0
    warm_rows: int = 0
    cold_rows: int = 0
    passes: int = 0
    skipped_passes: int = 0
    promoted_blocks: int = 0
    promoted_from_cold: int = 0
    evicted_blocks: int = 0
    encoded_blocks: int = 0
    writeback_bytes: int = 0
    promote_bytes: int = 0
    grow_rows: int = 0
    grow_bytes_written: int = 0

    @property
    def accesses(self) -> int:
        return self.hot_rows + self.warm_rows + self.cold_rows

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hot_rows / self.accesses

    def as_dict(self) -> dict:
        return {
            "hot_rows": self.hot_rows,
            "warm_rows": self.warm_rows,
            "cold_rows": self.cold_rows,
            "accesses": self.accesses,
            "hit_ratio": self.hit_ratio,
            "passes": self.passes,
            "skipped_passes": self.skipped_passes,
            "promoted_blocks": self.promoted_blocks,
            "promoted_from_cold": self.promoted_from_cold,
            "evicted_blocks": self.evicted_blocks,
            "encoded_blocks": self.encoded_blocks,
            "writeback_bytes": self.writeback_bytes,
            "promote_bytes": self.promote_bytes,
            "grow_rows": self.grow_rows,
            "grow_bytes_written": self.grow_bytes_written,
        }


class TieredTable:
    """A budgeted hot/warm/cold row store masquerading as a dense table.

    Parameters
    ----------
    array:
        Initial table contents; copied into the backing file (the caller's
        array is not retained).
    name:
        Table name (``"entity"``/``"relation"``); used for budget-ledger
        keys and reports.
    path:
        Backing memmap file, created (and truncated) by the constructor.
    budget:
        The shared :class:`MemoryBudget` ledger this table reports into.
    slice_bytes:
        This table's share of the budget (``None`` = unlimited).  The
        runtime splits the total proportionally to logical table size so
        two tables never race for the same bytes.
    policy, meter:
        Residency policy and the SimClock-charging cost meter.
    """

    def __init__(
        self,
        array: np.ndarray,
        *,
        name: str,
        path: str | os.PathLike[str],
        budget: MemoryBudget,
        slice_bytes: int | None,
        policy: TierPolicy,
        meter: TierMeter,
    ) -> None:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D table, got shape {array.shape}")
        self.name = name
        self.policy = policy
        self.meter = meter
        self._budget = budget
        self._slice = None if slice_bytes is None else int(slice_bytes)
        self._codec: BlockCodec | None = get_block_codec(policy.cold_codec)
        self._path = os.fspath(path)
        self._width = int(array.shape[1])
        self._block = int(policy.block_rows)
        self._block_bytes = self._block * self._width * 8
        self._rows = int(array.shape[0])
        padded = self._padded_rows(self._rows)
        self._mm = np.memmap(
            self._path, dtype=np.float64, mode="w+", shape=(padded, self._width)
        )
        if self._rows:
            self._mm[: self._rows] = array
        nblocks = padded // self._block
        self._state = np.full(nblocks, WARM, dtype=np.int8)
        self._counts = np.zeros(nblocks, dtype=np.float64)
        self._window = np.zeros(nblocks, dtype=np.float64)
        self._idle = np.zeros(nblocks, dtype=np.int64)
        self._hot = CacheTable(
            self._hot_capacity(nblocks), self._block * self._width
        )
        self._cold: dict[int, EncodedBlock] = {}
        self._cold_bytes = 0
        self._accesses_window = 0
        self._hot_hits_window = 0
        self.stats = TierStats()
        self._trace: TraceScope = NULL_SCOPE
        self._closed = False

    # ------------------------------------------------------------ array facade

    @property
    def shape(self) -> tuple[int, int]:
        return (self._rows, self._width)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def nbytes(self) -> int:
        """Logical dense size — what the table *would* occupy resident."""
        return self._rows * self._width * 8

    def __len__(self) -> int:
        return self._rows

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = self.materialize()
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return arr

    def copy(self) -> np.ndarray:
        """Dense snapshot (used by fault-recovery shadowing)."""
        return self.materialize()

    def __getitem__(self, key):
        if isinstance(key, slice):
            ids = np.arange(*key.indices(self._rows), dtype=np.int64)
            return self._fetch(ids, count=False)
        if isinstance(key, (int, np.integer)):
            return self.read(np.asarray([key], dtype=np.int64))[0]
        arr = np.asarray(key)
        if arr.dtype == bool:
            return self.read(np.flatnonzero(arr))
        ids = arr.astype(np.int64, copy=False)
        if ids.ndim == 1:
            return self.read(ids)
        flat = self.read(ids.ravel())
        return flat.reshape(ids.shape + (self._width,))

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            start, stop, step = key.indices(self._rows)
            if (start, stop, step) == (0, self._rows, 1):
                self._overwrite_all(value)
                return
            ids = np.arange(start, stop, step, dtype=np.int64)
        elif isinstance(key, (int, np.integer)):
            ids = np.asarray([key], dtype=np.int64)
            value = np.asarray(value, dtype=np.float64).reshape(1, -1)
        else:
            arr = np.asarray(key)
            ids = (
                np.flatnonzero(arr)
                if arr.dtype == bool
                else arr.astype(np.int64, copy=False).ravel()
            )
        rows = np.asarray(value, dtype=np.float64)
        if rows.ndim != 2 or len(rows) != len(ids):
            rows = np.broadcast_to(rows, (len(ids), self._width))
        self.write(ids, rows)

    # ------------------------------------------------------------------- reads

    def read(self, ids: np.ndarray) -> np.ndarray:
        """Rows for ``ids`` (fresh array), counting hotness and tier hits."""
        out = self._fetch(np.asarray(ids, dtype=np.int64), count=True)
        self._maybe_rebalance()
        return out

    def _fetch(self, ids: np.ndarray, *, count: bool) -> np.ndarray:
        n = len(ids)
        out = np.empty((n, self._width), dtype=np.float64)
        if n == 0:
            return out
        ids = self._normalize(ids)
        blocks = ids // self._block
        offs = ids - blocks * self._block
        mask, slots = self._hot.lookup(blocks)
        hits = int(mask.sum())
        if hits:
            hot3 = self._hot.rows_view().reshape(-1, self._block, self._width)
            out[mask] = hot3[slots[mask], offs[mask]]
        misses = n - hits
        if misses:
            pos = np.flatnonzero(~mask)
            cold_sel = self._state[blocks[pos]] == COLD
            warm_pos = pos[~cold_sel]
            if len(warm_pos):
                out[warm_pos] = self._mm[ids[warm_pos]]
                self.meter.warm_read(len(warm_pos) * self._width * 8)
            cold_pos = pos[cold_sel]
            if len(cold_pos):
                cblocks = blocks[cold_pos]
                decoded = 0
                for b in np.unique(cblocks):
                    rows = self._decode_cold(int(b))
                    sel = cold_pos[cblocks == b]
                    out[sel] = rows[offs[sel]]
                    decoded += 1
                self.meter.dequant(decoded * self._block * self._width)
            if count:
                self.stats.warm_rows += len(warm_pos)
                self.stats.cold_rows += len(cold_pos)
        if count:
            self.stats.hot_rows += hits
            self._window += np.bincount(blocks, minlength=len(self._window))
            self._accesses_window += n
            self._hot_hits_window += hits
        return out

    def materialize(self) -> np.ndarray:
        """Dense float64 copy of the whole logical table.

        Values read exactly as demand reads would: hot blocks from their
        cache copy, cold blocks decoded.  Not metered — bulk snapshots
        (checkpoint, eval tables) carry their own cost accounting.
        """
        out = np.array(self._mm[: self._rows], dtype=np.float64)
        hot_ids = self._hot.ids
        if len(hot_ids):
            hot3 = self._hot.rows_view().reshape(-1, self._block, self._width)
            slots = self._hot.slot_of(hot_ids)
            for b, s in zip(hot_ids.tolist(), slots.tolist()):
                lo = b * self._block
                hi = min(lo + self._block, self._rows)
                out[lo:hi] = hot3[s, : hi - lo]
        for b in sorted(self._cold):
            rows = self._decode_cold(b)
            lo = b * self._block
            hi = min(lo + self._block, self._rows)
            out[lo:hi] = rows[: hi - lo]
        return out

    # ------------------------------------------------------------------ writes

    def write(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite rows ``ids`` with ``rows``, counting accesses."""
        ids = np.asarray(ids, dtype=np.int64)
        n = len(ids)
        if n == 0:
            return
        ids = self._normalize(ids)
        rows = np.asarray(rows, dtype=np.float64)
        blocks = ids // self._block
        offs = ids - blocks * self._block
        mask, slots = self._hot.lookup(blocks)
        hits = int(mask.sum())
        if hits:
            hot3 = self._hot.rows_view().reshape(-1, self._block, self._width)
            hot3[slots[mask], offs[mask]] = rows[mask]
        if n - hits:
            pos = np.flatnonzero(~mask)
            cold_blocks = np.unique(blocks[pos][self._state[blocks[pos]] == COLD])
            for b in cold_blocks:
                self._revive_cold(int(b))
            self._mm[ids[pos]] = rows[pos]
            self.meter.writeback(len(pos) * self._width * 8)
            self.stats.warm_rows += len(pos)
        self.stats.hot_rows += hits
        self._window += np.bincount(blocks, minlength=len(self._window))
        self._accesses_window += n
        self._hot_hits_window += hits
        self._maybe_rebalance()

    def _overwrite_all(self, value) -> None:
        """``table[:] = value`` — checkpoint restore.

        Everything lands exact: the memmap becomes authoritative for warm
        blocks, hot copies are refreshed from the new values, and cold
        blocks are dropped (revived warm) since their quantized payloads
        no longer describe the table.
        """
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self._rows, self._width):
            raise ValueError(
                f"cannot assign shape {value.shape} to table of shape {self.shape}"
            )
        self._mm[: self._rows] = value
        if self._cold:
            self._state[np.fromiter(self._cold, dtype=np.int64)] = WARM
            self._cold.clear()
            self._cold_bytes = 0
        hot_ids = self._hot.ids
        if len(hot_ids):
            self._hot.install(hot_ids, self._gather_mm_blocks(hot_ids))
        self._charge_budget()

    # ------------------------------------------------------------------ growth

    def grow(self, rows: np.ndarray) -> None:
        """Append rows by extending the backing file in place.

        Streaming vocab growth must not rewrite the shard: the file is
        ``truncate``-extended and the memmap reopened at the larger shape,
        so only the appended bytes are written
        (:attr:`TierStats.grow_bytes_written` pins this in tests).
        """
        rows = np.asarray(rows, dtype=np.float64).reshape(-1, self._width)
        n_new = len(rows)
        if n_new == 0:
            return
        old_rows = self._rows
        # The trailing partial block may have resident copies whose padding
        # region the new rows land in; demote it warm so the append is seen.
        if old_rows % self._block:
            self._demote_block_to_warm(old_rows // self._block)
        new_rows = old_rows + n_new
        new_padded = self._padded_rows(new_rows)
        if new_padded > len(self._mm):
            self._mm.flush()
            with open(self._path, "r+b") as f:
                f.truncate(new_padded * self._width * 8)
            self._mm = np.memmap(
                self._path,
                dtype=np.float64,
                mode="r+",
                shape=(new_padded, self._width),
            )
            grown = new_padded // self._block - len(self._state)
            self._state = np.concatenate(
                [self._state, np.full(grown, WARM, dtype=np.int8)]
            )
            self._counts = np.concatenate([self._counts, np.zeros(grown)])
            self._window = np.concatenate([self._window, np.zeros(grown)])
            self._idle = np.concatenate(
                [self._idle, np.zeros(grown, dtype=np.int64)]
            )
        self._mm[old_rows:new_rows] = rows
        self._rows = new_rows
        self.stats.grow_rows += n_new
        self.stats.grow_bytes_written += n_new * self._width * 8
        self.meter.grow(n_new * self._width * 8)
        new_cap = self._hot_capacity(len(self._state))
        if new_cap > self._hot.capacity:
            members = self._hot.ids
            replacement = CacheTable(new_cap, self._block * self._width)
            if len(members):
                replacement.install(members, self._hot.get(members))
            self._hot = replacement

    # --------------------------------------------------------------- rebalance

    def _maybe_rebalance(self) -> None:
        if self._accesses_window >= self.policy.pass_rows:
            self.rebalance()

    def rebalance(self) -> None:
        """Run one promotion/demotion pass now (normally automatic)."""
        with self._trace.span("tier.rebalance", "tier", table=self.name) as span:
            self.stats.passes += 1
            accesses = self._accesses_window
            hit_rate = (
                self._hot_hits_window / accesses if accesses else 1.0
            )
            self._counts *= self.policy.decay
            self._counts += self._window
            touched = self._window > 0
            self._idle = np.where(touched, 0, self._idle + 1)
            skipped = bool(accesses) and hit_rate >= self.policy.target_hit_rate
            if skipped:
                self.stats.skipped_passes += 1
                promoted = evicted = encoded = 0
            else:
                promoted, evicted = self._repack()
                encoded = self._sweep_cold()
            self._window[:] = 0.0
            self._accesses_window = 0
            self._hot_hits_window = 0
            self._charge_budget()
            span.set(
                hit_rate=hit_rate,
                skipped=skipped,
                promoted=promoted,
                evicted=evicted,
                encoded=encoded,
                hot_blocks=len(self._hot),
                cold_blocks=len(self._cold),
            )

    def _repack(self) -> tuple[int, int]:
        """Re-derive the hot membership from decayed counts.

        Deterministic: blocks rank by ``(-count, block_id)`` via lexsort,
        evictions take the coldest current members first, and the final
        membership is installed in ascending block order.
        """
        counts = self._counts
        n = len(counts)
        k_max = self._affordable_hot_blocks()
        order = np.lexsort((np.arange(n), -counts))
        ranked = order[counts[order] > 0.0]
        desired = ranked[:k_max]
        cur = self._hot.ids
        not_desired = cur[~np.isin(cur, desired)]
        # Eviction is bounded for churn, but the budget bound must win: if
        # affordability shrank (cold grew), evict enough to fit regardless.
        min_evict = max(0, len(cur) - k_max)
        n_evict = max(
            min(len(not_desired), self.policy.max_evict_per_pass), min_evict
        )
        if n_evict and len(not_desired):
            ev_order = np.lexsort((not_desired, counts[not_desired]))
            to_evict = not_desired[ev_order[:n_evict]]
        else:
            to_evict = not_desired[:0]
        if len(to_evict):
            self._writeback_blocks(to_evict)
        keep = cur[~np.isin(cur, to_evict)]
        room = k_max - len(keep)
        cand = desired[~np.isin(desired, cur)]
        promote = cand[: max(0, room)]
        new_ids = np.concatenate([keep, promote])
        new_rows = np.empty(
            (len(new_ids), self._block * self._width), dtype=np.float64
        )
        if len(keep):
            new_rows[: len(keep)] = self._hot.get(keep)
        if len(promote):
            from_cold = self._state[promote] == COLD
            warm_promote = promote[~from_cold]
            if len(warm_promote):
                sel = np.flatnonzero(~from_cold) + len(keep)
                new_rows[sel] = self._gather_mm_blocks(warm_promote)
                self.meter.promote(len(warm_promote) * self._block_bytes)
                self.stats.promote_bytes += len(warm_promote) * self._block_bytes
            cold_promote = promote[from_cold]
            for i, b in zip(np.flatnonzero(from_cold) + len(keep), cold_promote):
                new_rows[i] = self._pop_cold(int(b)).ravel()
            if len(cold_promote):
                self.meter.dequant(
                    len(cold_promote) * self._block * self._width
                )
                self.stats.promoted_from_cold += len(cold_promote)
        final = np.argsort(new_ids, kind="stable")
        self._hot.install(new_ids[final], new_rows[final])
        self._state[to_evict] = WARM
        self._state[new_ids] = HOT
        self.stats.promoted_blocks += len(promote)
        self.stats.evicted_blocks += len(to_evict)
        return len(promote), len(to_evict)

    def _sweep_cold(self) -> int:
        """Quantize long-idle warm blocks, coldest first, while they fit."""
        if self._codec is None:
            return 0
        cand = np.flatnonzero(
            (self._state == WARM) & (self._idle >= self.policy.cold_after_passes)
        )
        if not len(cand):
            return 0
        cand = cand[np.lexsort((cand, self._counts[cand]))]
        enc_bytes = self._codec.bytes_per_row(self._width) * self._block
        n_new = min(len(cand), self.policy.max_evict_per_pass)
        if self._slice is not None:
            hot_bytes = len(self._hot) * self._block_bytes
            room = self._slice - hot_bytes - self._cold_bytes
            n_new = min(n_new, max(0, int(room // enc_bytes)))
        for b in cand[:n_new].tolist():
            enc = self._codec.encode(
                np.asarray(self._mm[b * self._block : (b + 1) * self._block])
            )
            self._cold[b] = enc
            self._cold_bytes += enc.nbytes
            self._state[b] = COLD
        if n_new:
            self.meter.quant(n_new * self._block * self._width)
            self.stats.encoded_blocks += n_new
        return int(n_new)

    # --------------------------------------------------------------- reporting

    def hot_fraction(self) -> float:
        """Fraction of logical rows currently in the hot tier."""
        if self._rows == 0:
            return 0.0
        return min(1.0, len(self._hot) * self._block / self._rows)

    def resident_bytes(self) -> int:
        return len(self._hot) * self._block_bytes + self._cold_bytes

    def report(self) -> dict:
        nblocks = len(self._state)
        return {
            "backing": "tiered",
            "rows": self._rows,
            "width": self._width,
            "block_rows": self._block,
            "blocks": nblocks,
            "hot_blocks": len(self._hot),
            "cold_blocks": len(self._cold),
            "warm_blocks": nblocks - len(self._hot) - len(self._cold),
            "hot_bytes": len(self._hot) * self._block_bytes,
            "cold_bytes": self._cold_bytes,
            "resident_bytes": self.resident_bytes(),
            "logical_bytes": self.nbytes,
            "file_bytes": int(self._mm.nbytes),
            "slice_bytes": self._slice,
            "hot_fraction": self.hot_fraction(),
            **self.stats.as_dict(),
        }

    def bind_trace(self, scope: TraceScope) -> None:
        self._trace = scope

    def close(self) -> None:
        """Flush and unmap the backing file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._mm.flush()
        mmap_obj = getattr(self._mm, "_mmap", None)
        self._mm = np.empty((0, self._width), dtype=np.float64)
        if mmap_obj is not None:
            mmap_obj.close()

    # ----------------------------------------------------------------- private

    def _padded_rows(self, rows: int) -> int:
        blocks = max(1, -(-rows // self._block))
        return blocks * self._block

    def _hot_capacity(self, nblocks: int) -> int:
        if self._slice is None:
            return nblocks
        return min(nblocks, self._slice // self._block_bytes)

    def _affordable_hot_blocks(self) -> int:
        n = len(self._state)
        if self._slice is None:
            return n
        k = int((self._slice - self._cold_bytes) // self._block_bytes)
        return min(max(0, k), self._hot.capacity, n)

    def _normalize(self, ids: np.ndarray) -> np.ndarray:
        lo = int(ids.min())
        if lo < 0:
            ids = np.where(ids < 0, ids + self._rows, ids)
            lo = int(ids.min())
        if lo < 0 or int(ids.max()) >= self._rows:
            raise IndexError(
                f"ids out of range for table with {self._rows} rows"
            )
        return ids

    def _gather_mm_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Flattened ``(k, block_rows*width)`` rows for blocks, from mmap."""
        idx = (
            blocks[:, None] * self._block + np.arange(self._block)[None, :]
        ).ravel()
        return np.asarray(self._mm[idx]).reshape(len(blocks), -1)

    def _writeback_blocks(self, blocks: np.ndarray) -> None:
        rows = self._hot.get(blocks).reshape(-1, self._block, self._width)
        for i, b in enumerate(blocks.tolist()):
            self._mm[b * self._block : (b + 1) * self._block] = rows[i]
        nbytes = len(blocks) * self._block_bytes
        self.meter.writeback(nbytes)
        self.stats.writeback_bytes += nbytes

    def _decode_cold(self, block: int) -> np.ndarray:
        assert self._codec is not None
        return self._codec.decode(self._cold[block])

    def _pop_cold(self, block: int) -> np.ndarray:
        rows = self._decode_cold(block)
        enc = self._cold.pop(block)
        self._cold_bytes -= enc.nbytes
        return rows

    def _revive_cold(self, block: int) -> None:
        """Write a cold block's decoded values back to the memmap (warm)."""
        rows = self._pop_cold(block)
        self._mm[block * self._block : (block + 1) * self._block] = rows
        self._state[block] = WARM
        self.meter.dequant(self._block * self._width)

    def _demote_block_to_warm(self, block: int) -> None:
        state = int(self._state[block])
        if state == HOT:
            members = self._hot.ids
            keep = members[members != block]
            # Fetch surviving rows before install() reshuffles the backing
            # array, and write the demoted block back while it is still hot.
            keep_rows = (
                self._hot.get(keep)
                if len(keep)
                else np.empty((0, self._block * self._width))
            )
            self._writeback_blocks(np.asarray([block], dtype=np.int64))
            self._hot.install(keep, keep_rows)
            self._state[block] = WARM
        elif state == COLD:
            self._revive_cold(block)

    def _charge_budget(self) -> None:
        self._budget.charge(
            f"{self.name}.hot", len(self._hot) * self._block_bytes
        )
        self._budget.charge(f"{self.name}.cold", self._cold_bytes)

    def __repr__(self) -> str:
        return (
            f"TieredTable(name={self.name!r}, rows={self._rows}, "
            f"width={self._width}, hot={len(self._hot)}, "
            f"cold={len(self._cold)}, blocks={len(self._state)})"
        )
