"""Shared utilities: seeding, simulated time, validation, table rendering."""

from repro.utils.rng import (
    derive_stream,
    make_rng,
    spawn_rngs,
    split_worker_streams,
    worker_stream,
)
from repro.utils.simclock import SimClock
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
)

__all__ = [
    "derive_stream",
    "make_rng",
    "spawn_rngs",
    "split_worker_streams",
    "worker_stream",
    "SimClock",
    "format_table",
    "check_fraction",
    "check_positive",
    "check_non_negative",
]
