"""Deterministic random number generation.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`.  This module is the single place that
creates them, so a whole experiment is reproducible from one integer seed.
"""

from __future__ import annotations

import numpy as np

#: Default seed used across examples and benchmarks.
DEFAULT_SEED = 20220406  # ICDE 2022 paper presentation week.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, ``None`` (uses :data:`DEFAULT_SEED`), or an
    existing generator, which is passed through unchanged so call sites can
    accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used to give each simulated worker its own stream so the behaviour of a
    worker does not depend on how many draws its peers made.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
