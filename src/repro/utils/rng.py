"""Deterministic random number generation.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`.  This module is the single place that
creates them, so a whole experiment is reproducible from one integer seed.
"""

from __future__ import annotations

import numpy as np

#: Default seed used across examples and benchmarks.
DEFAULT_SEED = 20220406  # ICDE 2022 paper presentation week.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, ``None`` (uses :data:`DEFAULT_SEED`), or an
    existing generator, which is passed through unchanged so call sites can
    accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def split_worker_streams(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent per-worker stream *seeds* from ``rng``.

    This is the single source of per-worker RNG derivation shared by the
    simulated trainer and the real-parallelism (:mod:`repro.mp`) backend:
    both draw the same integer seeds from the master generator, so a worker
    process given ``seeds[i]`` provably replays the exact draw sequence the
    simulator's in-process worker ``i`` makes.  Seeds (plain ints) rather
    than generators are returned because they cross process boundaries
    losslessly.

    The derivation is prefix-stable: ``split_worker_streams(rng, n)`` is a
    prefix of what ``split_worker_streams(rng, m)`` would have produced
    from the same generator state for ``m > n``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used to give each simulated worker its own stream so the behaviour of a
    worker does not depend on how many draws its peers made.  Equivalent to
    seeding a fresh generator from each :func:`split_worker_streams` seed.
    """
    return [np.random.default_rng(s) for s in split_worker_streams(rng, count)]


def worker_stream(seed: int, machine: int) -> np.random.Generator:
    """An independent stream for ``machine`` derived from a scalar ``seed``.

    Seeding with the ``[seed, machine]`` entropy sequence gives every
    machine its own stream without consuming draws from any shared
    generator — what a machine draws is a pure function of ``(seed,
    machine)``, independent of its peers.  Used by the fault injector (and
    available to any per-machine component that must not perturb the
    training streams).
    """
    return np.random.default_rng([int(seed), int(machine)])


def derive_stream(seed: int, salt: int) -> np.random.Generator:
    """A dedicated side-stream at ``seed + salt``.

    For components that need randomness decoupled from the training draw
    sequence (e.g. streaming ingestion's cold-start initialisation): the
    salt offsets the master seed so the side-stream never collides with the
    per-worker streams, and consuming from it cannot shift any other
    component's draws.
    """
    return make_rng(int(seed) + int(salt))
