"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module turns lists of rows into aligned, readable ASCII tables with no
third-party dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are rendered with ``precision`` decimals; everything else with
    ``str``.  Returns the table as a single string (no trailing newline).
    """
    rendered = [[_render_cell(v, precision) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
