"""Simulated per-machine clocks.

The paper's testbed is a 4-machine cluster on 1 Gbps Ethernet.  We replace
real hardware with an explicit cost model: every action a machine performs
(computing gradients, sending bytes over the network) advances its simulated
clock by the modelled duration.  Reported "training time" in experiments is
the maximum clock over all machines — the wall-clock time at which the
slowest machine finished, as in a real synchronously-finishing run.

Keeping time as an explicit accumulator makes runs deterministic and lets
tests assert exact communication/computation breakdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Accumulates simulated seconds, split by category.

    Categories are free-form strings; the experiments use ``"compute"`` and
    ``"communication"`` which directly produce the paper's Fig. 7 breakdown.
    """

    elapsed: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float, category: str = "compute") -> None:
        """Advance the clock by ``seconds`` attributed to ``category``.

        ``seconds`` must be finite and non-negative: a single ``NaN`` or
        ``inf`` (e.g. from a degenerate cost model) would otherwise poison
        ``elapsed`` for the rest of the run and silently invalidate every
        downstream time report.
        """
        if not math.isfinite(seconds):
            raise ValueError(f"cannot advance clock by non-finite time: {seconds}")
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self.elapsed += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds

    def category(self, name: str) -> float:
        """Total seconds spent in ``name`` (0.0 if never used)."""
        return self.by_category.get(name, 0.0)

    def fraction(self, name: str) -> float:
        """Share of total elapsed time spent in ``name``."""
        if self.elapsed == 0.0:
            return 0.0
        return self.by_category.get(name, 0.0) / self.elapsed

    def merge(self, other: "SimClock") -> None:
        """Fold another clock's time into this one (used for aggregation)."""
        self.elapsed += other.elapsed
        for name, seconds in other.by_category.items():
            self.by_category[name] = self.by_category.get(name, 0.0) + seconds

    def copy(self) -> "SimClock":
        return SimClock(self.elapsed, dict(self.by_category))

    def reset(self) -> None:
        self.elapsed = 0.0
        self.by_category.clear()


def max_clock(clocks: list[SimClock]) -> SimClock:
    """Return a copy of the clock with the largest elapsed time.

    In a data-parallel epoch every machine works concurrently, so the epoch
    finishes when the slowest machine does.
    """
    if not clocks:
        raise ValueError("max_clock requires at least one clock")
    slowest = max(clocks, key=lambda c: c.elapsed)
    return slowest.copy()
