"""Small argument-checking helpers used across the library.

These raise ``ValueError`` with a consistent message format so configuration
mistakes fail fast at construction time rather than deep inside a training
loop.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_fraction(name: str, value: float, inclusive: bool = True) -> None:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")


def check_in(name: str, value: str, allowed: tuple[str, ...]) -> None:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
