"""Shared vectorized array kernels for the training hot path.

``np.add.at`` (unbuffered ufunc scatter) dominates the backward pass and
optimizer profiles — it is safe with duplicate indices but slow.
``np.bincount`` performs the *same* accumulation (a single C loop over the
input, adding each weight to its bin strictly in input order) several times
faster.  Because per-bin additions happen in identical left-to-right order,
substituting one for the other is **bit-identical** for float64 payloads,
which is the contract the golden-run equivalence suite enforces.
"""

from __future__ import annotations

import numpy as np


def scatter_add_rows(
    indices: np.ndarray, rows: np.ndarray, n_out: int
) -> np.ndarray:
    """Row-wise scatter-add: the matrix ``out`` with
    ``out[indices[i]] += rows[i]`` for every ``i`` (duplicates accumulate).

    Equivalent to ``np.add.at(np.zeros((n_out, d)), indices, rows)`` but
    implemented as a *single* flattened ``np.bincount``: element ``(i, c)``
    of ``rows`` scatters into flat bin ``indices[i] * d + c``.  For any
    output cell, contributing inputs appear in ascending ``i`` — the same
    left-to-right order the ``np.add.at`` reference uses — so the float
    addition chains, and therefore the results, match exactly.
    """
    rows = np.asarray(rows, dtype=np.float64)
    d = rows.shape[1]
    if len(indices) == 0 or d == 0:
        return np.zeros((n_out, d), dtype=np.float64)
    flat_bins = (indices[:, None] * d + np.arange(d)).ravel()
    flat = np.bincount(flat_bins, weights=rows.ravel(), minlength=n_out * d)
    return flat.reshape(n_out, d)
