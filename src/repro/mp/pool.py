"""Process-pool primitives shared by the mp backend and ``--jobs``.

Two consumers, one contract:

* the ``--jobs`` parallel experiment runner
  (:mod:`repro.experiments.parallel`) maps hermetic experiment tasks over
  a pool and requires submission-order results so parallel reports are
  byte-identical to serial ones;
* the mp serving path fans measured query streams over frontend processes.

Both get :func:`process_map`: order-preserving, inline when ``jobs <= 1``
(no pool, no pickling — the exact same function objects run), and
exception-transparent (the first failing task's exception propagates and
the pool is torn down).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible ``--jobs`` auto value: one worker per available core.

    Prefers the scheduler affinity mask (what this process may actually
    use — containers routinely grant fewer cores than the host has) over
    the raw core count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def process_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    start_method: str | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order in the result.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one argument.
    items:
        Task inputs; each must be picklable when ``jobs > 1``.
    jobs:
        Worker process count.  ``jobs <= 1`` runs everything inline in
        this process — same function, same order, no pool overhead.
    start_method:
        Optional ``multiprocessing`` start method for the pool
        (``"spawn"``/``"fork"``/``"forkserver"``); ``None`` keeps the
        platform default.

    Any task exception propagates to the caller (remaining futures are
    abandoned when the pool shuts down).
    """
    tasks: Sequence[T] = list(items)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    ctx = None
    if start_method is not None:
        import multiprocessing

        ctx = multiprocessing.get_context(start_method)
    results: list[Any] = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)), mp_context=ctx
    ) as pool:
        futures = [pool.submit(fn, task) for task in tasks]
        for index, future in enumerate(futures):
            results[index] = future.result()
    return results
