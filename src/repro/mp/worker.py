"""Child-process side of the mp training backend.

Each worker process rebuilds its slice of the simulated cluster from a
picklable :class:`WorkerSpec` — integer RNG seeds, the pickled triple
array, and shared-memory segment names — then runs the *same*
:meth:`repro.core.worker.Worker.step` loop the simulator runs, against the
parent's tables:

* ``schedule="sync"``: a global turn counter serializes steps in exactly
  the simulator's round-robin order (worker 0 step 1, worker 1 step 1, …),
  so every pull sees precisely the table state it would have seen in the
  simulator — bit-identical losses, clocks, and traffic, at the cost of
  zero overlap (it is the oracle, not the fast path).
* ``schedule="async"``: hogwild.  Workers free-run; a shared progress
  array bounds how far any worker may run ahead of the slowest
  (``staleness_bound`` steps, defaulting to the cache's sync period ``P``
  — the same budget the staleness-overrun counters measure), which keeps
  effective staleness in the regime the paper's bounded-staleness
  synchronization assumes.

Wall-clock accounting: the worker's :class:`~repro.ps.server.
ParameterServer` is wrapped in a :class:`WallClockChannel` that times real
seconds spent inside pull/push, and every protocol wait (turn, staleness,
barrier) is accumulated as stall time.  Both land in the final report for
:func:`repro.obs.reconcile.reconcile` to compare against the simulated
clock's predictions.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.telemetry import Telemetry
from repro.core.trainer import build_worker
from repro.kg.graph import KnowledgeGraph
from repro.models.base import get_model
from repro.models.losses import get_loss
from repro.mp.shm import SharedArena
from repro.optim import get_optimizer
from repro.ps.compression import get_compressor
from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import NetworkModel
from repro.ps.server import ParameterServer

#: How long a blocked protocol wait sleeps between abort checks (seconds).
_POLL_S = 0.02

#: Exit code of a deliberately crashed worker (test hook).
CRASH_EXIT_CODE = 3


class WorkerAborted(Exception):
    """Raised inside a child when the run is being torn down."""


@dataclass
class WorkerSpec:
    """Everything one child needs to rebuild its worker (all picklable)."""

    rank: int  # index in the spawned-worker order (== sim worker order)
    machine: int  # machine id (decides embedding locality)
    num_workers: int
    config: Any  # TrainingConfig (a plain dataclass)
    triples: np.ndarray  # full training graph triples
    num_entities: int
    num_relations: int
    triple_idx: np.ndarray  # this machine's partition
    entity_owner: np.ndarray
    neg_seed: int
    sampler_seed: int
    iterations: int  # steps per epoch (global max, like the simulator)
    schedule: str  # "sync" | "async"
    staleness_bound: int
    shm_specs: dict[str, dict] = field(default_factory=dict)
    collect_telemetry: bool = False
    crash_at_step: tuple[int, int] | None = None  # (rank, step) test hook


class MPControls:
    """Synchronization primitives shared by parent and children.

    Built from one multiprocessing context and passed to every child at
    spawn time (all of these are picklable-by-inheritance).

    The epoch handshake is deliberately barrier-free: children report via
    ``queue`` and park on the ``gate`` (a monotone epoch counter the
    parent raises after evaluating), so a slow parent-side evaluation
    cannot trip a timeout, and teardown is always "set ``abort``, raise
    the gate" — no broken-barrier states to reason about.
    """

    def __init__(self, ctx, num_workers: int) -> None:
        self.queue = ctx.Queue()
        self.abort = ctx.Event()
        #: Epoch gate: children wait until ``gate >= epoch`` before the
        #: next epoch's writes (the parent evaluates in between).  Starts
        #: at -1; 0 releases the first epoch.
        self.gate_cond = ctx.Condition()
        self.gate = ctx.Value("q", -1, lock=False)
        #: Sync schedule: the global step counter children take turns on.
        self.turn_cond = ctx.Condition()
        self.turn = ctx.Value("q", 0, lock=False)
        #: Async schedule: per-worker completed-step counters.
        self.progress = ctx.Array("q", num_workers, lock=True)


class WallClockChannel:
    """Times real seconds spent in PS pull/push (transparent otherwise).

    Deliberately does **not** grow a ``try_pull`` attribute: the cache's
    ``force_sync`` treats its presence as "degradable fault channel", and
    this wrapper must not change the sync semantics it is measuring.
    """

    def __init__(self, server: ParameterServer) -> None:
        self._mp_server = server
        self.comm_wall_s = 0.0
        self.comm_calls = 0

    def pull(self, kind, ids, machine):
        t0 = time.perf_counter()
        result = self._mp_server.pull(kind, ids, machine)
        self.comm_wall_s += time.perf_counter() - t0
        self.comm_calls += 1
        return result

    def push(self, kind, ids, grads, machine):
        t0 = time.perf_counter()
        result = self._mp_server.push(kind, ids, grads, machine)
        self.comm_wall_s += time.perf_counter() - t0
        self.comm_calls += 1
        return result

    def __getattr__(self, name):
        if name == "try_pull":
            raise AttributeError(name)
        return getattr(self._mp_server, name)


# --------------------------------------------------------------------- waits


def _check_alive(abort) -> None:
    """Bail out if the run was aborted or the parent died."""
    if abort.is_set():
        raise WorkerAborted()
    import multiprocessing

    parent = multiprocessing.parent_process()
    if parent is not None and not parent.is_alive():
        raise WorkerAborted()


def _await_gate(controls: MPControls, value: int) -> float:
    """Block until the parent raises the epoch gate to ``value``."""
    t0 = time.perf_counter()
    with controls.gate_cond:
        while controls.gate.value < value:
            _check_alive(controls.abort)
            controls.gate_cond.wait(_POLL_S)
    return time.perf_counter() - t0


def _await_turn(controls: MPControls, my_turn: int) -> float:
    """Block until the global step counter reaches ``my_turn``."""
    t0 = time.perf_counter()
    with controls.turn_cond:
        while controls.turn.value != my_turn:
            _check_alive(controls.abort)
            controls.turn_cond.wait(_POLL_S)
    return time.perf_counter() - t0


def _finish_turn(controls: MPControls) -> None:
    with controls.turn_cond:
        controls.turn.value += 1
        controls.turn_cond.notify_all()


def _await_staleness(
    controls: MPControls, rank: int, done_steps: int, bound: int
) -> float:
    """Async guard: never run more than ``bound`` steps past the slowest."""
    t0 = time.perf_counter()
    while True:
        with controls.progress.get_lock():
            slowest = min(controls.progress)
        if done_steps - slowest <= bound:
            return time.perf_counter() - t0
        _check_alive(controls.abort)
        time.sleep(_POLL_S)


# --------------------------------------------------------------------- build


def _build(spec: WorkerSpec, arrays):
    """Rebuild this child's world: graph, shared server, worker."""
    cfg = spec.config
    graph = KnowledgeGraph(
        spec.triples,
        num_entities=spec.num_entities,
        num_relations=spec.num_relations,
    )
    store = ShardedKVStore(
        arrays["entity"].view(),
        arrays["relation"].view(),
        spec.entity_owner,
        cfg.num_machines,
    )
    optimizer = get_optimizer(cfg.optimizer, cfg.lr)
    if "acc_entity" in arrays and hasattr(optimizer, "_accumulators"):
        # Zero-copy adoption of the parent's shared AdaGrad state: shapes
        # match the tables, so the lazy _accumulator_for reuses these.
        optimizer._accumulators = {
            "entity": arrays["acc_entity"].view(),
            "relation": arrays["acc_relation"].view(),
        }
    server = ParameterServer(
        store,
        optimizer,
        byte_scale=cfg.byte_scale,
        compressor=get_compressor(cfg.compression),
    )
    channel = WallClockChannel(server)
    model = get_model(cfg.model, cfg.dim)
    network = NetworkModel(bandwidth=cfg.bandwidth, latency=cfg.latency)
    worker = build_worker(
        spec.machine,
        graph,
        spec.triple_idx,
        channel,
        model,
        get_loss(cfg.loss, cfg.margin),
        network,
        cfg,
        spec.neg_seed,
        spec.sampler_seed,
    )
    return worker, channel, network


# ---------------------------------------------------------------------- main


def worker_main(spec: WorkerSpec, controls: MPControls) -> None:
    """Child-process entry point (module-level: spawn-picklable)."""
    arrays = {}
    try:
        arrays = SharedArena.attach_all(spec.shm_specs)
        _run(spec, controls, arrays)
    except WorkerAborted:
        pass  # the parent is tearing the run down; exit quietly
    except BaseException:
        controls.abort.set()
        try:
            controls.queue.put(("error", spec.rank, traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        # _run's frame (and with it every ndarray view into the segments)
        # is gone on the happy path, so the detach succeeds; on error
        # paths the traceback may still pin views — skip the detach then
        # and let process exit reclaim the mappings (attachers never
        # unlink, so this cannot leak segments).
        import gc

        gc.collect()
        for array in arrays.values():
            try:
                array.close()
            except BufferError:
                pass


def _run(spec: WorkerSpec, controls: MPControls, arrays) -> None:
    """Build the worker's world and run every epoch (see worker_main).

    Separated from :func:`worker_main` so that, on the happy path, this
    frame's death releases every ndarray view into the shared segments
    before the caller detaches them.
    """
    worker, channel, network = _build(spec, arrays)
    telemetry = Telemetry() if spec.collect_telemetry else None
    if telemetry is not None:
        worker.telemetry = telemetry

    wall_start = time.perf_counter()
    stall_s = 0.0
    stalls = 0

    worker.start()  # CPS/DPS setup + hot-table install (reads only)
    controls.queue.put(("ready", spec.rank))
    # Nobody writes tables until every cache installed its hot set —
    # otherwise a late installer would snapshot rows an early starter
    # already updated, which the simulator's serial order never does.
    stall_s += _await_gate(controls, 0)

    cfg = spec.config
    sync = spec.schedule == "sync"
    done_steps = 0
    for epoch in range(cfg.epochs):
        losses: list[float] = []
        for it in range(spec.iterations):
            if spec.crash_at_step is not None and spec.crash_at_step == (
                spec.rank,
                done_steps + 1,
            ):
                os._exit(CRASH_EXIT_CODE)
            if sync:
                global_step = epoch * spec.iterations + it
                waited = _await_turn(
                    controls,
                    global_step * spec.num_workers + spec.rank,
                )
            else:
                waited = _await_staleness(
                    controls, spec.rank, done_steps, spec.staleness_bound
                )
            if waited > 0:
                stall_s += waited
                stalls += 1
            try:
                losses.append(worker.step())
            finally:
                if sync:
                    _finish_turn(controls)
            done_steps += 1
            if not sync:
                with controls.progress.get_lock():
                    controls.progress[spec.rank] = done_steps

        controls.queue.put(
            (
                "epoch",
                spec.rank,
                epoch + 1,
                losses,
                worker.clock.elapsed,
            )
        )
        if epoch + 1 < cfg.epochs:
            # Park while the parent evaluates over the (quiescent)
            # shared tables; no gate needed after the final epoch —
            # there are no further writes to fence off.
            stall_s += _await_gate(controls, epoch + 1)

    summary = {
        "machine": spec.machine,
        "clock_elapsed": worker.clock.elapsed,
        "clock_by_category": dict(worker.clock.by_category),
        "comm_totals": {
            "local_bytes": network.totals.local_bytes,
            "remote_bytes": network.totals.remote_bytes,
            "local_messages": network.totals.local_messages,
            "remote_messages": network.totals.remote_messages,
            "retransmit_bytes": network.totals.retransmit_bytes,
        },
        "cache_hit_ratio": worker.cache_hit_ratio(),
        "staleness_overruns": (
            worker.cache.staleness_overruns if worker.cache else 0
        ),
        "max_staleness_overrun": (
            worker.cache.max_staleness_overrun if worker.cache else 0
        ),
        "wall_s": time.perf_counter() - wall_start,
        "stall_s": stall_s,
        "stalls": stalls,
        "comm_wall_s": channel.comm_wall_s,
        "comm_calls": channel.comm_calls,
        "steps": done_steps,
        "telemetry": telemetry.records if telemetry is not None else [],
        "telemetry_counters": (
            dict(telemetry.counters) if telemetry is not None else {}
        ),
        "false_negative_leaks": (
            worker.sampler.negative_sampler.false_negative_leaks
        ),
        "scored_candidates": worker.scored_candidates,
        "neg_cache": (
            {
                **worker.neg_cache.counters(),
                "cache_keys": worker.neg_cache.num_keys,
            }
            if worker.neg_cache is not None
            else {}
        ),
        "neg_cache_comm": {
            "local_bytes": worker.neg_cache_comm.local_bytes,
            "remote_bytes": worker.neg_cache_comm.remote_bytes,
            "local_messages": worker.neg_cache_comm.local_messages,
            "remote_messages": worker.neg_cache_comm.remote_messages,
            "retransmit_bytes": worker.neg_cache_comm.retransmit_bytes,
        },
    }
    controls.queue.put(("done", spec.rank, summary))
