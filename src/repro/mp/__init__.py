"""Real-parallelism execution backend: worker processes over shared memory.

The simulator (:mod:`repro.core.trainer`) interleaves workers round-robin
over :class:`~repro.utils.simclock.SimClock` — perfectly deterministic, but
every "parallel" number is simulated.  This package runs the *same* worker
loop (:func:`repro.core.trainer.build_worker`) in actual OS processes over
``multiprocessing.shared_memory``-backed parameter-server tables:

* :mod:`repro.mp.shm` — SharedMemory-backed ndarray storage for PS shards
  and optimizer accumulators, with zero-copy attach in children, a growth
  protocol compatible with :meth:`repro.ps.kvstore.ShardedKVStore.grow`,
  and leak-proof cleanup (pid-guarded finalizers + context managers).
* :mod:`repro.mp.pool` — small process-pool utilities shared with the
  ``--jobs`` parallel experiment runner.
* :mod:`repro.mp.worker` — the child-process entry point: rebuilds its
  worker from integer seeds + pickled triples, attaches the shared tables,
  and runs either the ``sync`` schedule (turn-taking in the simulator's
  round-robin order — bit-identical results) or the ``async`` schedule
  (hogwild with a bounded-staleness guard — the fast path).
* :mod:`repro.mp.backend` — the parent-side orchestrator assembling a
  normal :class:`~repro.core.trainer.TrainResult` (plus wall-clock spans)
  from the children's reports.
* :mod:`repro.mp.serve` — multi-process ``serve-bench`` frontends over a
  shared embedding store.

Determinism contract: ``schedule="sync"`` serializes steps in exactly the
simulator's order, so losses, embeddings, SimClock categories, and
CommRecord totals are bit-identical to ``backend="sim"`` (asserted against
the PR 4 golden fingerprints).  ``schedule="async"`` trades that for real
concurrency; divergence is bounded by the staleness guard (default: the
cache's sync period ``P``).
"""

from repro.mp.backend import MPUnsupportedError, MPWorkerCrashed, run_mp_training
from repro.mp.pool import default_jobs, process_map
from repro.mp.serve import MPServingResult, serve_mp
from repro.mp.shm import SharedArena, SharedArray, SharedKVStore, shm_segments

__all__ = [
    "MPServingResult",
    "MPUnsupportedError",
    "MPWorkerCrashed",
    "run_mp_training",
    "default_jobs",
    "process_map",
    "serve_mp",
    "SharedArena",
    "SharedArray",
    "SharedKVStore",
    "shm_segments",
]
