"""Multi-process serving: N frontend processes over one shared store.

``serve-bench --backend mp`` answers the inference-side scaling question:
how far does replicating the *frontend* (batcher + cache + scorer) go
when every replica reads the **same** embedding tables?  The tables are
placed in shared memory once; each frontend process attaches zero-copy,
builds its own :class:`~repro.serving.frontend.ServingFrontend` (private
cache, private batcher — exactly what independent serving replicas look
like), and replays a round-robin slice of the measured query stream.

Round-robin slicing (``queries[rank::n]``) keeps every slice's arrival
process statistically identical to the full stream's — each replica sees
the same Zipfian mix and the same arrival cadence scaled by ``1/n`` —
which is how a load balancer spreading a stream over replicas behaves.

The parent merges the per-replica outcomes into one
:class:`~repro.serving.metrics.ServingReport`: latency percentiles are
computed **exactly** over the concatenated per-query latencies (not
averaged from per-replica percentiles), traffic and batch counts are
summed, hit ratio is re-derived from summed hit/miss counters, and the
simulated duration is the slowest replica's (they run concurrently).
Wall-clock throughput over the whole fan-out is reported alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.mp.pool import process_map
from repro.mp.shm import SharedArena
from repro.serving.metrics import ServingReport, latency_percentile

#: Cache policies a frontend replica can rebuild locally from its spec
#: (mirrors the serve-bench ``--cache-policy`` choices).
_CACHE_POLICIES = ("static", "lru", "lfu", "fifo", "clock", "2q", "arc", "none")


@dataclass
class MPServingResult:
    """Aggregated outcome of a multi-process serve-bench run."""

    report: ServingReport  #: merged cross-replica report (exact percentiles)
    per_frontend: list[ServingReport]  #: each replica's own report
    num_frontends: int
    wall_time_s: float  #: real seconds for the whole fan-out

    @property
    def wall_throughput(self) -> float:
        """Offered queries completed per *real* second across replicas."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.report.num_queries / self.wall_time_s


def serve_mp(
    store,
    measured,
    *,
    num_frontends: int,
    cache_policy: str = "none",
    warmup=None,
    capacity: int = 2,
    max_batch: int = 32,
    max_wait: float = 2e-3,
    byte_scale: float = 25.0,
    label: str | None = None,
    start_method: str | None = None,
) -> MPServingResult:
    """Replay ``measured`` across ``num_frontends`` processes; merge reports.

    Parameters
    ----------
    store:
        A resident-backed :class:`~repro.serving.store.EmbeddingStore`
        (tiered backings hold process-local file handles and cannot be
        shared; the CLI rejects the combination up front).
    measured:
        The measured :class:`~repro.serving.queries.QueryLog` (post
        warmup split).
    cache_policy / warmup / capacity:
        Each replica builds its **own** cache: ``"static"`` profiles the
        shared ``warmup`` log, dynamic policies start cold.  Replicas do
        not share cache state — matching real replicated frontends.
    """
    if cache_policy not in _CACHE_POLICIES:
        raise ValueError(
            f"unknown cache policy {cache_policy!r}; "
            f"choose from {_CACHE_POLICIES}"
        )
    if cache_policy == "static" and warmup is None:
        raise ValueError("cache_policy='static' needs a warmup log")
    if num_frontends < 1:
        raise ValueError(f"num_frontends must be >= 1, got {num_frontends}")
    kv = store.store
    if kv.tier is not None:
        raise ValueError(
            "tiered stores cannot be served across processes; "
            "use --backing resident with --backend mp"
        )

    queries = list(measured)
    label = label or cache_policy
    with SharedArena() as arena:
        for kind in ("entity", "relation"):
            arena.create(kind, np.asarray(kv.table(kind)))
        n = np.arange(len(kv.table("entity")), dtype=np.int64)
        specs = [
            {
                "rank": rank,
                "shm_specs": arena.specs(),
                "entity_owner": kv.owners("entity", n),
                "num_machines": kv.num_machines,
                "model": store.model.name,
                "dim": store.model.dim,
                "queries": queries[rank::num_frontends],
                "cache_policy": cache_policy,
                "warmup": list(warmup) if warmup is not None else [],
                "capacity": capacity,
                "max_batch": max_batch,
                "max_wait": max_wait,
                "byte_scale": byte_scale,
                "label": label,
            }
            for rank in range(num_frontends)
        ]
        wall0 = time.perf_counter()
        outcomes = process_map(
            _serve_replica, specs, jobs=num_frontends, start_method=start_method
        )
        wall_time_s = time.perf_counter() - wall0

    reports = [o["report"] for o in outcomes]
    merged = _merge_reports(label, outcomes)
    return MPServingResult(
        report=merged,
        per_frontend=reports,
        num_frontends=num_frontends,
        wall_time_s=wall_time_s,
    )


def _serve_replica(spec: dict) -> dict:
    """One frontend replica (module-level: pool-picklable).

    Attach, serve, then detach *after* the serving stack's frame — and
    with it every ndarray view into the segments — has died, so the
    close never races live views (same discipline as the training
    worker's entry point).
    """
    import gc

    arrays = SharedArena.attach_all(spec["shm_specs"])
    try:
        return _replica_body(spec, arrays)
    finally:
        gc.collect()
        for array in arrays.values():
            try:
                array.close()
            except BufferError:
                pass  # error path pinned a view; process exit reclaims it


def _replica_body(spec: dict, arrays) -> dict:
    from repro.models.base import get_model
    from repro.ps.kvstore import ShardedKVStore
    from repro.ps.network import NetworkModel
    from repro.serving.batcher import QueryBatcher
    from repro.serving.cache import ServingCache
    from repro.serving.frontend import ServingFrontend
    from repro.serving.store import EmbeddingStore

    store = ShardedKVStore(
        arrays["entity"].view(),
        arrays["relation"].view(),
        spec["entity_owner"],
        spec["num_machines"],
    )
    serving = EmbeddingStore(get_model(spec["model"], spec["dim"]), store)

    policy = spec["cache_policy"]
    if policy == "none":
        cache = None
    elif policy == "static":
        from repro.serving.queries import QueryLog

        cache = ServingCache.from_query_log(
            QueryLog(spec["warmup"]), spec["capacity"]
        )
    else:
        cache = ServingCache.dynamic(spec["capacity"], policy=policy)

    frontend = ServingFrontend(
        serving,
        batcher=QueryBatcher(
            max_batch=spec["max_batch"], max_wait=spec["max_wait"]
        ),
        cache=cache,
        network=NetworkModel(),
        byte_scale=spec["byte_scale"],
    )
    wall0 = time.perf_counter()
    report = frontend.run(
        spec["queries"], label=f"{spec['label']}#{spec['rank']}"
    )
    wall_s = time.perf_counter() - wall0
    from repro.serving.queries import ADMITTED

    # Percentiles are computed over the admitted subset, matching
    # aggregate_results' single-frontend convention.
    latencies = [
        r.latency for r in frontend.results if r.outcome == ADMITTED
    ]
    return {
        "report": report,
        "latencies": latencies,
        "hits": cache.hits if cache is not None else 0,
        "misses": cache.misses if cache is not None else 0,
        "wall_s": wall_s,
    }


def _merge_reports(label: str, outcomes: list[dict]) -> ServingReport:
    """Fold replica outcomes into one exact cross-replica report."""
    from repro.ps.network import CommRecord

    latencies: list[float] = []
    comm = CommRecord()
    hits = misses = 0
    num_queries = num_batches = 0
    num_admitted = num_good = 0
    batch_size_weighted = 0.0
    duration = compute = communication = idle = 0.0
    for o in outcomes:
        r: ServingReport = o["report"]
        latencies.extend(o["latencies"])
        comm.merge(r.comm)
        hits += o["hits"]
        misses += o["misses"]
        num_queries += r.num_queries
        num_admitted += r.num_admitted
        num_good += r.num_good
        num_batches += r.num_batches
        batch_size_weighted += r.mean_batch_size * r.num_batches
        duration = max(duration, r.duration)
        compute = max(compute, r.compute_time)
        communication = max(communication, r.communication_time)
        idle = max(idle, r.idle_time)
    lat = np.asarray(latencies, dtype=np.float64)
    return ServingReport(
        label=label,
        num_queries=num_queries,
        duration=duration,
        latency_mean=float(lat.mean()) if len(lat) else 0.0,
        latency_p50=latency_percentile(lat, 50),
        latency_p95=latency_percentile(lat, 95),
        latency_p99=latency_percentile(lat, 99),
        latency_max=float(lat.max()) if len(lat) else 0.0,
        hit_ratio=hits / (hits + misses) if (hits + misses) else 0.0,
        comm=comm,
        num_batches=num_batches,
        mean_batch_size=(
            batch_size_weighted / num_batches if num_batches else 0.0
        ),
        compute_time=compute,
        communication_time=communication,
        idle_time=idle,
        num_admitted=num_admitted,
        num_good=num_good,
    )
