"""SharedMemory-backed ndarray storage for the mp training backend.

The parameter-server tables (and the optimizer's AdaGrad accumulators) are
moved into ``multiprocessing.shared_memory`` segments so worker processes
operate on the *same* physical arrays as the parent — a pull is a plain
ndarray gather, a push applies the optimizer in place, and no gradient or
embedding ever crosses a pipe.

Layout of one segment::

    [ int64 row count | row capacity x width payload ]

The 8-byte header makes growth visible across processes: ``grow`` appends
rows within the pre-allocated capacity and bumps the header, and any view
taken afterwards (in any process) sees the new length.  This mirrors the
contract of :meth:`repro.ps.kvstore.ShardedKVStore.grow` — streaming
ingestion appends rows mid-run — without ever remapping memory, which a
concurrently-attached child could not survive.

Cleanup discipline (the part that actually bites):

* every segment is owned by exactly one :class:`SharedArena` in the
  creating process; ``close()`` (idempotent, also a context manager and a
  pid-guarded ``weakref.finalize``) unlinks them all, so neither normal
  exit, an exception, nor a crashed *child* leaks ``/dev/shm`` entries;
* attachers never unlink.  Python 3.11's resource tracker registers
  attached segments for cleanup-at-exit anyway (bpo-39959), which would
  destroy the parent's live segments when a child exits — the attach path
  therefore unregisters itself from the tracker;
* :func:`shm_segments` lists live segments by prefix so tests can assert
  leak-freedom by diffing before/after.
"""

from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.ps.kvstore import ShardedKVStore

#: Prefix of every segment this module creates (also the test hook for
#: asserting nothing leaked).
SEGMENT_PREFIX = "repro-mp-"

#: Bytes reserved at the start of each segment for the int64 row count.
_HEADER_BYTES = 8


def shm_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live shared-memory segments starting with ``prefix``.

    Linux-specific (reads ``/dev/shm``), which is where both CI and the
    benchmark run; returns ``[]`` where the listing is unavailable rather
    than failing, so callers can skip the assertion on exotic platforms.
    """
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except OSError:
        return []


def _defer_unmap(shm: SharedMemory) -> None:
    """Defer a mapping pinned by live ndarray views to their death.

    ``mmap.close()`` refuses while exported buffers exist, and
    ``SharedMemory.__del__`` would noisily retry the same failing close at
    GC time.  Dropping the handle's references instead reproduces
    ``close()``'s end state minus the eager unmap: the fd is released
    now, and the mapping itself is reclaimed when the last view (which
    keeps the mmap alive through its memoryview) is garbage-collected —
    at the latest, at process exit.  Touches ``SharedMemory`` internals,
    which have been stable since 3.8.
    """
    shm._buf = None
    mmap_obj = shm._mmap
    shm._mmap = None
    del mmap_obj  # views keep the real mmap alive; this was just our ref
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:
            pass
        shm._fd = -1


class SharedArray:
    """One 2-D ndarray living in a SharedMemory segment.

    Create with :meth:`create` (copies an existing array in, owner side) or
    :meth:`attach` (zero-copy, child side).  ``view()`` returns an ndarray
    aliasing the segment at the *current* row count.
    """

    def __init__(
        self,
        shm: SharedMemory,
        width: int,
        dtype: np.dtype,
        capacity_rows: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._width = width
        self._dtype = np.dtype(dtype)
        self._capacity_rows = capacity_rows
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls, array: np.ndarray, capacity_rows: int | None = None
    ) -> "SharedArray":
        """Copy ``array`` into a fresh segment (this process becomes owner).

        ``capacity_rows`` pre-allocates room for growth; defaults to the
        array's current row count (no growth headroom).
        """
        array = np.ascontiguousarray(array)
        if array.ndim != 2:
            raise ValueError(f"SharedArray holds 2-D tables, got ndim={array.ndim}")
        rows, width = array.shape
        capacity = rows if capacity_rows is None else int(capacity_rows)
        if capacity < rows:
            raise ValueError(f"capacity_rows={capacity} < current rows {rows}")
        nbytes = _HEADER_BYTES + capacity * width * array.dtype.itemsize
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        shm = SharedMemory(name=name, create=True, size=max(nbytes, 1))
        self = cls(shm, width, array.dtype, capacity, owner=True)
        self._payload(rows)[:] = array
        self._set_rows(rows)
        return self

    @classmethod
    def attach(cls, spec: dict) -> "SharedArray":
        """Attach to an existing segment described by ``spec`` (non-owner)."""
        # Python 3.11 registers *attached* segments with the resource
        # tracker (bpo-39959), which would unlink the owner's live data
        # when this process exits.  Worse, children share the parent's
        # tracker process, so unregister-after-attach would erase the
        # *owner's* registration.  Suppress registration entirely for the
        # duration of the attach (single-threaded child startup).
        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            shm = SharedMemory(name=spec["name"])
        finally:
            resource_tracker.register = original_register
        return cls(
            shm,
            int(spec["width"]),
            np.dtype(spec["dtype"]),
            int(spec["capacity_rows"]),
            owner=False,
        )

    def spec(self) -> dict:
        """Picklable description a child needs to :meth:`attach`."""
        return {
            "name": self._shm.name,
            "width": self._width,
            "dtype": self._dtype.str,
            "capacity_rows": self._capacity_rows,
        }

    def close(self) -> None:
        """Detach (and, for the owner, unlink).  Idempotent.

        A live ndarray view pins the mapping (``BufferError`` from mmap);
        the unmap is then deferred to the view's death or process exit.
        The *unlink* still happens regardless — removing the ``/dev/shm``
        name never waits on views — so segments cannot leak past their
        owner, and :meth:`view`/:meth:`grow` refuse to hand out new
        aliases once closed.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            _defer_unmap(self._shm)
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    # ---------------------------------------------------------------- access

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError("SharedArray is closed")

    def _rows_header(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=1)

    def _set_rows(self, rows: int) -> None:
        self._rows_header()[0] = rows

    def _payload(self, rows: int) -> np.ndarray:
        flat = np.frombuffer(
            self._shm.buf,
            dtype=self._dtype,
            count=rows * self._width,
            offset=_HEADER_BYTES,
        )
        return flat.reshape(rows, self._width)

    @property
    def rows(self) -> int:
        self._require_open()
        return int(self._rows_header()[0])

    @property
    def capacity_rows(self) -> int:
        return self._capacity_rows

    def view(self) -> np.ndarray:
        """An ndarray aliasing the segment at the current row count.

        The view stays valid across peers' in-place writes but does *not*
        lengthen when a peer grows the table — take a fresh view (or call
        :meth:`SharedKVStore.table`, which does) after growth.
        """
        self._require_open()
        return self._payload(self.rows)

    def grow(self, new_rows: np.ndarray) -> np.ndarray:
        """Append rows within capacity; returns the full-length view."""
        self._require_open()
        new_rows = np.asarray(new_rows, dtype=self._dtype).reshape(-1, self._width)
        rows = self.rows
        total = rows + len(new_rows)
        if total > self._capacity_rows:
            raise ValueError(
                f"grow to {total} rows exceeds shared capacity "
                f"{self._capacity_rows}; re-create the arena with more "
                f"headroom"
            )
        if len(new_rows):
            self._payload(total)[rows:] = new_rows
            self._set_rows(total)
        return self._payload(total)


class SharedArena:
    """Owns a family of :class:`SharedArray` segments with one lifetime.

    Guarantees every segment it created is unlinked exactly once, whether
    the parent exits the ``with`` block normally, raises, or is torn down
    by the GC/interpreter (``weakref.finalize``).  The finalizer is guarded
    by the creating pid so a forked child inheriting the object cannot
    unlink segments the parent still uses.
    """

    def __init__(self) -> None:
        self._arrays: dict[str, SharedArray] = {}
        self._pid = os.getpid()
        self._finalizer = weakref.finalize(self, SharedArena._cleanup, self._arrays, self._pid)

    @staticmethod
    def _cleanup(arrays: dict[str, SharedArray], owner_pid: int) -> None:
        if os.getpid() != owner_pid:
            return  # forked copy: the segments belong to the parent
        for array in arrays.values():
            array.close()
        arrays.clear()

    # ------------------------------------------------------------------- api

    def create(
        self, key: str, array: np.ndarray, capacity_rows: int | None = None
    ) -> SharedArray:
        """Copy ``array`` into a new owned segment registered under ``key``."""
        if key in self._arrays:
            raise KeyError(f"arena already holds a segment for {key!r}")
        shared = SharedArray.create(array, capacity_rows=capacity_rows)
        self._arrays[key] = shared
        return shared

    def __getitem__(self, key: str) -> SharedArray:
        return self._arrays[key]

    def specs(self) -> dict[str, dict]:
        """Picklable ``{key: spec}`` bundle for child processes."""
        return {key: a.spec() for key, a in self._arrays.items()}

    @staticmethod
    def attach_all(specs: dict[str, dict]) -> dict[str, SharedArray]:
        """Attach every segment in a :meth:`specs` bundle (child side)."""
        return {key: SharedArray.attach(spec) for key, spec in specs.items()}

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SharedKVStore(ShardedKVStore):
    """A :class:`ShardedKVStore` whose tables live in shared memory.

    Behaves identically to the resident store — including :meth:`grow`,
    which streaming ingestion calls mid-run — except that growth happens
    *in place* inside the pre-allocated segment (bumping the shared row
    header) instead of reallocating with ``np.concatenate``.  Peers
    attached to the same segments observe appended rows on their next
    :meth:`table` call.
    """

    def __init__(
        self,
        handles: dict[str, SharedArray],
        entity_owner: np.ndarray,
        num_machines: int,
    ) -> None:
        super().__init__(
            handles["entity"].view(),
            handles["relation"].view(),
            entity_owner,
            num_machines,
        )
        self._handles = handles

    @classmethod
    def from_store(
        cls,
        store: ShardedKVStore,
        arena: SharedArena,
        headroom_rows: int = 0,
    ) -> "SharedKVStore":
        """Copy a resident store's tables into ``arena`` segments.

        ``headroom_rows`` pre-allocates growth capacity per table (0 for
        static training, where tables never grow mid-run).
        """
        if store.tier is not None:
            raise ValueError("tiered stores cannot be shared across processes")
        handles = {}
        for kind in ("entity", "relation"):
            table = store.table(kind)
            handles[kind] = arena.create(
                kind, table, capacity_rows=len(table) + headroom_rows
            )
        return cls(handles, store._owners["entity"], store.num_machines)

    def _extend_table(self, kind: str, table: np.ndarray, rows: np.ndarray):
        return self._handles[kind].grow(rows)

    def table(self, kind: str) -> np.ndarray:
        # Re-take the view when a peer process grew the segment: the shared
        # row header is the source of truth, cached ndarray lengths are not.
        handle = self._handles.get(kind)
        if handle is not None and len(self._tables[kind]) != handle.rows:
            self._tables[kind] = handle.view()
        return super().table(kind)
