"""Parent-side orchestrator for the mp training backend.

``run_mp_training`` turns an already-configured trainer into a real
multi-process run:

1. ``trainer.setup(graph)`` builds the partition, tables, and (parent
   copies of) the workers exactly as the simulator would — including
   drawing the per-worker stream seeds;
2. the PS tables and AdaGrad accumulators move into a
   :class:`~repro.mp.shm.SharedArena` and the parent's store/optimizer are
   swapped onto the shared views, so the parent evaluates (and later
   checkpoints) the same memory the children train;
3. one child process per worker runs :func:`repro.mp.worker.worker_main`;
   the parent collects per-epoch losses at a barrier, evaluates while the
   children are parked, and assembles a normal
   :class:`~repro.core.trainer.TrainResult` — with per-epoch losses
   re-interleaved in the simulator's iteration-major/worker-minor order,
   which is what makes the ``sync`` schedule's ``np.mean`` (and therefore
   the golden fingerprints) bit-identical;
4. teardown is unconditional: whether the run finishes, raises, or a
   child dies mid-epoch, the shared tables are copied back into private
   arrays *before* the arena unlinks its segments (ndarray views into a
   closed segment are fatal), and no ``/dev/shm`` entry survives.

Crash propagation: a child that exits without delivering its report trips
:class:`MPWorkerCrashed`; the abort event + barrier abort unblock every
sibling, which exit quietly.
"""

from __future__ import annotations

import queue as queue_mod
import time

import numpy as np

from repro.core.convergence import HistoryPoint, TrainingHistory
from repro.mp.shm import SharedArena
from repro.mp.worker import MPControls, WorkerSpec, worker_main
from repro.ps.network import CommRecord
from repro.utils.simclock import SimClock

#: Seconds between liveness checks while waiting on children.
_POLL_S = 0.1

#: Default hard ceiling on a whole mp run — generous (training epochs on
#: the experiment datasets take seconds), but it converts a deadlocked
#: child into a diagnosable MPWorkerCrashed instead of a hang.
DEFAULT_TIMEOUT_S = 600.0

SCHEDULES = ("sync", "async")


class MPUnsupportedError(ValueError):
    """A configuration the mp backend does not support (use sim)."""


class MPWorkerCrashed(RuntimeError):
    """A worker process died (or stalled) before delivering its results."""


def run_mp_training(
    trainer,
    train_graph,
    eval_graph=None,
    filter_set=None,
    eval_every=None,
    eval_max_queries: int = 200,
    eval_candidates: int | None = 500,
    telemetry=None,
    *,
    schedule: str = "async",
    staleness_bound: int | None = None,
    start_method: str | None = None,
    timeout_s: float | None = None,
    crash_at_step: tuple[int, int] | None = None,
):
    """Train ``trainer`` with one OS process per worker over shared memory.

    See :meth:`repro.core.trainer.HETKGTrainer.train_mp` for the public
    entry point and parameter semantics.  ``crash_at_step`` is a test hook:
    ``(rank, step)`` makes that worker die abruptly (``os._exit``) right
    before the step, exercising crash propagation and leak-freedom.
    """
    import multiprocessing

    from repro.core.trainer import TrainResult

    if schedule not in SCHEDULES:
        raise MPUnsupportedError(
            f"unknown mp schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    cfg = trainer.config
    if cfg.backing != "resident":
        raise MPUnsupportedError(
            "the mp backend requires the resident backing; tiered tables "
            "hold file handles and quantized blocks that cannot be shared "
            "across processes (run --backing tiered with --backend sim)"
        )
    trainer.setup(train_graph)
    if not trainer.workers:
        raise MPUnsupportedError("setup produced no workers to parallelize")
    server = trainer.server
    store = server.store
    num_workers = len(trainer.workers)
    iterations = max(w.sampler.batches_per_epoch for w in trainer.workers)
    bound = staleness_bound if staleness_bound is not None else cfg.sync_period
    if bound < 1:
        raise MPUnsupportedError(f"staleness bound must be >= 1, got {bound}")
    deadline = time.monotonic() + (
        timeout_s if timeout_s is not None else DEFAULT_TIMEOUT_S
    )

    ctx = multiprocessing.get_context(start_method or "spawn")
    arena = SharedArena()
    procs: list = []
    controls: MPControls | None = None
    history = TrainingHistory()
    telemetry_records: list = []
    summaries: dict[int, dict] = {}
    wall_start = time.perf_counter()
    try:
        # ---- move the global state into shared memory -------------------
        for kind in ("entity", "relation"):
            shared = arena.create(kind, store.table(kind))
            store._tables[kind] = shared.view()
        optimizer = server.optimizer
        if hasattr(optimizer, "_accumulator_for"):
            for kind in ("entity", "relation"):
                acc = optimizer._accumulator_for(kind, store.table(kind))
                shared = arena.create(f"acc_{kind}", acc)
                optimizer._accumulators[kind] = shared.view()

        # ---- spawn children --------------------------------------------
        controls = MPControls(ctx, num_workers)
        shm_specs = arena.specs()
        for rank, worker in enumerate(trainer.workers):
            machine = worker.machine
            spec = WorkerSpec(
                rank=rank,
                machine=machine,
                num_workers=num_workers,
                config=cfg,
                triples=train_graph.triples,
                num_entities=train_graph.num_entities,
                num_relations=train_graph.num_relations,
                triple_idx=trainer.partition.triples_of(machine),
                entity_owner=store._owners["entity"],
                neg_seed=trainer._worker_seeds[2 * machine],
                sampler_seed=trainer._worker_seeds[2 * machine + 1],
                iterations=iterations,
                schedule=schedule,
                staleness_bound=bound,
                shm_specs=shm_specs,
                collect_telemetry=telemetry is not None,
                crash_at_step=crash_at_step,
            )
            proc = ctx.Process(
                target=worker_main, args=(spec, controls), daemon=True
            )
            proc.start()
            procs.append(proc)

        # ---- run epochs -------------------------------------------------
        rank_of = {w.machine: r for r, w in enumerate(trainer.workers)}
        stash: dict[str, list] = {}
        _collect(controls, procs, "ready", num_workers, deadline, stash)
        _set_gate(controls, 0)  # every hot table installed: start stepping
        for epoch in range(1, cfg.epochs + 1):
            reports = _collect(
                controls, procs, "epoch", num_workers, deadline, stash
            )
            losses_by_rank = {rank: payload[1] for rank, payload in reports.items()}
            epoch_clocks = [reports[r][2] for r in range(num_workers)]
            # The simulator appends losses iteration-major, worker-minor;
            # np.mean's pairwise summation is order-sensitive, so the mp
            # result must reassemble the identical sequence.
            interleaved = [
                losses_by_rank[rank][i]
                for i in range(iterations)
                for rank in range(num_workers)
            ]
            metrics: dict[str, float] = {}
            is_last = epoch == cfg.epochs
            due = eval_every is not None and epoch % eval_every == 0
            if eval_graph is not None and (due or is_last):
                result = trainer.evaluate(
                    eval_graph,
                    filter_set=filter_set,
                    max_queries=eval_max_queries,
                    num_candidates=eval_candidates,
                )
                metrics = {
                    "mrr": result.mrr,
                    "mr": result.mr,
                    **{f"hits@{k}": v for k, v in result.hits.items()},
                }
            history.append(
                HistoryPoint(
                    epoch=epoch,
                    sim_time=max(epoch_clocks),
                    loss=float(np.mean(interleaved)) if interleaved else 0.0,
                    metrics=metrics,
                )
            )
            _set_gate(controls, epoch)  # release the next epoch's writes

        # ---- final reports ---------------------------------------------
        done = _collect(controls, procs, "done", num_workers, deadline, stash)
        summaries = {rank: payload[0] for rank, payload in done.items()}
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        wall_time_s = time.perf_counter() - wall_start
        memory_report = store.memory_report()

        if telemetry is not None:
            for rank in range(num_workers):
                telemetry_records.extend(summaries[rank]["telemetry"])
                for name, value in summaries[rank].get(
                    "telemetry_counters", {}
                ).items():
                    telemetry.bump(name, value)
            # Restore the simulator's global step order (cumulative
            # per-worker iteration, then worker position).
            telemetry_records.sort(
                key=lambda r: (r.iteration, rank_of[r.worker])
            )
            telemetry.records.extend(telemetry_records)
            telemetry.record_memory(memory_report)

        return _assemble_result(
            TrainResult,
            cfg,
            trainer,
            history,
            summaries,
            num_workers,
            schedule,
            wall_time_s,
            memory_report,
        )
    except BaseException:
        _abort(controls, procs)
        raise
    finally:
        _restore_private(trainer)
        arena.close()


# ------------------------------------------------------------------ plumbing


def _abort(controls, procs) -> None:
    """Unblock and stop every child (teardown path)."""
    if controls is not None:
        controls.abort.set()
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=10.0)


def _restore_private(trainer) -> None:
    """Copy shared views back into private arrays (before arena close).

    After the arena unlinks its segments every ndarray view into them is a
    dangling mapping — touching one is a segfault, not an exception.  The
    trainer object outlives the run (evaluate, checkpoint, repeated
    train calls), so it must leave holding private memory.
    """
    if trainer.server is None:
        return
    store = trainer.server.store
    for kind, table in list(store._tables.items()):
        store._tables[kind] = np.array(table, copy=True)
    optimizer = trainer.server.optimizer
    if hasattr(optimizer, "_accumulators"):
        for kind, acc in list(optimizer._accumulators.items()):
            optimizer._accumulators[kind] = np.array(acc, copy=True)


def _set_gate(controls: MPControls, value: int) -> None:
    """Raise the epoch gate, releasing children parked below ``value``."""
    with controls.gate_cond:
        controls.gate.value = value
        controls.gate_cond.notify_all()


#: Grace period between noticing a dead child and declaring the run
#: crashed — its final message may still be in flight through the queue's
#: feeder thread.
_DEAD_GRACE_S = 2.0


_MESSAGE_KINDS = ("ready", "epoch", "done")


def _collect(
    controls: MPControls,
    procs,
    want: str,
    count: int,
    deadline: float,
    stash: dict[str, list] | None = None,
) -> dict[int, tuple]:
    """Gather ``count`` messages of kind ``want`` (one per rank).

    Workers run ahead of the parent: a fast worker's final-epoch report
    and its ``done`` summary can both be queued while a slower peer is
    still stepping, so messages of *other* kinds are stashed (in ``stash``,
    shared across calls) rather than treated as protocol errors.  A child
    found dead without having delivered its message marks the run as
    crashed, after a short grace for in-flight queue data.
    """
    got: dict[int, tuple] = {}
    dead_since: float | None = None
    pending = stash.setdefault(want, []) if stash is not None else []
    while pending and len(got) < count:
        message = pending.pop(0)
        got[message[1]] = tuple(message[2:])
    while len(got) < count:
        if time.monotonic() > deadline:
            raise MPWorkerCrashed(
                f"timed out waiting for {want!r} reports "
                f"({len(got)}/{count} received)"
            )
        try:
            message = controls.queue.get(timeout=_POLL_S)
        except queue_mod.Empty:
            dead = [
                (rank, proc.exitcode)
                for rank, proc in enumerate(procs)
                if proc.exitcode is not None
                and rank not in got
                and not _stashed(stash, rank)
            ]
            if dead:
                now = time.monotonic()
                if dead_since is None:
                    dead_since = now
                elif now - dead_since > _DEAD_GRACE_S:
                    detail = ", ".join(
                        f"worker {rank} exit={code}" for rank, code in dead
                    )
                    raise MPWorkerCrashed(
                        f"worker process died before reporting {want!r} "
                        f"({detail})"
                    )
            continue
        dead_since = None
        kind, rank = message[0], message[1]
        if kind == "error":
            raise MPWorkerCrashed(f"worker {rank} raised:\n{message[2]}")
        if kind == want:
            got[rank] = tuple(message[2:])
        elif kind in _MESSAGE_KINDS and stash is not None:
            stash.setdefault(kind, []).append(message)
        else:
            raise MPWorkerCrashed(
                f"protocol error: expected {want!r} from workers, got "
                f"{kind!r} from worker {rank}"
            )
    return got


def _stashed(stash: dict[str, list] | None, rank: int) -> bool:
    """Whether any stashed message came from ``rank`` (it is alive enough)."""
    if not stash:
        return False
    return any(m[1] == rank for messages in stash.values() for m in messages)


def _assemble_result(
    result_cls,
    cfg,
    trainer,
    history,
    summaries: dict[int, dict],
    num_workers: int,
    schedule: str,
    wall_time_s: float,
    memory_report: dict,
):
    clocks = []
    comm_totals = CommRecord()
    hit_ratios = []
    worker_wall: dict[int, dict] = {}
    leaks = 0
    scored = 0
    neg_counters: dict[str, int] = {}
    neg_comm = CommRecord()
    for rank in range(num_workers):
        s = summaries[rank]
        clocks.append(SimClock(s["clock_elapsed"], dict(s["clock_by_category"])))
        comm_totals.merge(CommRecord(**s["comm_totals"]))
        hit_ratios.append(s["cache_hit_ratio"])
        leaks += s.get("false_negative_leaks", 0)
        scored += s.get("scored_candidates", 0)
        for name, value in s.get("neg_cache", {}).items():
            neg_counters[name] = neg_counters.get(name, 0) + value
        neg_comm.merge(CommRecord(**s.get("neg_cache_comm", {})))
        worker_wall[s["machine"]] = {
            "wall_s": s["wall_s"],
            "stall_s": s["stall_s"],
            "stalls": s["stalls"],
            "comm_wall_s": s["comm_wall_s"],
            "comm_calls": s["comm_calls"],
            "steps": s["steps"],
            "staleness_overruns": s["staleness_overruns"],
            "max_staleness_overrun": s["max_staleness_overrun"],
            # Simulated counterparts, so repro.obs.reconcile can line the
            # model's prediction up against this worker's measurements.
            "sim_elapsed": s["clock_elapsed"],
            "sim_comm": dict(s["clock_by_category"]).get("communication", 0.0),
            "sim_compute": dict(s["clock_by_category"]).get("compute", 0.0),
        }
    slowest = max(clocks, key=lambda c: c.elapsed)
    neg_cache_stats: dict = {}
    if neg_counters:
        neg_cache_stats = {
            **neg_counters,
            "refresh_bytes": neg_comm.total_bytes,
            "refresh_remote_bytes": neg_comm.remote_bytes,
            "refresh_messages": neg_comm.total_messages,
            "neg_cache_time": slowest.category("neg_cache"),
        }
    return result_cls(
        config=cfg,
        system=trainer.system_name,
        history=history,
        sim_time=slowest.elapsed,
        compute_time=slowest.category("compute"),
        communication_time=slowest.category("communication"),
        comm_totals=comm_totals,
        cache_hit_ratio=float(np.mean(hit_ratios)) if hit_ratios else 0.0,
        final_metrics=history.points[-1].metrics if history.points else {},
        memory_report=memory_report,
        backend=f"mp/{schedule}",
        wall_time_s=wall_time_s,
        worker_wall=worker_wall,
        false_negative_leaks=leaks,
        scored_candidates=scored,
        neg_cache_stats=neg_cache_stats,
    )
