"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro run table3 --scale 0.05 --seed 0
    python -m repro run all --scale 0.02

``run all`` regenerates every table and figure (at the given scale) and is
what produced EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record a repro.obs span trace and write Chrome-trace JSON here "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )


#: Execution backends ``train``/``serve-bench`` accept (validated by hand
#: so a typo gets a did-you-mean instead of argparse's terse choices dump).
BACKENDS = ("sim", "mp")

#: Hard-negative cache modes ``--neg-cache`` accepts (same hand-rolled
#: validation: typos get a did-you-mean and exit code 2).
NEG_CACHE_CHOICES = ("off", "nscaching", "auto")


def _add_neg_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--neg-cache",
        default=None,
        metavar="MODE",
        help="hard-negative cache: off (default), nscaching (per-key "
        "hard-negative caches with hotness-ordered refreshes), or auto "
        "(annealed exploration->exploitation; see docs/sampling.md)",
    )


def _validate_neg_cache(args: argparse.Namespace) -> int | None:
    """Validate --neg-cache; return an exit code to fail fast, or None."""
    mode = getattr(args, "neg_cache", None)
    if mode is None or mode in NEG_CACHE_CHOICES:
        return None
    import difflib

    close = difflib.get_close_matches(mode, NEG_CACHE_CHOICES, n=2, cutoff=0.4)
    print(f"unknown --neg-cache mode {mode!r}", file=sys.stderr)
    if close:
        print("did you mean: " + ", ".join(close), file=sys.stderr)
    print("valid modes: " + ", ".join(NEG_CACHE_CHOICES), file=sys.stderr)
    return 2


def _add_backend_flags(
    parser: argparse.ArgumentParser, serving: bool = False
) -> None:
    parser.add_argument(
        "--backend",
        default="sim",
        metavar="NAME",
        help="execution backend: sim (single-process simulator, default) "
        "or mp (real worker processes over shared memory; see "
        "docs/parallelism.md)",
    )
    parser.add_argument(
        "--mp-schedule",
        default=None,
        choices=["sync", "async"],
        help="mp step schedule: sync (turn-taking, bit-identical to the "
        "simulator) or async (hogwild under a staleness bound, the "
        "default and fast path)",
    )
    parser.add_argument(
        "--mp-staleness",
        type=int,
        default=None,
        metavar="S",
        help="async schedule: max steps any worker may run ahead of the "
        "slowest (default: the cache sync period P)",
    )
    parser.add_argument(
        "--mp-start",
        default=None,
        choices=["spawn", "fork", "forkserver"],
        help="multiprocessing start method (default: spawn)",
    )
    if serving:
        parser.add_argument(
            "--mp-workers",
            type=int,
            default=None,
            metavar="N",
            help="frontend replica processes for --backend mp "
            "(default: one per available core)",
        )


def _validate_backend(args: argparse.Namespace) -> int | None:
    """Validate --backend and its satellite flags; return an exit code to
    fail fast, or None to proceed."""
    if args.backend not in BACKENDS:
        import difflib

        close = difflib.get_close_matches(args.backend, BACKENDS, n=2, cutoff=0.4)
        print(f"unknown backend {args.backend!r}", file=sys.stderr)
        if close:
            print("did you mean: " + ", ".join(close), file=sys.stderr)
        print("valid backends: " + ", ".join(BACKENDS), file=sys.stderr)
        return 2
    if args.backend != "mp":
        engaged = [
            flag
            for flag, value in (
                ("--mp-schedule", args.mp_schedule),
                ("--mp-staleness", args.mp_staleness),
                ("--mp-start", args.mp_start),
                ("--mp-workers", getattr(args, "mp_workers", None)),
            )
            if value is not None
        ]
        if engaged:
            print(
                f"{', '.join(engaged)} require{'s' if len(engaged) == 1 else ''}"
                " --backend mp",
                file=sys.stderr,
            )
            return 2
    return None


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults (repro.faults), e.g. "
        "'drop=0.05', 'drop=0.2@10:200,crash=w1@25,seed=7', "
        "'ps-out=0@30:40', 'delay=0.1x0.05', 'slow=w2x3@20:40'",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="auto-checkpoint the global state every N iterations "
        "(crash recovery rewinds a dead machine's shard to the last "
        "snapshot; with --checkpoint PATH snapshots are also written "
        "to disk atomically)",
    )


def _add_tier_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backing",
        default="resident",
        choices=["resident", "tiered"],
        help="embedding table backing: resident (dense in-memory, default) "
        "or tiered (hot/warm/cold rows under --memory-budget; see "
        "docs/memory.md)",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="resident-byte budget for --backing tiered, e.g. '64M' or "
        "'1G' (default: unlimited)",
    )
    parser.add_argument(
        "--tier-block-rows",
        type=int,
        default=64,
        metavar="N",
        help="rows per residency block (tiered backing promotion granularity)",
    )
    parser.add_argument(
        "--tier-cold-codec",
        default="int8",
        choices=["none", "fp16", "int8"],
        help="quantizer for long-idle blocks (tiered backing)",
    )
    parser.add_argument(
        "--tier-dir",
        default=None,
        metavar="DIR",
        help="scratch directory for tiered memmap shards "
        "(default: private temp dir, removed on exit)",
    )


def _tier_config(args: argparse.Namespace):
    """Build a TierConfig from CLI flags (None for the resident backing)."""
    if args.backing != "tiered":
        return None
    from repro.tier import TierConfig, TierPolicy

    return TierConfig(
        budget=args.memory_budget,
        policy=TierPolicy(
            block_rows=args.tier_block_rows, cold_codec=args.tier_cold_codec
        ),
        directory=args.tier_dir,
    )


def _print_memory_report(report: dict) -> None:
    from repro.tier.budget import format_bytes

    tables = report.get("tables", {})
    per_kind = ", ".join(
        f"{kind}: hot {t.get('hot_blocks', 0)}/cold {t.get('cold_blocks', 0)}"
        f"/warm {t.get('warm_blocks', 0)} blocks, hit {t.get('hit_ratio', 0.0):.3f}"
        for kind, t in tables.items()
        if t.get("backing") == "tiered"
    )
    print(
        f"memory: resident {format_bytes(report['resident_bytes'])} of "
        f"{format_bytes(report['logical_bytes'])} logical "
        f"(budget {format_bytes(report['budget_bytes'])})"
        + (f" | {per_kind}" if per_kind else "")
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hetkg",
        description="HET-KG reproduction: regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    run.add_argument("--epochs", type=int, default=None, help="training epochs")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments on N worker processes (useful with 'all'; "
        "results print in deterministic order regardless)",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault spec forwarded to runners that support chaos "
        "(currently 'fault-tolerance'), e.g. 'drop=0.1,crash=w1@20'",
    )
    _add_neg_cache_flag(run)
    _add_trace_flag(run)

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (paper vs measured)"
    )
    report.add_argument(
        "--output", default="EXPERIMENTS.md", help="markdown file to write"
    )
    report.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )
    report.add_argument(
        "--append",
        action="store_true",
        help="append sections to an existing report (resume a partial run)",
    )

    train = sub.add_parser(
        "train",
        help="train a KGE model on a built-in or TSV dataset",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  hetkg train --dataset fb15k --system hetkg-d\n"
            "  hetkg train --faults 'drop=0.05' --checkpoint-every 8\n"
            "  hetkg train --faults 'drop=0.2@10:60,crash=w1@25,seed=7' \\\n"
            "      --checkpoint-every 4 --checkpoint state.npz\n"
            "  hetkg train --faults 'ps-out=0@30:40,slow=w2x3@20:40'\n"
            "(see docs/fault_tolerance.md for the full --faults grammar)"
        ),
    )
    source = train.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset", default="fb15k", help="built-in synthetic dataset name"
    )
    source.add_argument("--tsv", default=None, help="path to a head\\trel\\ttail file")
    train.add_argument("--scale", type=float, default=0.05, help="dataset scale")
    train.add_argument(
        "--system",
        default="hetkg-d",
        help="hetkg-c | hetkg-d | dglke | pbg",
    )
    train.add_argument("--model", default="transe", help="scoring model name")
    train.add_argument("--dim", type=int, default=16)
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--machines", type=int, default=4)
    train.add_argument("--lr", type=float, default=0.1)
    train.add_argument("--batch-size", type=int, default=128)
    train.add_argument("--negatives", type=int, default=16)
    _add_neg_cache_flag(train)
    train.add_argument("--cache-capacity", type=int, default=1024)
    train.add_argument("--sync-period", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--eval-queries", type=int, default=200, help="test triples to rank"
    )
    train.add_argument(
        "--checkpoint", default=None, help="write final embeddings here (.npz)"
    )
    _add_fault_flags(train)
    _add_trace_flag(train)
    _add_tier_flags(train)
    _add_backend_flags(train)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a Zipfian inference workload against a trained model",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "overload examples:\n"
            "  hetkg serve-bench --rate 64000 --slo 0.01 \\\n"
            "      --admission 'gold=2000/256/p2,free=500/64,*=100'\n"
            "  hetkg serve-bench --faults 'drop=0.1,ps-out=0@5:8,retries=4x0.004'\n"
            "  hetkg serve-bench --cache-policy lru --deploy-every 500\n"
            "(see docs/serving.md for the admission grammar and shed ladder)"
        ),
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        help="serve this .npz checkpoint instead of training a fresh model",
    )
    serve.add_argument("--dataset", default="fb15k", help="dataset to train on")
    serve.add_argument("--scale", type=float, default=0.05, help="dataset scale")
    serve.add_argument("--epochs", type=int, default=2, help="training epochs")
    serve.add_argument("--machines", type=int, default=4, help="store shards")
    serve.add_argument("--queries", type=int, default=4000, help="stream length")
    serve.add_argument(
        "--rate", type=float, default=2000.0, help="arrival rate (queries/s)"
    )
    serve.add_argument(
        "--zipf", type=float, default=1.1, help="workload Zipf exponent"
    )
    serve.add_argument(
        "--candidates", type=int, default=16, help="candidates per prediction query"
    )
    serve.add_argument(
        "--hot-fraction",
        type=float,
        default=0.1,
        help="cache capacity as a fraction of all embedding rows",
    )
    serve.add_argument(
        "--cache-policy",
        default="static",
        choices=["static", "lru", "lfu", "fifo", "clock", "2q", "arc", "none"],
        help="serving cache variant (static = log-profiled hot set; "
        "the rest are reactive policies from the unified cache core)",
    )
    serve.add_argument("--max-batch", type=int, default=32, help="batcher capacity")
    serve.add_argument(
        "--max-wait", type=float, default=2e-3, help="batcher timeout (s)"
    )
    serve.add_argument(
        "--byte-scale",
        type=float,
        default=25.0,
        help="wire-dimension byte multiplier (trainer default: 400/16)",
    )
    serve.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the cache-off comparison run",
    )
    serve.add_argument(
        "--tenants",
        default=None,
        metavar="NAMES",
        help="comma-separated tenant names assigned round-robin to the "
        "stream; the report gains per-tenant p99 latency (defaults to "
        "the --admission spec's tenants when that is given)",
    )
    serve.add_argument(
        "--admission",
        default=None,
        metavar="SPEC",
        help="per-tenant token-bucket admission, clauses "
        "'name=rate[/burst][/p<priority>]', e.g. "
        "'gold=2000/256/p2,free=500/64,*=100' ('*' = wildcard bucket); "
        "over-rate arrivals get the first-class 'rejected' outcome",
    )
    serve.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="enable deadline-projecting load shedding against this "
        "latency SLO (ladder: full answer -> truncated top-k -> shed)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults into the shard-pull path "
        "(repro.faults grammar), e.g. "
        "'drop=0.1,ps-out=0@5:8,retries=4x0.004,seed=7'; exhausted "
        "retry budgets surface as 'timeout' outcomes, never crashes",
    )
    serve.add_argument(
        "--deploy-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot the trainer and atomically swap the serving "
        "version every N measured queries (double-buffered; the cache "
        "is re-warmed from trainer hot membership before each swap)",
    )
    serve.add_argument(
        "--no-rewarm",
        action="store_true",
        help="skip pre-swap cache re-warming (the naive deployment: "
        "demonstrates the post-swap hit-ratio cliff)",
    )
    serve.add_argument("--seed", type=int, default=0)
    _add_trace_flag(serve)
    _add_tier_flags(serve)
    _add_backend_flags(serve, serving=True)

    stream = sub.add_parser(
        "stream",
        help="train online through a drifting graph-update stream",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  hetkg stream --profile rotation --system hetkg-a\n"
            "  hetkg stream --profile burst --system hetkg-d --interval 4\n"
            "  hetkg stream --profile none --system hetkg-c   # static replay\n"
            "(see docs/streaming.md for profiles and the ADAPTIVE strategy)"
        ),
    )
    stream.add_argument(
        "--dataset", default="fb15k", help="built-in synthetic dataset name"
    )
    stream.add_argument("--scale", type=float, default=0.05, help="dataset scale")
    stream.add_argument(
        "--system",
        default="hetkg-a",
        help="hetkg-a | hetkg-d | hetkg-c | dglke (PS trainers only)",
    )
    stream.add_argument(
        "--profile",
        default="rotation",
        help="drift profile: none | rotation | zipf-shift | burst",
    )
    stream.add_argument("--model", default="transe", help="scoring model name")
    stream.add_argument("--epochs", type=int, default=3)
    stream.add_argument("--machines", type=int, default=4)
    stream.add_argument("--cache-capacity", type=int, default=1024)
    stream.add_argument(
        "--interval", type=int, default=8, help="steps between stream updates"
    )
    stream.add_argument(
        "--inserts", type=int, default=64, help="triples inserted per update"
    )
    stream.add_argument(
        "--eval-every",
        type=int,
        default=32,
        help="prequential-evaluation cadence in steps",
    )
    stream.add_argument("--seed", type=int, default=0)
    _add_neg_cache_flag(stream)
    _add_trace_flag(stream)

    sweep = sub.add_parser(
        "sweep", help="sweep one TrainingConfig field and tabulate outcomes"
    )
    sweep.add_argument("param", help="TrainingConfig field, e.g. sync_period")
    sweep.add_argument(
        "values", nargs="+", help="values to try (ints/floats parsed automatically)"
    )
    sweep.add_argument("--dataset", default="fb15k")
    sweep.add_argument("--scale", type=float, default=0.05)
    sweep.add_argument("--system", default="hetkg-d")
    sweep.add_argument("--epochs", type=int, default=4)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="train sweep points on N worker processes; the report is "
        "byte-identical to --jobs 1 (each point is an independent "
        "seeded run)",
    )
    return parser


def _runner_kwargs(runner, args: argparse.Namespace) -> dict:
    """Only pass overrides the runner's signature accepts."""
    accepted = inspect.signature(runner).parameters
    kwargs = {}
    for name in ("scale", "epochs", "seed", "faults", "jobs", "neg_cache"):
        value = getattr(args, name, None)
        if value is not None and name in accepted:
            kwargs[name] = value
    return kwargs


def _train(args: argparse.Namespace) -> int:
    """The ``train`` subcommand: data -> trainer -> metrics (-> checkpoint)."""
    from repro.core.checkpoint import save_checkpoint
    from repro.core.config import TrainingConfig
    from repro.core.trainer import make_trainer
    from repro.kg.datasets import generate_dataset, load_tsv
    from repro.kg.splits import split_triples
    from repro.utils.tables import format_table

    status = _validate_backend(args)
    if status is not None:
        return status
    status = _validate_neg_cache(args)
    if status is not None:
        return status
    if args.neg_cache not in (None, "off") and args.system.lower() == "pbg":
        # PBG's block trainer has its own corruption loop that never goes
        # through the NegativeSampler seam the cache plugs into.
        print(
            "--neg-cache is not supported for the PBG baseline",
            file=sys.stderr,
        )
        return 2
    use_mp = args.backend == "mp"
    if use_mp:
        # Fail fast on combinations the mp backend does not carry: the
        # observability tracer and fault channels splice per-step into a
        # single process, tiered tables hold process-local file handles,
        # and PBG has its own non-PS training loop.
        blockers = [
            ("--trace", args.trace is not None),
            ("--faults", bool(args.faults)),
            ("--checkpoint-every", args.checkpoint_every is not None),
            ("--backing tiered", args.backing == "tiered"),
            ("--system pbg", args.system.lower() == "pbg"),
        ]
        engaged = [flag for flag, on in blockers if on]
        if engaged:
            print(
                f"--backend mp does not support {', '.join(engaged)} "
                "(see docs/parallelism.md)",
                file=sys.stderr,
            )
            return 2

    if args.tsv is not None:
        graph = load_tsv(args.tsv)
        source = args.tsv
    else:
        graph = generate_dataset(args.dataset, scale=args.scale)
        source = f"{args.dataset} @ scale {args.scale}"
    split = split_triples(graph, seed=args.seed)
    print(f"dataset: {source} -> {graph}")

    if args.backing == "tiered" and args.system.lower() == "pbg":
        print("--backing tiered is not supported for the PBG baseline")
        return 2
    if args.memory_budget is not None and args.backing != "tiered":
        print("--memory-budget requires --backing tiered")
        return 2
    config = TrainingConfig(
        model=args.model,
        dim=args.dim,
        epochs=args.epochs,
        num_machines=args.machines,
        lr=args.lr,
        batch_size=args.batch_size,
        num_negatives=args.negatives,
        neg_cache=args.neg_cache or "off",
        cache_capacity=args.cache_capacity,
        sync_period=args.sync_period,
        backing=args.backing,
        memory_budget=args.memory_budget,
        tier_block_rows=args.tier_block_rows,
        tier_cold_codec=args.tier_cold_codec,
        tier_dir=args.tier_dir,
        seed=args.seed,
    )
    fault_plan = None
    if args.faults or args.checkpoint_every is not None:
        if args.system.lower() == "pbg":
            print("--faults/--checkpoint-every are not supported for the PBG baseline")
            return 2
    if args.faults:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.parse(args.faults)

    trainer = make_trainer(args.system, config)
    start = time.time()
    train_kwargs = {}
    if fault_plan is not None or args.checkpoint_every is not None:
        train_kwargs = dict(
            faults=fault_plan,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint,
        )
    if use_mp:
        result = trainer.train_mp(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=args.eval_queries,
            eval_candidates=None,
            schedule=args.mp_schedule or "async",
            staleness_bound=args.mp_staleness,
            start_method=args.mp_start,
        )
    else:
        result = trainer.train(
            split.train,
            eval_graph=split.test,
            filter_set=graph.triple_set(),
            eval_max_queries=args.eval_queries,
            eval_candidates=None,
            **train_kwargs,
        )
    print(
        format_table(
            ["system", "MRR", "Hits@1", "Hits@10", "sim time (s)", "comm frac", "cache hits"],
            [
                [
                    result.system,
                    result.final_metrics.get("mrr", 0.0),
                    result.final_metrics.get("hits@1", 0.0),
                    result.final_metrics.get("hits@10", 0.0),
                    result.sim_time,
                    result.communication_fraction,
                    result.cache_hit_ratio,
                ]
            ],
        )
    )
    print(f"(wall time: {time.time() - start:.1f}s)")
    if use_mp:
        from repro.obs import reconcile

        print(reconcile(result).to_text())
    if config.backing == "tiered" and result.memory_report:
        _print_memory_report(result.memory_report)
        print(f"tier time: {result.tier_time:.3f}s simulated")
    if result.fault_stats:
        interesting = {
            k: v for k, v in result.fault_stats.items() if v
        }
        print(f"fault stats: {interesting or 'no faults fired'}")
    if result.neg_cache_stats:
        stats = result.neg_cache_stats
        print(
            f"neg cache: {stats.get('refreshes', 0)} refreshes over "
            f"{stats.get('refreshed_keys', 0)} keys, "
            f"{stats.get('candidates_scored', 0)} candidates scored, "
            f"{stats.get('hard_negatives_served', 0)} hard negatives "
            f"served, {stats.get('refresh_bytes', 0) / 1e6:.1f} MB refresh "
            f"traffic, {stats.get('neg_cache_time', 0.0):.3f}s simulated"
        )
    if args.checkpoint is not None:
        if args.system.lower() == "pbg":
            print("checkpointing is not supported for the PBG baseline")
            return 1
        save_checkpoint(trainer, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _serve_bench(args: argparse.Namespace) -> int:
    """The ``serve-bench`` subcommand: checkpoint/train -> workload -> SLOs."""
    from repro.experiments.serving_study import (
        serve_once,
        split_warmup,
        trained_store,
    )
    from repro.serving.cache import ServingCache
    from repro.serving.store import EmbeddingStore
    from repro.serving.workload import WorkloadSpec, ZipfianWorkload
    from repro.utils.tables import format_table
    from repro.serving.metrics import ServingReport

    status = _validate_backend(args)
    if status is not None:
        return status
    use_mp = args.backend == "mp"

    overload = (
        args.tenants is not None
        or args.admission is not None
        or args.slo is not None
        or args.faults is not None
        or args.deploy_every is not None
    )
    if use_mp:
        # The overload layer (admission windows, shed ladders, deploy
        # swaps) is stateful per-stream and is modelled single-frontend;
        # tiered backings hold process-local file handles; the tracer is
        # process-local.  Fail fast rather than silently measure the
        # wrong thing.
        blockers = [
            ("--tenants", args.tenants is not None),
            ("--admission", args.admission is not None),
            ("--slo", args.slo is not None),
            ("--faults", args.faults is not None),
            ("--deploy-every", args.deploy_every is not None),
            ("--backing tiered", args.backing == "tiered"),
            ("--trace", args.trace is not None),
        ]
        engaged = [flag for flag, on in blockers if on]
        if engaged:
            print(
                f"--backend mp does not support {', '.join(engaged)} "
                "(see docs/parallelism.md)",
                file=sys.stderr,
            )
            return 2
    if args.deploy_every is not None and args.checkpoint is not None:
        print("--deploy-every snapshots a live trainer; drop --checkpoint")
        return 2
    spec = WorkloadSpec(
        num_queries=args.queries,
        arrival_rate=args.rate,
        zipf_exponent=args.zipf,
        num_candidates=args.candidates,
        seed=args.seed + 11,
    )
    if args.memory_budget is not None and args.backing != "tiered":
        print("--memory-budget requires --backing tiered")
        return 2
    tier_cfg = _tier_config(args)
    trainer = None
    if args.checkpoint is not None:
        store = EmbeddingStore.from_checkpoint(
            args.checkpoint,
            num_machines=args.machines,
            backing=args.backing,
            tier=tier_cfg,
        )
        workload = ZipfianWorkload(store.num_entities, store.num_relations, spec)
        print(f"serving checkpoint {args.checkpoint}: {store}")
    else:
        if args.deploy_every is not None:
            store, bundle, trainer = trained_store(
                dataset=args.dataset,
                scale=args.scale,
                seed=args.seed,
                epochs=args.epochs,
                with_trainer=True,
            )
        else:
            store, bundle = trained_store(
                dataset=args.dataset,
                scale=args.scale,
                seed=args.seed,
                epochs=args.epochs,
            )
        workload = ZipfianWorkload.from_graph(bundle.graph, spec)
        print(f"trained {args.dataset} @ scale {args.scale}: {store}")
        if args.backing == "tiered":
            store = store.with_backing("tiered", tier_cfg)
            print(f"re-tiered for serving: {store.store.tier.budget!r}")

    warmup, measured = split_warmup(workload.generate())
    capacity = max(
        2, int(args.hot_fraction * (store.num_entities + store.num_relations))
    )

    def _make_cache():
        if args.cache_policy == "none":
            return None
        if args.cache_policy == "static":
            return ServingCache.from_query_log(warmup, capacity)
        return ServingCache.dynamic(capacity, policy=args.cache_policy)

    cache = _make_cache()
    label = args.cache_policy if cache is not None else "no-cache"
    title = (
        f"[serve-bench] {len(measured)} measured queries, "
        f"cache capacity {capacity} rows"
    )

    if use_mp:
        return _serve_bench_mp(args, store, measured, warmup, capacity, title)

    if overload:
        return _serve_bench_overload(
            args, store, trainer, measured, cache, label, title
        )

    def _run(cache_obj, label):
        return serve_once(
            store,
            measured,
            cache_obj,
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            byte_scale=args.byte_scale,
            label=label,
        )

    rows = []
    if not args.no_baseline:
        rows.append(_run(None, "no-cache").as_row())
    report = _run(cache, label)
    rows.append(report.as_row())
    print(format_table(ServingReport.headers(), rows, title=title))
    print(
        f"throughput {report.throughput:.0f} q/s | "
        f"p50 {report.latency_p50 * 1e3:.3f} ms | "
        f"p95 {report.latency_p95 * 1e3:.3f} ms | "
        f"p99 {report.latency_p99 * 1e3:.3f} ms | "
        f"hit ratio {report.hit_ratio:.3f}"
    )
    if args.backing == "tiered":
        _print_memory_report(store.memory_report())
    return 0


def _serve_bench_mp(
    args: argparse.Namespace, store, measured, warmup, capacity, title
) -> int:
    """serve-bench over N frontend processes sharing one embedding store.

    Each replica builds its own cache/batcher and replays a round-robin
    slice of the measured stream; the merged report's percentiles are
    exact over all completions (see :mod:`repro.mp.serve`).
    """
    from repro.mp.pool import default_jobs
    from repro.mp.serve import serve_mp
    from repro.serving.metrics import ServingReport
    from repro.utils.tables import format_table

    frontends = args.mp_workers or default_jobs()
    result = serve_mp(
        store,
        measured,
        num_frontends=frontends,
        cache_policy=args.cache_policy,
        warmup=warmup,
        capacity=capacity,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        byte_scale=args.byte_scale,
        start_method=args.mp_start,
    )
    rows = [r.as_row() for r in result.per_frontend]
    rows.append(result.report.as_row())
    print(
        format_table(
            ServingReport.headers(),
            rows,
            title=f"{title}, {frontends} frontend processes",
        )
    )
    merged = result.report
    print(
        f"merged: {merged.throughput:.0f} q/s simulated | "
        f"{result.wall_throughput:.0f} q/s wall | "
        f"p99 {merged.latency_p99 * 1e3:.3f} ms | "
        f"hit ratio {merged.hit_ratio:.3f} | "
        f"wall {result.wall_time_s:.2f}s across {frontends} processes"
    )
    return 0


def _serve_bench_overload(
    args: argparse.Namespace, store, trainer, measured, cache, label, title
) -> int:
    """serve-bench with any of the overload knobs engaged.

    Builds the frontend directly (admission/shedder/faults threaded in)
    and, with ``--deploy-every``, replays the stream in chunks with an
    atomic version swap published between chunks.
    """
    from repro.ps.network import NetworkModel
    from repro.serving.admission import (
        AdmissionController,
        LoadShedder,
        assign_tenants,
    )
    from repro.serving.batcher import QueryBatcher
    from repro.serving.frontend import ServingFrontend
    from repro.serving.metrics import ServingReport
    from repro.utils.tables import format_table

    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.parse(args.faults)
    tenant_names = [
        t.strip() for t in (args.tenants or "").split(",") if t.strip()
    ]
    if not tenant_names and args.admission is not None:
        tenant_names = [
            n for n in AdmissionController.parse(args.admission).specs if n != "*"
        ]
    queries = list(measured.queries)
    if tenant_names:
        queries = assign_tenants(queries, tenant_names)

    serving_store = store
    deploy = None
    if args.deploy_every is not None:
        from repro.serving.deploy import (
            ContinuousDeployment,
            VersionedStore,
            snapshot_from_trainer,
        )

        serving_store = VersionedStore(snapshot_from_trainer(trainer))

    frontend = ServingFrontend(
        serving_store,
        batcher=QueryBatcher(max_batch=args.max_batch, max_wait=args.max_wait),
        cache=cache,
        network=NetworkModel(),
        byte_scale=args.byte_scale,
        admission=(
            AdmissionController.parse(args.admission)
            if args.admission is not None
            else None
        ),
        shedder=LoadShedder(slo=args.slo) if args.slo is not None else None,
        faults=fault_plan,
    )
    if args.deploy_every is not None:
        deploy = ContinuousDeployment(
            serving_store, frontend, rewarm=not args.no_rewarm
        )
        for start in range(0, len(queries), args.deploy_every):
            if start:
                deploy.publish(trainer, step=start)
            frontend.run(queries[start : start + args.deploy_every])
        report = frontend.report(label=label)
    else:
        report = frontend.run(queries, label=label)

    print(format_table(ServingReport.headers(), [report.as_row()], title=title))
    print(
        f"throughput {report.throughput:.0f} q/s | "
        f"p50 {report.latency_p50 * 1e3:.3f} ms | "
        f"p95 {report.latency_p95 * 1e3:.3f} ms | "
        f"p99 {report.latency_p99 * 1e3:.3f} ms | "
        f"hit ratio {report.hit_ratio:.3f}"
    )
    print(
        f"outcomes: admitted {report.num_admitted} | "
        f"rejected {report.num_rejected} | shed {report.num_shed} | "
        f"timeout {report.num_timeout} | degraded {report.num_degraded}"
    )
    slo_note = f" (SLO {args.slo * 1e3:.1f} ms)" if args.slo is not None else ""
    print(
        f"shed rate {report.shed_rate:.3f} | "
        f"goodput {report.goodput:.0f} q/s{slo_note}"
    )
    if report.tenant_p99:
        print(
            "tenant p99: "
            + " | ".join(
                f"{t}={v * 1e3:.3f} ms" for t, v in report.tenant_p99.items()
            )
        )
    if frontend.injector is not None:
        stats = frontend.injector.stats
        print(
            f"faults: retries={stats.retries}, "
            f"retry wait={stats.retry_wait_seconds:.4f}s simulated"
        )
    if deploy is not None:
        print(
            f"deploy: {serving_store.swaps} swaps, "
            f"staleness {serving_store.staleness} steps, "
            f"{deploy.warm_traffic.total_bytes / 1e6:.3f} MB re-warm traffic"
            + (" (re-warming off)" if args.no_rewarm else "")
        )
    if args.backing == "tiered":
        _print_memory_report(store.memory_report())
    return 0


def _stream(args: argparse.Namespace) -> int:
    """The ``stream`` subcommand: online training under hotness drift."""
    import math

    from repro.core.config import TrainingConfig
    from repro.core.trainer import make_trainer
    from repro.kg.datasets import generate_dataset
    from repro.stream import OnlineTrainer, make_stream
    from repro.utils.tables import format_table

    if args.system.lower() == "pbg":
        print("the PBG block baseline has no PS cache path to stream into")
        return 2
    status = _validate_neg_cache(args)
    if status is not None:
        return status

    graph = generate_dataset(args.dataset, scale=args.scale)
    config = TrainingConfig(
        model=args.model,
        epochs=args.epochs,
        num_machines=args.machines,
        cache_capacity=args.cache_capacity,
        neg_cache=args.neg_cache or "off",
        seed=args.seed,
    )
    steps = args.epochs * math.ceil(graph.num_triples / config.batch_size)
    knobs = (
        {}
        if args.profile == "none"
        else {"interval": args.interval, "inserts_per_update": args.inserts}
    )
    stream = make_stream(
        args.profile, graph, steps=steps, seed=args.seed + 17, **knobs
    )
    print(
        f"dataset: {args.dataset} @ scale {args.scale} -> {graph}\n"
        f"stream: profile={stream.profile} updates={len(stream.updates)} "
        f"inserts={stream.total_inserts} deletes={stream.total_deletes} "
        f"fingerprint={stream.fingerprint()[:12]}"
    )

    trainer = make_trainer(args.system, config)
    online = OnlineTrainer(trainer, stream, eval_every=args.eval_every)
    start = time.time()
    result = online.train(graph)
    print(
        format_table(
            [
                "system",
                "steps",
                "hit ratio",
                "sim time (s)",
                "ingest (s)",
                "remote MB",
                "preq. MRR",
                "rebuilds",
            ],
            [
                [
                    result.system,
                    result.steps,
                    result.cache_hit_ratio,
                    result.sim_time,
                    result.ingest_time,
                    result.comm_totals.remote_bytes / 1e6,
                    result.prequential.final_mrr,
                    result.adaptive_rebuilds,
                ]
            ],
        )
    )
    print(
        f"applied {result.updates_applied} updates: "
        f"+{result.triples_inserted}/-{result.triples_deleted} triples, "
        f"+{result.entities_added} entities, +{result.relations_added} "
        f"relations, {result.cache_rows_invalidated} cache rows invalidated"
    )
    if result.neg_cache_stats:
        stats = result.neg_cache_stats
        print(
            f"neg cache: {stats.get('refreshes', 0)} refreshes, "
            f"{stats.get('candidates_scored', 0)} candidates scored, "
            f"{stats.get('refresh_bytes', 0) / 1e6:.1f} MB refresh traffic, "
            f"{result.neg_cache_keys_invalidated} keys invalidated by "
            "stream deletes"
        )
    print(f"(wall time: {time.time() - start:.1f}s)")
    return 0


def _parse_value(text: str):
    """Best-effort scalar parsing for sweep values."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    if text.lower() in ("none", "null"):
        return None
    return text


def _sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: one-dimensional config sweep."""
    from repro.core.config import TrainingConfig
    from repro.experiments.sweep import run_sweep
    from repro.kg.datasets import generate_dataset
    from repro.kg.splits import split_triples

    graph = generate_dataset(args.dataset, scale=args.scale)
    split = split_triples(graph, seed=args.seed)
    config = TrainingConfig(
        epochs=args.epochs, seed=args.seed, cache_strategy="dps"
    )
    values = [_parse_value(v) for v in args.values]
    result = run_sweep(
        args.system,
        config,
        split,
        {args.param: values},
        filter_set=graph.triple_set(),
        jobs=args.jobs,
    )
    print(f"dataset: {args.dataset} @ scale {args.scale} -> {graph}")
    print(result.to_text())
    best = result.best("sim_time", minimize=True)
    print(f"fastest: {args.param}={best[args.param]} ({best['sim_time']:.3f}s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return _dispatch(args)

    from repro.obs import Tracer, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    try:
        status = _dispatch(args)
    finally:
        set_tracer(None)
        tracer.export(trace_path)
        print(f"trace written to {trace_path} (open in chrome://tracing)")
    return status


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name in list_experiments():
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    if args.command == "report":
        from repro.experiments.report import generate_report

        generate_report(only=args.only, output=args.output, append=args.append)
        print(f"wrote {args.output}")
        return 0

    if args.command == "train":
        return _train(args)

    if args.command == "serve-bench":
        return _serve_bench(args)

    if args.command == "stream":
        return _stream(args)

    if args.command == "sweep":
        return _sweep(args)

    status = _validate_neg_cache(args)
    if status is not None:
        return status
    names = list_experiments() if args.experiment == "all" else [args.experiment]
    runners = []
    for name in names:
        try:
            runners.append(get_experiment(name))
        except KeyError:
            import difflib

            valid = list_experiments()
            close = difflib.get_close_matches(name, valid, n=3, cutoff=0.4)
            print(f"unknown experiment {name!r}", file=sys.stderr)
            if close:
                print(
                    "did you mean: " + ", ".join(close), file=sys.stderr
                )
            print("valid ids: " + ", ".join(valid), file=sys.stderr)
            return 2

    jobs = getattr(args, "jobs", 1)
    if jobs > 1 and len(names) > 1:
        from repro.experiments.parallel import run_experiments

        start = time.time()
        outcomes = run_experiments(
            names,
            jobs=jobs,
            kwargs_per_name=[_runner_kwargs(r, args) for r in runners],
        )
        for _, result in outcomes:
            print(result.to_text())
            print()
        print(
            f"({len(names)} experiments on {jobs} workers, "
            f"wall time: {time.time() - start:.1f}s)"
        )
        return 0

    for name, runner in zip(names, runners):
        start = time.time()
        result = runner(**_runner_kwargs(runner, args))
        print(result.to_text())
        print(f"(wall time: {time.time() - start:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
