"""repro.obs — span-based tracing and metrics over the simulated cluster.

The observability layer (see ``docs/observability.md``):

* :class:`Tracer` / :class:`TraceScope` — spans timed against
  :class:`~repro.utils.simclock.SimClock`, so durations reconcile
  exactly with the accounting the paper's tables are built from.
* :class:`MetricsRegistry` — counters and gauges with timestamped
  samples.
* :mod:`repro.obs.export` — Chrome-trace JSON for ``chrome://tracing``
  and Perfetto, plus a schema validator used by CI.
* :func:`set_tracer` / :func:`get_tracer` — process-wide tracer the CLI
  ``--trace`` flag installs; everything defaults to the zero-cost
  :data:`NULL_TRACER` when tracing is off.
"""

from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.reconcile import ReconcileReport, WorkerReconcile, reconcile
from repro.obs.sinks import CounterSample, InMemorySink, NullSink, SpanRecord, TraceSink
from repro.obs.tracer import (
    NULL_SCOPE,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    TraceScope,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "CounterSample",
    "Gauge",
    "InMemorySink",
    "MetricsRegistry",
    "NULL_SCOPE",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSink",
    "ReconcileReport",
    "Span",
    "SpanRecord",
    "TraceScope",
    "TraceSink",
    "Tracer",
    "WorkerReconcile",
    "get_tracer",
    "reconcile",
    "set_tracer",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]
