"""Counters and gauges: scalar observability next to the span tracer.

Spans answer "where did the time go"; counters answer "how much of X
happened" (steps, rebuilds, bytes, batch flushes) and gauges record
last-seen levels (cache occupancy, pending queue depth).  The registry
is deliberately tiny: names map to monotone :class:`Counter` or
last-write-wins :class:`Gauge` objects, and :meth:`MetricsRegistry.snapshot`
flattens everything into a plain dict for reports and tests.

Timestamped *samples* of these metrics are emitted through the tracer's
sink (see :meth:`repro.obs.tracer.TraceScope.count`), which is how they
end up as ``ph: "C"`` counter tracks in the Chrome-trace export.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Counter:
    """A monotonically increasing scalar."""

    name: str
    value: float = 0.0

    def add(self, delta: float = 1.0) -> float:
        """Increment and return the new cumulative value."""
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {delta})")
        self.value += delta
        return self.value


@dataclass
class Gauge:
    """A last-write-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value


class MetricsRegistry:
    """Name -> metric registry with on-demand creation."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def snapshot(self) -> dict[str, float]:
        """All metric values as a flat dict (counters and gauges)."""
        out = {name: c.value for name, c in self._counters.items()}
        out.update({name: g.value for name, g in self._gauges.items()})
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges
