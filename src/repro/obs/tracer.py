"""Span tracer driven by simulated clocks.

The simulation already keeps exact per-machine time in
:class:`~repro.utils.simclock.SimClock`; the tracer turns that scalar
into *structure*: named spans that open and close at simulated
timestamps, grouped into per-component tracks, carrying byte/hit
attributes.  Because enter/exit read the same clock the instrumented
code advances, a span's duration is exactly the simulated time charged
inside it — span totals reconcile against ``SimClock.by_category`` to
float tolerance, which the accounting tests assert.

Usage::

    tracer = Tracer()
    scope = tracer.scope("worker0", worker.clock)
    with scope.span("fetch", "communication") as span:
        ...                       # advances worker.clock
        span.set(bytes=comm.total_bytes)
    tracer.export("trace.json")   # chrome://tracing / Perfetto

Disabled tracing is *zero-cost*: components default to the module-level
:data:`NULL_SCOPE`, whose ``span()`` returns one shared no-op context
manager — no span objects are allocated, nothing is stored, and no clock
is read.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import CounterSample, InMemorySink, SpanRecord, TraceSink
from repro.utils.simclock import SimClock


class Span:
    """A live span: records clock timestamps on enter/exit.

    Created by :meth:`TraceScope.span`; use as a context manager.  Extra
    attributes discovered mid-span (bytes moved, rows hit) are attached
    with :meth:`set`.
    """

    __slots__ = ("_scope", "name", "category", "start", "end", "attrs")

    def __init__(self, scope: "TraceScope", name: str, category: str, attrs: dict):
        self._scope = scope
        self.name = name
        self.category = category
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; chainable, safe to call multiple times."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = self._scope.clock.elapsed
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._scope.clock.elapsed
        self._scope.tracer.sink.emit_span(
            SpanRecord(
                name=self.name,
                track=self._scope.track,
                start=self.start,
                end=self.end,
                category=self.category,
                attrs=self.attrs,
            )
        )
        return False


class TraceScope:
    """A tracer bound to one track (component) and one clock.

    Every simulated component that owns (or shares) a clock gets its own
    scope: ``worker0``, ``cache0``, ``ps@w0``, ``serving``...  Spans and
    counter samples emitted through the scope are timestamped with the
    scope's clock.
    """

    __slots__ = ("tracer", "track", "clock")

    def __init__(self, tracer: "Tracer", track: str, clock: SimClock):
        self.tracer = tracer
        self.track = track
        self.clock = clock

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, category: str = "misc", **attrs: object) -> Span:
        """A context manager timing ``name`` against the scope's clock."""
        return Span(self, name, category, dict(attrs))

    def count(self, name: str, value: float = 1.0) -> None:
        """Bump counter ``name`` and emit a timestamped sample."""
        total = self.tracer.metrics.counter(name).add(value)
        self.tracer.sink.emit_counter(
            CounterSample(name=name, track=self.track, ts=self.clock.elapsed, value=total)
        )

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` and emit a timestamped sample."""
        self.tracer.metrics.gauge(name).set(value)
        self.tracer.sink.emit_counter(
            CounterSample(name=name, track=self.track, ts=self.clock.elapsed, value=value)
        )


class Tracer:
    """Factory for :class:`TraceScope` objects sharing one sink/registry."""

    enabled = True

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink: TraceSink = sink if sink is not None else InMemorySink()
        self.metrics = MetricsRegistry()

    def scope(self, track: str, clock: SimClock) -> TraceScope:
        return TraceScope(self, track, clock)

    # ------------------------------------------------------------------ export

    def chrome_trace(self) -> dict:
        """The collected records as a Chrome-trace (Trace Event) dict.

        Requires the default :class:`InMemorySink` (or any sink exposing
        ``spans`` and ``counters`` lists).
        """
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self.sink)

    def export(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self.sink, path)


# --------------------------------------------------------------- disabled path


class _NullSpan:
    """Shared no-op span: never reads a clock, never stores anything."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullScope:
    """Shared no-op scope handed to components when tracing is off."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, category: str = "misc", **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


NULL_SCOPE = _NullScope()


class _NullTracer:
    """Disabled tracer: all scopes are the shared :data:`NULL_SCOPE`."""

    enabled = False

    def scope(self, track: str, clock: SimClock) -> _NullScope:
        return NULL_SCOPE


NULL_TRACER = _NullTracer()

# ------------------------------------------------------------- global tracer

_GLOBAL_TRACER: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-wide tracer.

    Components built afterwards — trainers, serving frontends — pick it
    up automatically when no explicit tracer is passed.  This is what
    the CLI ``--trace`` flag uses so experiments need no plumbing.
    """
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer


def get_tracer() -> Tracer | _NullTracer:
    """The process-wide tracer, or the zero-cost null tracer."""
    return _GLOBAL_TRACER if _GLOBAL_TRACER is not None else NULL_TRACER
