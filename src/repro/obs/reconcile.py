"""Wall-clock vs sim-clock reconciliation for mp training runs.

The simulator charges every pull/push against a :class:`~repro.utils.
simclock.SimClock` using the paper's analytical network model; the mp
backend additionally measures *real* seconds — per-worker wall span,
protocol stall time, and time spent inside parameter-server calls
(:class:`~repro.mp.worker.WallClockChannel`).  :func:`reconcile` lines the
two up:

* **predicted** communication fraction: the simulated clock's
  ``communication / elapsed`` per worker — what the model claims the
  workload's balance is;
* **measured** communication fraction: ``comm_wall_s / busy_s`` where
  ``busy_s = wall_s - stall_s`` — what this host actually spent, with
  protocol waiting (turn-taking, staleness bound) excluded so the sync
  schedule's deliberate serialization does not masquerade as skew.

A large gap is not an error — the simulated network is a model of a
cluster fabric, not of this host's memory bus — but the *relative* shape
(which worker is communication-heavy, how skewed the machines are) should
agree.  ``ReconcileReport.to_text()`` renders the comparison the CLI
prints after ``train --backend mp``.
"""

from __future__ import annotations

from dataclasses import dataclass


def _fraction(part: float, whole: float) -> float:
    return part / whole if whole > 0 else 0.0


@dataclass(frozen=True)
class WorkerReconcile:
    """One worker's predicted-vs-measured communication balance."""

    machine: int
    #: Simulated seconds (this worker's SimClock).
    sim_elapsed: float
    sim_comm: float
    sim_compute: float
    #: Measured seconds on the host.
    wall_s: float
    stall_s: float
    comm_wall_s: float
    steps: int

    @property
    def busy_s(self) -> float:
        """Wall time minus protocol stalls (turn/staleness/gate waits)."""
        return max(0.0, self.wall_s - self.stall_s)

    @property
    def predicted_comm_fraction(self) -> float:
        return _fraction(self.sim_comm, self.sim_elapsed)

    @property
    def measured_comm_fraction(self) -> float:
        return _fraction(self.comm_wall_s, self.busy_s)

    @property
    def stall_fraction(self) -> float:
        return _fraction(self.stall_s, self.wall_s)


@dataclass(frozen=True)
class ReconcileReport:
    """Run-level reconciliation between simulated and measured clocks."""

    backend: str
    #: Simulated makespan (slowest worker's clock) vs the real elapsed
    #: seconds of the whole ``train()`` call.
    sim_time: float
    wall_time_s: float
    workers: tuple[WorkerReconcile, ...]

    @property
    def predicted_comm_fraction(self) -> float:
        """Aggregate simulated communication share across workers."""
        return _fraction(
            sum(w.sim_comm for w in self.workers),
            sum(w.sim_elapsed for w in self.workers),
        )

    @property
    def measured_comm_fraction(self) -> float:
        """Aggregate measured communication share (stalls excluded)."""
        return _fraction(
            sum(w.comm_wall_s for w in self.workers),
            sum(w.busy_s for w in self.workers),
        )

    @property
    def comm_fraction_gap(self) -> float:
        """measured - predicted; sign says which way the model is off."""
        return self.measured_comm_fraction - self.predicted_comm_fraction

    def to_text(self) -> str:
        """Human-readable report (what the CLI prints for mp runs)."""
        lines = [
            f"clock reconciliation ({self.backend})",
            f"  sim makespan {self.sim_time:.3f}s"
            f"  wall {self.wall_time_s:.3f}s",
            f"  comm fraction: predicted {self.predicted_comm_fraction:.1%}"
            f"  measured {self.measured_comm_fraction:.1%}"
            f"  gap {self.comm_fraction_gap:+.1%}",
        ]
        for w in sorted(self.workers, key=lambda w: w.machine):
            lines.append(
                f"  worker m{w.machine}: wall {w.wall_s:.3f}s"
                f" (stalled {w.stall_fraction:.0%})"
                f"  comm {w.measured_comm_fraction:.1%} measured"
                f" vs {w.predicted_comm_fraction:.1%} predicted"
                f"  [{w.steps} steps]"
            )
        if not self.workers:
            lines.append(
                "  (no per-worker wall spans: simulator backend measures"
                " wall time only for the whole run)"
            )
        return "\n".join(lines)


def reconcile(result) -> ReconcileReport:
    """Build a :class:`ReconcileReport` from a :class:`TrainResult`.

    Works for both backends: simulator results carry no per-worker wall
    spans, so their report has an empty ``workers`` tuple and only the
    run-level ``sim_time`` / ``wall_time_s`` comparison.
    """
    workers = tuple(
        WorkerReconcile(
            machine=machine,
            sim_elapsed=span.get("sim_elapsed", 0.0),
            sim_comm=span.get("sim_comm", 0.0),
            sim_compute=span.get("sim_compute", 0.0),
            wall_s=span.get("wall_s", 0.0),
            stall_s=span.get("stall_s", 0.0),
            comm_wall_s=span.get("comm_wall_s", 0.0),
            steps=span.get("steps", 0),
        )
        for machine, span in sorted(result.worker_wall.items())
    )
    return ReconcileReport(
        backend=result.backend,
        sim_time=result.sim_time,
        wall_time_s=result.wall_time_s,
        workers=workers,
    )
