"""Trace sinks: where finished spans and counter samples go.

A sink is the pluggable backend of the tracer.  The tracer itself only
*times* spans against a :class:`~repro.utils.simclock.SimClock`; what
happens to a finished span is the sink's business.  The default
:class:`InMemorySink` simply collects records so they can be exported to
Chrome-trace JSON (:mod:`repro.obs.export`) or aggregated in tests; a
:class:`NullSink` drops everything (used when only counters matter).

Custom sinks (streaming to a file, forwarding to a metrics service) need
only implement the two ``emit_*`` methods of :class:`TraceSink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval on a track.

    ``start``/``end`` are *simulated* seconds read from the owning scope's
    :class:`~repro.utils.simclock.SimClock` at enter/exit.  ``category``
    mirrors the clock categories (``"compute"``, ``"communication"``,
    ...), which is what lets span totals be reconciled against
    ``SimClock.by_category`` exactly.
    """

    name: str
    track: str
    start: float
    end: float
    category: str = "misc"
    attrs: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One timestamped observation of a counter or gauge."""

    name: str
    track: str
    ts: float
    value: float


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive finished spans and counter samples."""

    def emit_span(self, span: SpanRecord) -> None: ...

    def emit_counter(self, sample: CounterSample) -> None: ...


class InMemorySink:
    """Default sink: keep every record in memory, in emission order.

    Spans are emitted on *exit*, so a child span appears before its
    parent; the Chrome-trace exporter re-sorts by start time.
    """

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.counters: list[CounterSample] = []

    def emit_span(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def emit_counter(self, sample: CounterSample) -> None:
        self.counters.append(sample)

    def clear(self) -> None:
        self.spans.clear()
        self.counters.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.counters)

    # ------------------------------------------------------------ aggregation

    def category_totals(self, track: str | None = None) -> dict[str, float]:
        """Sum span durations per category (optionally for one track).

        This is the reconciliation view: for an instrumented worker,
        ``category_totals("worker0")`` must equal that worker's
        ``SimClock.by_category`` to float tolerance.
        """
        totals: dict[str, float] = {}
        for span in self.spans:
            if track is not None and span.track != track:
                continue
            totals[span.category] = totals.get(span.category, 0.0) + span.duration
        return totals

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]


class NullSink:
    """Discards everything (tracer stays enabled, nothing is stored)."""

    def emit_span(self, span: SpanRecord) -> None:
        pass

    def emit_counter(self, sample: CounterSample) -> None:
        pass
