"""Chrome-trace (Trace Event Format) export and validation.

Converts collected :class:`~repro.obs.sinks.SpanRecord` /
:class:`~repro.obs.sinks.CounterSample` objects into the JSON object
format understood by ``chrome://tracing`` and https://ui.perfetto.dev:

* spans become complete events (``ph: "X"``) with microsecond ``ts`` /
  ``dur`` derived from simulated seconds,
* counters become counter events (``ph: "C"``),
* tracks become named threads (``ph: "M"`` ``thread_name`` metadata).

The exporter sorts events by timestamp (parents before children on
ties), so the output stream is monotone — the validator and the CI
trace-smoke job both check this.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.sinks import CounterSample, SpanRecord

#: Simulated seconds -> Trace Event microseconds.
US_PER_SECOND = 1e6

_REQUIRED_KEYS = {"name", "ph", "pid", "tid"}


def to_chrome_trace(sink) -> dict:
    """Build the Chrome-trace dict from a sink's records.

    ``sink`` must expose ``spans`` and ``counters`` lists (the default
    :class:`~repro.obs.sinks.InMemorySink` does).
    """
    spans: Iterable[SpanRecord] = getattr(sink, "spans", [])
    counters: Iterable[CounterSample] = getattr(sink, "counters", [])

    tracks = sorted(
        {s.track for s in spans} | {c.track for c in counters}
    )
    tid_of = {track: tid for tid, track in enumerate(tracks)}

    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tid_of.items()
    ]

    timed: list[dict] = []
    for s in spans:
        timed.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": s.start * US_PER_SECOND,
                "dur": s.duration * US_PER_SECOND,
                "pid": 0,
                "tid": tid_of[s.track],
                "args": dict(s.attrs),
            }
        )
    for c in counters:
        timed.append(
            {
                "name": c.name,
                "ph": "C",
                "ts": c.ts * US_PER_SECOND,
                "pid": 0,
                "tid": tid_of[c.track],
                "args": {c.name: c.value},
            }
        )
    # Monotone stream; on equal ts put longer (enclosing) spans first so
    # viewers nest children correctly.
    timed.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))

    return {
        "traceEvents": meta + timed,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_base": "simulated-seconds"},
    }


def write_chrome_trace(sink, path: str) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_chrome_trace(sink), f, indent=1)


# ------------------------------------------------------------------ validation


def validate_chrome_trace(trace: dict) -> dict[str, float]:
    """Check ``trace`` against the Trace Event object-format schema.

    Raises :class:`ValueError` on the first violation; returns a small
    summary (event counts and per-category duration totals in simulated
    seconds) so callers — including the CI trace-smoke job — can print
    something useful on success.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a 'traceEvents' array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")

    last_ts: float | None = None
    n_spans = n_counters = 0
    category_seconds: dict[str, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        missing = _REQUIRED_KEYS - event.keys()
        if missing:
            raise ValueError(f"event {i} missing keys {sorted(missing)}")
        ph = event["ph"]
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i} ({event['name']!r}) has no numeric 'ts'")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i} ({event['name']!r}) breaks ts monotonicity: "
                f"{ts} < {last_ts}"
            )
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {i} ({event['name']!r}) needs a non-negative 'dur'"
                )
            n_spans += 1
            cat = event.get("cat", "misc")
            category_seconds[cat] = (
                category_seconds.get(cat, 0.0) + dur / US_PER_SECOND
            )
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(
                    f"counter event {i} ({event['name']!r}) needs non-empty 'args'"
                )
            if not all(isinstance(v, (int, float)) for v in args.values()):
                raise ValueError(
                    f"counter event {i} ({event['name']!r}) has non-numeric values"
                )
            n_counters += 1
        else:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")

    return {
        "events": float(len(events)),
        "spans": float(n_spans),
        "counters": float(n_counters),
        **{f"seconds[{k}]": v for k, v in sorted(category_seconds.items())},
    }


def validate_chrome_trace_file(path: str) -> dict[str, float]:
    """Load ``path`` and :func:`validate_chrome_trace` it."""
    with open(path, encoding="utf-8") as f:
        return validate_chrome_trace(json.load(f))
