"""Streaming-drift study: online training under hotness drift.

The paper's motivation for DPS is that hotness *changes over time*, yet
its evaluation (and this repo's other experiments) trains on frozen
graphs, where a stationary access distribution flatters CPS.  This
experiment finally gives the dynamic strategies a dynamic workload: every
system trains through the same seeded event stream
(:mod:`repro.stream.events`) under each drift profile, and we compare
cache hit-ratio, simulated time, remote traffic, and prequential MRR.

Expected shape of the results (asserted at the bottom of the runner for
the hot-set-rotation profile):

* **CPS degrades visibly** vs its own stationary (``none``-profile) run —
  its one-shot hot set goes stale as the hot set rotates;
* **DPS** re-tracks every window, so it stays close to its stationary
  hit-ratio;
* **ADAPTIVE** ≥ DPS ≥ CPS: finer-grained windows plus drift-triggered
  rebuilds track the rotation fastest.
"""

from __future__ import annotations

import math

from repro.core.trainer import make_trainer
from repro.experiments.common import (
    ExperimentResult,
    SYSTEM_LABELS,
    base_config,
    dataset_bundle,
)
from repro.experiments.parallel import parallel_map
from repro.stream import OnlineTrainer, make_stream

#: Systems compared (PBG's block loop has no PS cache path to adapt).
STREAM_SYSTEMS = ("dglke", "hetkg-c", "hetkg-d", "hetkg-a")

#: Drift profiles, with ``none`` first as the stationary reference.
STREAM_PROFILES = ("none", "rotation", "zipf-shift", "burst")

#: Steps between stream updates (vs the shared ``dps_window`` of 16).
UPDATE_INTERVAL = 8


def _run_cell(task: tuple[str, str, float, int, int]):
    """One (profile, system) online run (module-level: picklable)."""
    profile, system, scale, epochs, seed = task
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    config = base_config(epochs=epochs, seed=seed)
    train_graph = bundle.split.train
    # Generous step bound: updates timed past the actual run are ignored,
    # and spacing (drift speed) is per-step, so the bound is harmless.
    steps = epochs * math.ceil(train_graph.num_triples / config.batch_size)
    inserts = max(16, config.batch_size // 2)
    stream = make_stream(
        profile,
        train_graph,
        steps=steps,
        seed=seed + 17,
        **(
            {}
            if profile == "none"
            else {"interval": UPDATE_INTERVAL, "inserts_per_update": inserts}
        ),
    )
    trainer = make_trainer(system, config)
    online = OnlineTrainer(trainer, stream, eval_every=4 * UPDATE_INTERVAL)
    result = online.train(train_graph)
    return profile, system, result


def run_streaming_drift(
    scale: float = 0.05,
    epochs: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Hit-ratio/time/traffic/prequential-MRR of all systems under drift.

    ``jobs`` trains the (profile x system) grid on worker processes; the
    report is byte-identical to ``jobs=1`` (every cell is an independent
    seeded run).
    """
    tasks = [
        (profile, system, scale, epochs, seed)
        for profile in STREAM_PROFILES
        for system in STREAM_SYSTEMS
    ]
    outcomes = parallel_map(_run_cell, tasks, jobs=jobs)

    rows = []
    hit: dict[tuple[str, str], float] = {}
    series: dict[str, list[tuple[float, float]]] = {}
    for profile, system, result in outcomes:
        hit[(profile, system)] = result.cache_hit_ratio
        rows.append(
            [
                profile,
                SYSTEM_LABELS[system],
                result.cache_hit_ratio,
                result.sim_time,
                result.ingest_time,
                result.comm_totals.remote_bytes / 1e6,
                result.prequential.final_mrr,
                result.adaptive_rebuilds,
            ]
        )
        if profile == "rotation" and result.prequential.points:
            series[f"prequential-mrr/{SYSTEM_LABELS[system]}"] = [
                (float(p.step), p.mrr) for p in result.prequential.points
            ]

    cps_drop = hit[("none", "hetkg-c")] - hit[("rotation", "hetkg-c")]
    ordering_ok = (
        hit[("rotation", "hetkg-a")] >= hit[("rotation", "hetkg-d")]
        and hit[("rotation", "hetkg-d")] >= hit[("rotation", "hetkg-c")]
    )
    assert ordering_ok, (
        "expected ADAPTIVE >= DPS >= CPS on hit-ratio under rotation, got "
        f"A={hit[('rotation', 'hetkg-a')]:.3f} "
        f"D={hit[('rotation', 'hetkg-d')]:.3f} "
        f"C={hit[('rotation', 'hetkg-c')]:.3f}"
    )
    assert cps_drop > 0.02, (
        "expected CPS to degrade visibly under rotation; stationary "
        f"{hit[('none', 'hetkg-c')]:.3f} vs rotated "
        f"{hit[('rotation', 'hetkg-c')]:.3f}"
    )

    return ExperimentResult(
        experiment_id="streaming-drift",
        title="Online training under hotness drift (repro.stream)",
        headers=[
            "profile",
            "system",
            "hit ratio",
            "time (s)",
            "ingest (s)",
            "remote MB",
            "preq. MRR",
            "rebuilds",
        ],
        rows=rows,
        series=series,
        notes=(
            "asserted: ADAPTIVE >= DPS >= CPS hit-ratio under rotation; "
            f"CPS hit-ratio drop vs stationary = {cps_drop:.3f}. "
            "Prequential MRR is measured test-then-train on a sliding "
            "holdout of stream triples (not comparable to static test MRR)."
        ),
    )
