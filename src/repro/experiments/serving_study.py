"""Serving studies: inference-side cache and batcher sweeps.

The paper's cache accelerates training; these experiments ask the
follow-on systems question: *how much does the same hotness machinery buy
at inference time?*  A small model is trained, its checkpointed tables
are served through :mod:`repro.serving`, and a calibrated Zipfian query
stream is replayed under different serving-cache and micro-batcher
configurations.

Two registered experiments:

* ``serving-cache``   — hot-set size sweep (static CPS-style pinning vs
  reactive LRU vs no cache): hit ratio, tail latency, remote traffic.
* ``serving-batcher`` — ``max_batch`` sweep at fixed cache: the
  throughput / tail-latency trade-off of micro-batching.
"""

from __future__ import annotations

from repro.experiments.common import (
    DatasetBundle,
    ExperimentResult,
    base_config,
    dataset_bundle,
)
from repro.core.trainer import make_trainer
from repro.ps.network import NetworkModel
from repro.serving.batcher import QueryBatcher
from repro.serving.cache import ServingCache
from repro.serving.frontend import ServingFrontend
from repro.serving.metrics import ServingReport
from repro.serving.queries import QueryLog
from repro.serving.store import EmbeddingStore
from repro.serving.workload import WorkloadSpec, ZipfianWorkload

#: Fraction of the generated stream used to profile the static hot set.
WARMUP_FRACTION = 0.25


def trained_store(
    dataset: str = "fb15k",
    scale: float = 0.05,
    seed: int = 0,
    epochs: int = 2,
    bundle: DatasetBundle | None = None,
    with_trainer: bool = False,
):
    """Train HET-KG-D briefly and wrap its tables in a serving store.

    The store shares the trainer's METIS ownership map, so serving-side
    shard locality matches the training partition.  With ``with_trainer``
    the trainer itself is returned too (the continuous-deployment path
    snapshots fresh checkpoints and hot membership from it).
    """
    if bundle is None:
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
    config = base_config(epochs=epochs, seed=seed)
    trainer = make_trainer("hetkg-d", config)
    trainer.train(bundle.split.train)
    store = EmbeddingStore.from_trainer(trainer)
    if with_trainer:
        return store, bundle, trainer
    return store, bundle


def split_warmup(log: QueryLog, fraction: float = WARMUP_FRACTION) -> tuple[QueryLog, QueryLog]:
    """Split a stream into (warmup-for-profiling, measured) prefix/suffix."""
    cut = max(1, int(len(log) * fraction))
    return QueryLog(log.queries[:cut]), QueryLog(log.queries[cut:])


def serve_once(
    store: EmbeddingStore,
    log: QueryLog,
    cache: ServingCache | None,
    max_batch: int = 32,
    max_wait: float = 2e-3,
    byte_scale: float = 25.0,
    label: str | None = None,
) -> ServingReport:
    """Replay ``log`` through a fresh frontend and return its report.

    ``byte_scale`` defaults to the trainer's wire-dimension correction
    (400 / 16), charging traffic at the paper's embedding width.
    """
    frontend = ServingFrontend(
        store,
        batcher=QueryBatcher(max_batch=max_batch, max_wait=max_wait),
        cache=cache,
        network=NetworkModel(),
        byte_scale=byte_scale,
    )
    return frontend.run(log.queries, label=label)


def run_serving_cache(
    scale: float = 0.05,
    seed: int = 0,
    epochs: int = 2,
    num_queries: int = 4000,
    fractions: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
) -> ExperimentResult:
    """serving-cache: hot-set size sweep for the inference cache.

    For each hot-set fraction the static cache is profiled on a warmup
    prefix of the stream and measured on the suffix; an LRU cache of the
    same capacity and the cache-off baseline bracket it.
    """
    store, bundle = trained_store(scale=scale, seed=seed, epochs=epochs)
    spec = WorkloadSpec(num_queries=num_queries, seed=seed + 11)
    workload = ZipfianWorkload.from_graph(bundle.graph, spec)
    warmup, measured = split_warmup(workload.generate())

    rows = [serve_once(store, measured, None, label="no-cache").as_row()]
    series: dict[str, list[tuple[float, float]]] = {"static": [], "lru": []}
    for fraction in fractions:
        capacity = max(
            2, int(fraction * (store.num_entities + store.num_relations))
        )
        static = ServingCache.from_query_log(warmup, capacity)
        static.label = f"static@{fraction:.0%}"
        report = serve_once(store, measured, static, label=static.label)
        rows.append(report.as_row())
        series["static"].append((fraction, report.hit_ratio))

        lru = ServingCache.dynamic(capacity, policy="lru")
        lru.label = f"lru@{fraction:.0%}"
        lru_report = serve_once(store, measured, lru, label=lru.label)
        rows.append(lru_report.as_row())
        series["lru"].append((fraction, lru_report.hit_ratio))
    return ExperimentResult(
        experiment_id="serving-cache",
        title="Inference cache sweep (fb15k, Zipfian stream)",
        headers=ServingReport.headers(),
        rows=rows,
        series=series,
        notes=(
            "hot-set pinning from a warmup query log (Alg. 2 reused at "
            "inference); larger hot sets raise hit ratio and cut tail "
            "latency and remote traffic"
        ),
    )


def run_serving_batcher(
    scale: float = 0.05,
    seed: int = 0,
    epochs: int = 2,
    num_queries: int = 4000,
    batch_sizes: tuple[int, ...] = (1, 4, 16, 64),
    max_wait: float = 2e-3,
) -> ExperimentResult:
    """serving-batcher: micro-batch size sweep at a fixed 10% hot set.

    ``max_batch=1`` disables batching (every query dispatches alone);
    larger batches amortise per-message latency into higher throughput at
    the cost of queueing delay in the tail.
    """
    store, bundle = trained_store(scale=scale, seed=seed, epochs=epochs)
    spec = WorkloadSpec(num_queries=num_queries, seed=seed + 13)
    workload = ZipfianWorkload.from_graph(bundle.graph, spec)
    warmup, measured = split_warmup(workload.generate())
    capacity = max(2, int(0.1 * (store.num_entities + store.num_relations)))

    rows = []
    series: dict[str, list[tuple[float, float]]] = {"qps": [], "p99_ms": []}
    for max_batch in batch_sizes:
        cache = ServingCache.from_query_log(warmup, capacity)
        report = serve_once(
            store,
            measured,
            cache,
            max_batch=max_batch,
            max_wait=max_wait,
            label=f"batch={max_batch}",
        )
        rows.append(report.as_row())
        series["qps"].append((float(max_batch), report.throughput))
        series["p99_ms"].append((float(max_batch), report.latency_p99 * 1e3))
    return ExperimentResult(
        experiment_id="serving-batcher",
        title="Micro-batcher sweep (fb15k, 10% hot set)",
        headers=ServingReport.headers(),
        rows=rows,
        series=series,
        notes=(
            "max_batch trades queueing latency for per-message "
            "amortisation; max_wait bounds the straggler tail"
        ),
    )
