"""Generic hyperparameter sweeps over the training configuration.

The paper's Fig. 8 runs one-dimensional sweeps; this utility generalises
the pattern so users can sweep any ``TrainingConfig`` field (or a grid of
several) on any dataset and system, getting back one record per
configuration with the standard outcome metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.config import TrainingConfig
from repro.core.trainer import make_trainer
from repro.experiments.parallel import parallel_map
from repro.kg.splits import Split
from repro.utils.tables import format_table


@dataclass
class SweepResult:
    """Outcome of one sweep: one record (dict) per configuration."""

    parameters: list[str]
    records: list[dict[str, Any]] = field(default_factory=list)

    #: Metrics every record carries.
    METRICS = ("mrr", "hits@10", "sim_time", "communication_time", "cache_hit_ratio")

    def column(self, name: str) -> list[Any]:
        return [record[name] for record in self.records]

    def best(self, metric: str = "mrr", minimize: bool = False) -> dict[str, Any]:
        """The record with the best value of ``metric``."""
        if not self.records:
            raise ValueError("sweep produced no records")
        chooser = min if minimize else max
        return chooser(self.records, key=lambda rec: rec[metric])

    def to_text(self, precision: int = 3) -> str:
        headers = self.parameters + list(self.METRICS)
        rows = [[rec[h] for h in headers] for rec in self.records]
        return format_table(headers, rows, title="sweep results", precision=precision)


def _sweep_point(task: tuple) -> dict[str, Any]:
    """Train one grid point and summarise its outcome.

    Module-level so :func:`~repro.experiments.parallel.parallel_map` can
    ship it to worker processes; with ``jobs=1`` it runs inline, so the
    serial and parallel paths execute the exact same code.
    """
    (
        system,
        config,
        split,
        overrides,
        filter_set,
        eval_max_queries,
        eval_candidates,
    ) = task
    trainer = make_trainer(system, config.with_overrides(**overrides))
    outcome = trainer.train(
        split.train,
        eval_graph=split.test,
        filter_set=filter_set,
        eval_max_queries=eval_max_queries,
        eval_candidates=eval_candidates,
    )
    record: dict[str, Any] = dict(overrides)
    record.update(
        {
            "mrr": outcome.final_metrics.get("mrr", 0.0),
            "hits@10": outcome.final_metrics.get("hits@10", 0.0),
            "sim_time": outcome.sim_time,
            "communication_time": outcome.communication_time,
            "cache_hit_ratio": outcome.cache_hit_ratio,
        }
    )
    return record


def run_sweep(
    system: str,
    config: TrainingConfig,
    split: Split,
    grid: dict[str, Sequence[Any]],
    filter_set: set[tuple[int, int, int]] | None = None,
    eval_max_queries: int = 150,
    eval_candidates: int | None = 500,
    jobs: int = 1,
) -> SweepResult:
    """Train ``system`` once per point of the cartesian ``grid``.

    Parameters
    ----------
    grid:
        Mapping of ``TrainingConfig`` field name -> values to try.  The
        sweep runs the full cartesian product, in deterministic order.
    jobs:
        Worker processes.  Every grid point is an independent seeded run,
        so ``jobs > 1`` fans them out across cores; records come back in
        grid order either way and are identical to the serial sweep.
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    for name in grid:
        if not hasattr(config, name):
            raise ValueError(f"unknown TrainingConfig field {name!r}")
        if not len(grid[name]):
            raise ValueError(f"no values given for parameter {name!r}")

    parameters = list(grid)
    tasks = [
        (
            system,
            config,
            split,
            dict(zip(parameters, combo)),
            filter_set,
            eval_max_queries,
            eval_candidates,
        )
        for combo in itertools.product(*(grid[name] for name in parameters))
    ]
    return SweepResult(
        parameters=parameters,
        records=parallel_map(_sweep_point, tasks, jobs=jobs),
    )
