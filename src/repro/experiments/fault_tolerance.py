"""Fault-tolerance study: graceful degradation under injected chaos.

Answers the production question the paper's perfect-fabric evaluation
cannot: when the 1 Gbps network flakes or a machine dies mid-epoch, how do
HET-KG-C/D and DGL-KE degrade in time, traffic, and final MRR?

Each system trains under increasing fault pressure (fault-free reference,
moderate message drops, heavy drops plus a worker crash recovered from a
periodic checkpoint), using one shared seed so differences come only from
the faults.  ``overhead %`` is the simulated-time penalty vs the same
system's fault-free run; retries/lost pushes/recoveries come straight from
the injector's counters (also visible in telemetry and obs traces).
"""

from __future__ import annotations

from repro.core.trainer import make_trainer
from repro.experiments.common import (
    ExperimentResult,
    SYSTEM_LABELS,
    base_config,
    dataset_bundle,
)
from repro.faults import CrashEvent, DropWindow, FaultPlan

#: Systems compared (PBG's block-swap loop has no PS RPC path to fault).
FAULT_SYSTEMS = ("dglke", "hetkg-c", "hetkg-d")

#: Auto-checkpoint cadence (global iterations) for the chaotic runs.
CHECKPOINT_EVERY = 4


def _default_levels(seed: int) -> list[tuple[str, FaultPlan | None]]:
    """The escalating chaos ladder shared by every system."""
    return [
        ("fault-free", None),
        ("drop 5%", FaultPlan(seed=seed, drops=(DropWindow(0.05),))),
        (
            "drop 15% + crash w1@6",
            FaultPlan(
                seed=seed,
                drops=(DropWindow(0.15),),
                crashes=(CrashEvent(machine=1, iteration=6),),
            ),
        ),
    ]


def run_fault_tolerance(
    scale: float = 0.05,
    epochs: int = 3,
    seed: int = 0,
    faults: str | None = None,
) -> ExperimentResult:
    """Time/traffic/MRR degradation of HET-KG-C/D vs DGL-KE under faults.

    ``faults`` (CLI ``--faults``) optionally replaces the built-in chaos
    ladder with a single user-specified :meth:`FaultPlan.parse` spec,
    still paired with each system's fault-free reference run.
    """
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    config = base_config(epochs=epochs, seed=seed)
    if faults:
        levels = [("fault-free", None), (faults, FaultPlan.parse(faults))]
    else:
        levels = _default_levels(seed)

    rows: list[list] = []
    series: dict[str, list[tuple[float, float]]] = {}
    for system in FAULT_SYSTEMS:
        reference_time: float | None = None
        curve: list[tuple[float, float]] = []
        for level_index, (label, plan) in enumerate(levels):
            trainer = make_trainer(system, config)
            result = trainer.train(
                bundle.split.train,
                eval_graph=bundle.split.test,
                filter_set=bundle.filter_set,
                eval_max_queries=100,
                eval_candidates=300,
                faults=plan,
                checkpoint_every=CHECKPOINT_EVERY if plan is not None else None,
            )
            if reference_time is None:
                reference_time = result.sim_time
            overhead = (
                (result.sim_time / reference_time - 1.0) * 100.0
                if reference_time
                else 0.0
            )
            stats = result.fault_stats
            rows.append(
                [
                    SYSTEM_LABELS[system],
                    label,
                    result.sim_time,
                    result.comm_totals.remote_bytes / 1e6,
                    result.comm_totals.retransmit_bytes / 1e6,
                    result.final_metrics.get("mrr", 0.0),
                    int(stats.get("retries", 0)),
                    int(stats.get("lost_pushes", 0)),
                    int(stats.get("recoveries", 0)),
                    overhead,
                ]
            )
            curve.append((float(level_index), result.sim_time))
        series[SYSTEM_LABELS[system]] = curve

    return ExperimentResult(
        experiment_id="fault-tolerance",
        title="Degradation under injected faults (drops, crash-restart)",
        headers=[
            "system",
            "faults",
            "sim time (s)",
            "remote MB",
            "retransmit MB",
            "MRR",
            "retries",
            "lost pushes",
            "recoveries",
            "overhead %",
        ],
        rows=rows,
        notes=(
            "Same seed across all runs; overhead % is vs the same system's "
            "fault-free run.  Chaotic runs auto-checkpoint every "
            f"{CHECKPOINT_EVERY} iterations; a crashed machine rewinds its "
            "PS shard to the last snapshot and rebuilds its hot cache, all "
            "charged to its simulated clock.  Retransmitted bytes are "
            "included in remote MB (wire carried them) and split out here."
        ),
        series=series,
    )
