"""The paper's published numbers, for side-by-side reporting.

Each entry holds the values (or claims) the paper reports for one
experiment, rendered verbatim into EXPERIMENTS.md next to our measured
results.  Absolute values are not expected to match (our substrate is a
simulated cluster and synthetic data); the ``shape`` string states the
relationship that *is* expected to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperReference:
    """What the paper reports for one table/figure."""

    experiment_id: str
    paper_label: str
    paper_values: str  # verbatim-ish numbers or claims from the paper
    shape: str  # the relationship our reproduction must show


PAPER_REFERENCES: dict[str, PaperReference] = {
    ref.experiment_id: ref
    for ref in [
        PaperReference(
            "table1",
            "Table I (discussed in §I/§III-B)",
            "DGL-KE + TransE on Freebase-86m: network communication dominates "
            "more than 70% of end-to-end training time (4 machines, 1 Gbps).",
            "communication fraction is the majority of DGL-KE's time, "
            "largest on the biggest graph",
        ),
        PaperReference(
            "fig2",
            "Fig. 2",
            "FB15k: the top 1% of entities / relations by access frequency "
            "account for ~6% / ~36% of embedding usage respectively.",
            "relation accesses are far more concentrated than entity "
            "accesses on every dataset",
        ),
        PaperReference(
            "table2",
            "Table II",
            "FB15k: 14,951 / 1,345 / 592,213; WN18: 40,943 / 18 / 151,442; "
            "Freebase-86m: 86,054,151 / 14,824 / 338,586,276 "
            "(vertices / relations / edges).",
            "synthetic stand-ins match the published counts (Freebase-86m "
            "scaled down 1000x)",
        ),
        PaperReference(
            "table3",
            "Table III — FB15k",
            "TransE (MRR/Hits@1/Hits@10/Time s): PBG 0.582/0.429/0.818/1047; "
            "DGL-KE 0.570/0.433/0.799/484; HET-KG-C 0.569/0.429/0.804/466; "
            "HET-KG-D 0.564/0.422/0.803/419. DistMult: PBG 0.681/.../1147; "
            "DGL-KE 0.673/.../1167; HET-KG-C 0.642/.../732; HET-KG-D "
            "0.662/.../742.",
            "comparable accuracy across systems; time HET-KG < DGL-KE < PBG",
        ),
        PaperReference(
            "table4",
            "Table IV — WN18",
            "TransE: PBG 0.722/0.545/0.936/477; DGL-KE 0.715/0.548/0.934/184; "
            "HET-KG-C 0.720/0.552/0.955/163; HET-KG-D 0.719/0.552/0.954/168. "
            "DistMult: PBG 0.889/.../1178; DGL-KE 0.881/.../258; HET-KG-C "
            "0.877/.../252; HET-KG-D 0.885/.../251.",
            "HET-KG fastest; with WN18's tiny relation vocabulary the cache "
            "covers relation traffic almost entirely",
        ),
        PaperReference(
            "table5",
            "Table V — Freebase-86m",
            "TransE (Time in minutes): PBG 0.669/0.602/0.805/1126; DGL-KE "
            "0.671/0.599/0.809/313; HET-KG-C 0.678/0.608/0.831/313; HET-KG-D "
            "0.677/0.605/0.813/305.",
            "HET-KG matches or improves accuracy at lower time; DPS fastest "
            "on the large skewed graph; headline speedups 3.7x (PBG) / "
            "1.1x (DGL-KE)",
        ),
        PaperReference(
            "fig5",
            "Fig. 5",
            "All systems converge to similar accuracy; HET-KG needs less "
            "time to reach comparable accuracy; HET-KG-D best on "
            "Freebase-86m.",
            "HET-KG curves reach any fixed MRR earlier than the baselines",
        ),
        PaperReference(
            "fig6",
            "Fig. 6",
            "PBG has limited scalability; DGL-KE and HET-KG speed up "
            "markedly with workers; HET-KG's average acceleration ratio is "
            "~30% higher than DGL-KE's.",
            "PBG flattest; HET-KG's speedup curve sits above DGL-KE's",
        ),
        PaperReference(
            "fig7",
            "Fig. 7",
            "DGL-KE and HET-KG have nearly identical computation time; "
            "HET-KG's communication time is visibly lower; PBG's "
            "communication far exceeds all others.",
            "same three relationships per dataset",
        ),
        PaperReference(
            "fig8a",
            "Fig. 8(a)",
            "Cache hit ratio first increases with cache size; MRR does not "
            "change significantly.",
            "hit ratio monotone in capacity; MRR flat",
        ),
        PaperReference(
            "fig8b",
            "Fig. 8(b)",
            "MRR is not significantly affected for staleness P <= 8 and "
            "decreases with further increase; performance (time) improves "
            "as P grows.",
            "time falls monotonically with P; MRR degrades only at large P",
        ),
        PaperReference(
            "fig8c",
            "Fig. 8(c)",
            "Hit ratio increases then decreases with the entity ratio, "
            "peaking at 25% entities (relations are denser).",
            "interior peak at a low entity ratio",
        ),
        PaperReference(
            "fig9",
            "Fig. 9",
            "Staleness 1 converges to MRR 0.67; staleness 128 to 0.59.",
            "tight consistency converges at least as high as loose",
        ),
        PaperReference(
            "table6",
            "Table VI",
            "Hit ratio (FIFO/LRU/Importance/HET-KG): FB15k 7.4/11.7/15.2/"
            "25.2%; WN18 16.5/17.6/32.1/35.5%; Freebase-86m 6.6/8.6/34.3/"
            "43.1%.",
            "HET-KG > importance > LRU > FIFO on every dataset",
        ),
        PaperReference(
            "table7",
            "Table VII",
            "FB15k: HET-KG 0.343/0.249/0.518/236.8s vs HET-KG-N 0.304/0.214/"
            "0.472/227.2s; WN18: HET-KG 0.629/0.444/0.907/86.0s vs HET-KG-N "
            "0.606/0.426/0.870/77.1s.",
            "HET-KG-N is slightly faster but converges lower",
        ),
        PaperReference(
            "ablation-partition",
            "§V Graph Partitioning (claim adopted from DGL-KE)",
            "METIS significantly reduces network communication for pulling "
            "entity embeddings across machines compared to random "
            "partitioning.",
            "METIS cuts far fewer edges and communicates less",
        ),
        PaperReference(
            "ablation-negatives",
            "§V Negative Sampling",
            "Batched (chunked) negative sampling reduces sampling complexity "
            "from O(b_p d (b_n+1)) to O(b_p d + b_p k d / b_c).",
            "chunked sampling touches far fewer unique entities per batch",
        ),
        PaperReference(
            "ablation-dps-window",
            "(design study, §IV-B)",
            "DPS prefetches D iterations; small D tracks short-term access "
            "patterns (higher hit ratio) at recurring rebuild cost.",
            "hit ratio falls slowly as D grows towards CPS behaviour",
        ),
        PaperReference(
            "ablation-policies-extended",
            "(extension of Table VI)",
            "n/a — the paper compares FIFO/LRU/importance only.",
            "HET-KG's prefetch cache beats even adaptive reactive policies "
            "(CLOCK, 2Q, ARC)",
        ),
        PaperReference(
            "ablation-model-zoo",
            "(extension beyond the paper)",
            "n/a — the paper evaluates TransE and DistMult.",
            "every registered score function trains through the identical "
            "cached distributed stack",
        ),
        PaperReference(
            "ablation-compression",
            "(extension beyond the paper)",
            "n/a — lossy wire codecs are an orthogonal lever the paper does "
            "not evaluate.",
            "fp16/int8 halve/quarter remote bytes with negligible MRR cost",
        ),
        PaperReference(
            "serving-cache",
            "(extension beyond the paper)",
            "n/a — the paper studies training; this applies its hotness "
            "observation (Fig. 2) to inference serving.",
            "a static hot set profiled from a warmup log raises hit ratio, "
            "cuts remote traffic, and lowers p99 latency versus no cache, "
            "matching or beating LRU at equal capacity",
        ),
        PaperReference(
            "serving-batcher",
            "(extension beyond the paper)",
            "n/a — micro-batching is a serving-side lever with no training "
            "analogue in the paper.",
            "larger micro-batches raise throughput while bounded batching "
            "delay keeps tail latency near max_wait",
        ),
        PaperReference(
            "fault-tolerance",
            "(extension beyond the paper)",
            "n/a — the paper evaluates on a healthy testbed; this studies "
            "graceful degradation under injected RPC drops and a worker "
            "crash recovered from a periodic checkpoint.",
            "overhead grows with fault pressure for every system; retries, "
            "lost pushes and recoveries are non-zero exactly when faults "
            "are injected, and HET-KG's cached hot rows retransmit less "
            "than DGL-KE's per-step pulls under the same drop rate",
        ),
        PaperReference(
            "streaming-drift",
            "(extension beyond the paper)",
            "n/a — the paper motivates DPS with time-varying hotness but "
            "evaluates on frozen graphs; this trains online through seeded "
            "update streams whose hot set actually moves.",
            "under hot-set rotation the strategies separate: "
            "ADAPTIVE >= DPS >= CPS on cache hit ratio, CPS degrades "
            "visibly vs its own stationary run, and with drift disabled "
            "the online loop reproduces the static trainer bit-for-bit",
        ),
        PaperReference(
            "cache-shootout",
            "(extension of Table VI on the unified cache core)",
            "n/a — the paper compares a handful of policies on training "
            "traces only; this races every policy registered with the "
            "unified engine (reactive FIFO/LRU/LFU/CLOCK/2Q/ARC and "
            "prefetch-based CPS/DPS/ADAPTIVE) across stationary training, "
            "hot-set-rotation, and serving traces.",
            "DPS's prefetch foresight beats every reactive policy on the "
            "stationary trace; under rotation the one-shot CPS membership "
            "falls behind DPS and the drift-triggered ADAPTIVE; resident "
            "rows never exceed the ledger-enforced capacity in any cell",
        ),
        PaperReference(
            "memory-tiering",
            "(extension beyond the paper)",
            "n/a — the paper trains fully-resident tables; this "
            "oversubscribes memory the way HugeCTR's HMEM-Cache and "
            "frequency-aware embedding caches do, serving the full-skew "
            "generator at 2M+ entities from a budgeted hot/warm/cold "
            "store.",
            "hit ratio rises with resident fraction and, under Zipf skew, "
            "far exceeds the fraction itself (25% resident absorbs most "
            "traffic); coarser residency blocks dilute the skew and lower "
            "the hit ratio at equal budget; resident bytes never exceed "
            "the budget and the unlimited-budget tiered trainer is "
            "bit-identical to the resident one",
        ),
        PaperReference(
            "serving-scale",
            "(extension beyond the paper)",
            "n/a — the paper serves its cache inside training capacity; "
            "this drives a multi-tenant inference frontend past saturation "
            "with token-bucket admission control, a deadline-projecting "
            "shed ladder (full -> truncated top-k -> shed), fault-injected "
            "shard pulls, and mid-stream checkpoint swaps with pre-swap "
            "cache re-warming.",
            "shed rate rises monotonically past saturation while the p99 "
            "of admitted queries stays inside the SLO; a PS-outage window "
            "meters retries instead of raising; a re-warmed version swap "
            "holds the post-swap hit ratio within 10% of the pre-swap "
            "window while the naive invalidate-only swap shows the cliff",
        ),
        PaperReference(
            "negative-sampling",
            "(extension beyond the paper)",
            "n/a — the paper corrupts uniformly within chunks; this applies "
            "its hotness-aware caching idea to the sampler itself "
            "(NSCaching-style per-key hard-negative caches with "
            "hotness-ordered refreshes charged to the simulated network).",
            "cached arms score strictly fewer candidates than 16-negative "
            "uniform corruption yet the best cached arm's mean MRR across "
            "kernels reaches uniform's; refresh traffic shows up as a "
            "nonzero 'neg_cache' clock/comm category; with neg_cache=off "
            "the trainer is bit-identical to the pre-cache goldens",
        ),
    ]
}
