"""Micro-benchmarks: Table I (communication share), Fig. 2 (access skew),
and Table II (dataset statistics)."""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
    run_system,
)
from repro.kg.stats import frequency_skew_report
from repro.utils.rng import make_rng

#: Paper dataset order used by all three micro-benchmarks.
DATASETS = ("fb15k", "wn18", "freebase86m-mini")


def run_table1(
    scale: float = 0.05, epochs: int = 3, seed: int = 0
) -> ExperimentResult:
    """Table I: share of DGL-KE training time spent in communication.

    The paper reports that on Freebase-86m with TransE, communication
    dominates more than 70% of end-to-end time under 1 Gbps networking.
    """
    rows = []
    for name in DATASETS:
        bundle = dataset_bundle(name, scale=scale, seed=seed)
        config = base_config(epochs=epochs, seed=seed)
        result = run_system("dglke", config, bundle, eval_max_queries=1)
        rows.append(
            [
                name,
                result.compute_time,
                result.communication_time,
                result.communication_fraction,
                result.comm_totals.total_messages,
            ]
        )
    return ExperimentResult(
        experiment_id="table1",
        title="DGL-KE time breakdown (TransE): communication dominates",
        headers=[
            "dataset",
            "compute (s)",
            "communication (s)",
            "comm fraction",
            "messages",
        ],
        rows=rows,
        notes="paper: communication >70% of end-to-end time on Freebase-86m",
    )


def run_fig2(scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    """Fig. 2: skew of embedding access frequencies.

    The paper's motivating observation: a tiny fraction of embeddings —
    especially relations — accounts for a large share of accesses (on
    FB15k the top 1% of relations covers ~36% of relation usage vs ~6%
    for entities).
    """
    rng = make_rng(seed)
    rows = []
    for name in DATASETS:
        bundle = dataset_bundle(name, scale=scale, seed=seed)
        report = frequency_skew_report(
            bundle.graph, name, negatives_per_positive=2, rng=rng
        )
        rows.append(report.as_row())
    return ExperimentResult(
        experiment_id="fig2",
        title="Embedding access skew (one epoch incl. negatives)",
        headers=[
            "dataset",
            "top-1% entity share",
            "top-1% relation share",
            "entity gini",
            "relation gini",
        ],
        rows=rows,
        notes="paper (FB15k): top-1% entities ~6%, top-1% relations ~36%",
    )


def run_table2(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Table II: statistics of the evaluated knowledge graphs."""
    rows = []
    for name in DATASETS:
        bundle = dataset_bundle(name, scale=scale, seed=seed)
        g = bundle.graph
        rows.append([name, g.num_entities, g.num_relations, g.num_triples])
    return ExperimentResult(
        experiment_id="table2",
        title="Knowledge graphs used for evaluation",
        headers=["dataset", "# vertices", "# relations", "# edges"],
        rows=rows,
        notes=(
            "synthetic stand-ins; freebase86m-mini is the paper's "
            "Freebase-86m scaled down 1000x (see DESIGN.md)"
        ),
    )
