"""Accuracy tables: link-prediction results on the three datasets
(Tables III, IV, V of the paper)."""

from __future__ import annotations

from repro.experiments.common import (
    ALL_SYSTEMS,
    ExperimentResult,
    base_config,
    dataset_bundle,
    link_prediction_rows,
)

HEADERS = ["system", "model", "MRR", "Hits@1", "Hits@10", "time (s)"]


def _accuracy_table(
    experiment_id: str,
    dataset: str,
    models: tuple[str, ...],
    scale: float,
    epochs: int,
    seed: int,
    note: str,
    **config_overrides,
) -> ExperimentResult:
    bundle = dataset_bundle(dataset, scale=scale, seed=seed)
    config = base_config(epochs=epochs, seed=seed, **config_overrides)
    rows = []
    for model in models:
        rows.extend(link_prediction_rows(ALL_SYSTEMS, config, bundle, model))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Link prediction results on {dataset}",
        headers=HEADERS,
        rows=rows,
        notes=note,
    )


def run_table3(
    scale: float = 0.05, epochs: int = 6, seed: int = 0
) -> ExperimentResult:
    """Table III: FB15k with TransE and DistMult.

    Paper shape: all systems reach comparable accuracy; HET-KG variants
    need the least time, PBG the most.
    """
    return _accuracy_table(
        "table3",
        "fb15k",
        ("transe", "distmult"),
        scale,
        epochs,
        seed,
        "paper: comparable MRR across systems; time HET-KG < DGL-KE < PBG",
    )


def run_table4(
    scale: float = 0.05, epochs: int = 6, seed: int = 0
) -> ExperimentResult:
    """Table IV: WN18 with TransE and DistMult.

    WN18 has very few relation types, so the relation side of the cache
    covers nearly all accesses — both HET-KG variants beat the baselines.
    """
    return _accuracy_table(
        "table4",
        "wn18",
        ("transe", "distmult"),
        scale,
        epochs,
        seed,
        "paper: HET-KG fastest; CPS slightly ahead of DPS on this small graph",
    )


def run_table5(
    scale: float = 0.2, epochs: int = 4, seed: int = 0
) -> ExperimentResult:
    """Table V: Freebase-86m with TransE.

    Paper shape: HET-KG matches or improves accuracy at lower time; DPS is
    the fastest on the large skewed graph.

    Cache settings follow the paper's Table V discussion ("setting the
    top-k value larger") — on the big graph each cache slot must earn its
    refresh cost, so the sweep-calibrated capacity/period pair is used with
    a DPS window sized for low churn.
    """
    return _accuracy_table(
        "table5",
        "freebase86m-mini",
        ("transe",),
        scale,
        epochs,
        seed,
        "paper: HET-KG >= DGL-KE accuracy at lower time; DPS fastest",
        sync_period=16,
        dps_window=32,
    )
